"""The paper's four benchmark IPs (Table I).

Every IP is a cycle-accurate :class:`~repro.hdl.Module` whose internal
register switching drives the power model, plus (for the ciphers) a pure
reference implementation validated against published test vectors.
"""

from .aes import Aes
from .camellia import Camellia
from .multsum import MultSum
from .ram import Ram

#: All benchmark IP classes, in the paper's Table I order.
ALL_IPS = (Ram, MultSum, Aes, Camellia)

__all__ = ["Ram", "MultSum", "Aes", "Camellia", "ALL_IPS"]
