"""Pure-Python AES-128 (FIPS-197) with per-round state access.

Besides ``encrypt_block``/``decrypt_block``, the module exposes
:func:`round_states`, the sequence of intermediate 128-bit states after
each round — exactly what the round-per-cycle HDL model clocks through
its state register, making the recorded switching activity that of the
real algorithm.

States are 16-byte lists in FIPS column-major order; block values cross
the API as 128-bit integers (big-endian byte order).
"""

from __future__ import annotations

from typing import List

from .tables import INV_SBOX, RCON, SBOX, gf_mul

#: Number of rounds for AES-128.
NUM_ROUNDS = 10

State = List[int]


def block_to_state(block: int) -> State:
    """128-bit integer -> 16-byte state (byte 0 is the MSB)."""
    return [(block >> (120 - 8 * i)) & 0xFF for i in range(16)]


def state_to_block(state: State) -> int:
    """16-byte state -> 128-bit integer."""
    value = 0
    for byte in state:
        value = (value << 8) | byte
    return value


# ----------------------------------------------------------------------
# round operations
# ----------------------------------------------------------------------
def sub_bytes(state: State) -> State:
    """SubBytes: the S-box applied to every byte."""
    return [SBOX[b] for b in state]


def inv_sub_bytes(state: State) -> State:
    """InvSubBytes."""
    return [INV_SBOX[b] for b in state]


def shift_rows(state: State) -> State:
    """ShiftRows on the column-major byte layout."""
    out = [0] * 16
    for col in range(4):
        for row in range(4):
            out[col * 4 + row] = state[((col + row) % 4) * 4 + row]
    return out


def inv_shift_rows(state: State) -> State:
    """InvShiftRows."""
    out = [0] * 16
    for col in range(4):
        for row in range(4):
            out[((col + row) % 4) * 4 + row] = state[col * 4 + row]
    return out


def mix_columns(state: State) -> State:
    """MixColumns: each column multiplied by the fixed polynomial."""
    out = [0] * 16
    for col in range(4):
        a = state[col * 4 : col * 4 + 4]
        out[col * 4 + 0] = gf_mul(a[0], 2) ^ gf_mul(a[1], 3) ^ a[2] ^ a[3]
        out[col * 4 + 1] = a[0] ^ gf_mul(a[1], 2) ^ gf_mul(a[2], 3) ^ a[3]
        out[col * 4 + 2] = a[0] ^ a[1] ^ gf_mul(a[2], 2) ^ gf_mul(a[3], 3)
        out[col * 4 + 3] = gf_mul(a[0], 3) ^ a[1] ^ a[2] ^ gf_mul(a[3], 2)
    return out


def inv_mix_columns(state: State) -> State:
    """InvMixColumns."""
    out = [0] * 16
    for col in range(4):
        a = state[col * 4 : col * 4 + 4]
        out[col * 4 + 0] = (
            gf_mul(a[0], 14) ^ gf_mul(a[1], 11) ^ gf_mul(a[2], 13) ^ gf_mul(a[3], 9)
        )
        out[col * 4 + 1] = (
            gf_mul(a[0], 9) ^ gf_mul(a[1], 14) ^ gf_mul(a[2], 11) ^ gf_mul(a[3], 13)
        )
        out[col * 4 + 2] = (
            gf_mul(a[0], 13) ^ gf_mul(a[1], 9) ^ gf_mul(a[2], 14) ^ gf_mul(a[3], 11)
        )
        out[col * 4 + 3] = (
            gf_mul(a[0], 11) ^ gf_mul(a[1], 13) ^ gf_mul(a[2], 9) ^ gf_mul(a[3], 14)
        )
    return out


def add_round_key(state: State, round_key: State) -> State:
    """AddRoundKey: byte-wise XOR with the round key."""
    return [s ^ k for s, k in zip(state, round_key)]


# ----------------------------------------------------------------------
# key schedule
# ----------------------------------------------------------------------
def expand_key(key: int) -> List[State]:
    """FIPS-197 key expansion: 11 round keys as 16-byte states."""
    words: List[List[int]] = []
    key_bytes = block_to_state(key)
    for i in range(4):
        words.append(key_bytes[i * 4 : i * 4 + 4])
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [SBOX[b] for b in temp]
            temp[0] ^= RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    round_keys = []
    for r in range(NUM_ROUNDS + 1):
        flat: State = []
        for w in words[r * 4 : r * 4 + 4]:
            flat.extend(w)
        round_keys.append(flat)
    return round_keys


# ----------------------------------------------------------------------
# block operations
# ----------------------------------------------------------------------
def encrypt_round(state: State, round_key: State, last: bool) -> State:
    """One encryption round (MixColumns skipped on the last round)."""
    state = sub_bytes(state)
    state = shift_rows(state)
    if not last:
        state = mix_columns(state)
    return add_round_key(state, round_key)


def decrypt_round(state: State, round_key: State, last: bool) -> State:
    """One (straightforward) decryption round."""
    state = inv_shift_rows(state)
    state = inv_sub_bytes(state)
    state = add_round_key(state, round_key)
    if not last:
        state = inv_mix_columns(state)
    return state


def round_states(block: int, key: int, decrypt: bool = False) -> List[int]:
    """Per-cycle register values of the round-iterative datapath.

    ``result[0]`` is the state after the initial AddRoundKey (the value
    latched when ``start`` fires) and ``result[r]`` the state after round
    ``r``; ``result[10]`` is the output block.
    """
    round_keys = expand_key(key)
    states: List[int] = []
    if not decrypt:
        state = add_round_key(block_to_state(block), round_keys[0])
        states.append(state_to_block(state))
        for r in range(1, NUM_ROUNDS + 1):
            state = encrypt_round(state, round_keys[r], last=r == NUM_ROUNDS)
            states.append(state_to_block(state))
    else:
        state = add_round_key(block_to_state(block), round_keys[NUM_ROUNDS])
        states.append(state_to_block(state))
        for r in range(NUM_ROUNDS - 1, -1, -1):
            state = decrypt_round(state, round_keys[r], last=r == 0)
            states.append(state_to_block(state))
    return states


def encrypt_block(block: int, key: int) -> int:
    """AES-128 ECB encryption of one 128-bit block."""
    return round_states(block, key, decrypt=False)[-1]


def decrypt_block(block: int, key: int) -> int:
    """AES-128 ECB decryption of one 128-bit block."""
    return round_states(block, key, decrypt=True)[-1]
