"""AES (FIPS-197) lookup tables, generated algebraically.

The S-box is the multiplicative inverse in GF(2^8) (modulo the AES
polynomial ``x^8 + x^4 + x^3 + x + 1``) followed by the FIPS-197 affine
transform.  Generating the tables instead of hard-coding them keeps the
source auditable; the unit tests validate the cipher against the FIPS-197
vectors and a reference library.
"""

from __future__ import annotations

from typing import List, Tuple

#: The AES field polynomial (x^8 + x^4 + x^3 + x + 1).
AES_POLY = 0x11B


def gf_mul(a: int, b: int) -> int:
    """Multiplication in GF(2^8) modulo the AES polynomial."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        if a & 0x100:
            a ^= AES_POLY
        b >>= 1
    return result


def _build_log_tables() -> Tuple[List[int], List[int]]:
    """Discrete log/antilog tables over the generator 3."""
    exp = [0] * 255
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = gf_mul(x, 3)
    return exp, log


_EXP, _LOG = _build_log_tables()


def gf_inverse(a: int) -> int:
    """Multiplicative inverse in GF(2^8); inverse of 0 is defined as 0."""
    if a == 0:
        return 0
    return _EXP[(255 - _LOG[a]) % 255]


def _rotl8(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (8 - amount))) & 0xFF


def _affine(b: int) -> int:
    """The FIPS-197 affine transform applied after inversion."""
    return (
        b
        ^ _rotl8(b, 1)
        ^ _rotl8(b, 2)
        ^ _rotl8(b, 3)
        ^ _rotl8(b, 4)
        ^ 0x63
    )


def _build_sbox() -> Tuple[List[int], List[int]]:
    sbox = [0] * 256
    inv_sbox = [0] * 256
    for value in range(256):
        s = _affine(gf_inverse(value))
        sbox[value] = s
        inv_sbox[s] = value
    return sbox, inv_sbox


#: Forward and inverse S-boxes.
SBOX, INV_SBOX = _build_sbox()

#: Round constants for the key expansion (Rcon[1..10]).
RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]
