"""Round-iterative AES-128 core as a clocked HDL module.

One round per cycle, matching a typical iterative RTL implementation:
``load_key`` runs the key expansion, ``start`` latches the whitened block
into the 128-bit state register, ten ``busy`` cycles apply the rounds
(encryption or decryption), then ``done`` rises with the result on
``out``.

Interface (260 PI bits / 129 PO bits, as in the paper's Table I):

============  =======  ======================================
``en``        1 bit    core enable
``load_key``  1 bit    run the key schedule on ``key``
``start``     1 bit    begin processing ``data``
``decrypt``   1 bit    0 = encrypt, 1 = decrypt
``key``       128 bit  cipher key
``data``      128 bit  input block
``out``       128 bit  result block (registered)
``done``      1 bit    result valid
============  =======  ======================================
"""

from __future__ import annotations

from typing import Dict, List, Mapping

from ...hdl.module import Module
from ...hdl.signal import hamming, popcount_int
from ...traces.variables import bool_in, bool_out, int_in, int_out
from .cipher import (
    NUM_ROUNDS,
    add_round_key,
    block_to_state,
    expand_key,
    inv_mix_columns,
    inv_shift_rows,
    inv_sub_bytes,
    mix_columns,
    shift_rows,
    state_to_block,
    sub_bytes,
)


class Aes(Module):
    """Cycle-accurate iterative AES-128 encryption/decryption core."""

    NAME = "AES"
    INPUTS = (
        bool_in("en"),
        bool_in("load_key"),
        bool_in("start"),
        bool_in("decrypt"),
        int_in("key", 128),
        int_in("data", 128),
    )
    OUTPUTS = (
        int_out("out", 128),
        bool_out("done"),
    )
    #: The round counter — the sub-component boundary signal exposed to
    #: hierarchical characterisation.
    PROBES = (int_out("round_counter", 4),)

    #: AES's round datapath dominates; its subcomponents (S-boxes, key
    #: schedule) switch coherently with the round register, which is why
    #: the paper finds AES's power well correlated with its behaviour.
    #: Combinational cone estimate: 16 S-boxes, ShiftRows/MixColumns
    #: network and the on-the-fly key schedule.
    COMB_GATES = 8000
    COMPONENT_CAPS = {
        "round_datapath": 1.0,
        "sbox_network": 0.6,
        "key_schedule": 0.8,
        "control": 1.0,
        "io": 0.15,
        "clock_tree": 1.0,
    }

    def __init__(self) -> None:
        super().__init__()
        self._state = self.reg("state_reg", 128, component="round_datapath")
        self._round_key = self.reg(
            "round_key_reg", 128, component="key_schedule"
        )
        self._key = self.reg("key_reg", 128, component="key_schedule")
        self._counter = self.reg("round_counter", 4, component="control")
        self._busy = self.reg("busy", 1, component="control")
        self._done = self.reg("done_reg", 1, component="control")
        self._out = self.reg("out_reg", 128, component="io")
        self._key_ints: List[int] = []
        self._state_bytes: List[int] = []
        self._key_order: List[int] = []

    def reset(self) -> None:
        super().reset()
        self._key_ints = []
        self._state_bytes = []
        self._key_order = []

    def _expand(self, key: int) -> None:
        """Run the key schedule and account its switching."""
        self._round_keys = expand_key(key)
        self._key_ints = [state_to_block(rk) for rk in self._round_keys]
        toggles = sum(
            hamming(self._key_ints[i], self._key_ints[i + 1])
            for i in range(NUM_ROUNDS)
        )
        self.add_activity("key_schedule", 0.3 * toggles)

    def step(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """One clock cycle of the iterative core.

        Outputs are registered (Moore-style): the values returned are the
        ones visible on the pins *during* this cycle, i.e. the register
        contents before this cycle's clock edge, so ``done`` rises the
        cycle after the final round completes.
        """
        outputs = {"out": self._out.value, "done": self._done.value}
        if inputs["en"]:
            self.add_activity("clock_tree", 4.0)
            if inputs["load_key"]:
                self._key.load(inputs["key"])
                self._expand(inputs["key"])
            if inputs["start"] and not self._busy.value:
                if not self._key_ints:
                    self._key.load(inputs["key"])
                    self._expand(inputs["key"])
                self._decrypting = bool(inputs["decrypt"])
                self._key_order = (
                    list(range(NUM_ROUNDS, -1, -1))
                    if self._decrypting
                    else list(range(NUM_ROUNDS + 1))
                )
                # Initial AddRoundKey is performed while latching.
                self._state_bytes = add_round_key(
                    block_to_state(inputs["data"]),
                    self._round_keys[self._key_order[0]],
                )
                self._state.load(state_to_block(self._state_bytes))
                self._round_key.load(self._key_ints[self._key_order[0]])
                self._counter.load(0)
                self._busy.load(1)
                self._done.load(0)
            elif self._busy.value:
                # One full round of combinational logic per cycle, exactly
                # as the iterative RTL datapath computes it, with the
                # S-box / MixColumns glitching estimated stage by stage.
                round_index = self._counter.value + 1
                key_index = self._key_order[round_index]
                previous = self._state_bytes
                if self._decrypting:
                    shifted = inv_shift_rows(previous)
                    subbed = inv_sub_bytes(shifted)
                    keyed = add_round_key(subbed, self._round_keys[key_index])
                    new_state = (
                        keyed if key_index == 0 else inv_mix_columns(keyed)
                    )
                    stages = (shifted, subbed, new_state)
                else:
                    subbed = sub_bytes(previous)
                    shifted = shift_rows(subbed)
                    mixed = (
                        shifted
                        if key_index == NUM_ROUNDS
                        else mix_columns(shifted)
                    )
                    new_state = add_round_key(
                        mixed, self._round_keys[key_index]
                    )
                    stages = (subbed, mixed, new_state)
                glitches = 0
                stage_in = previous
                for stage_out in stages:
                    for a, b in zip(stage_in, stage_out):
                        glitches += popcount_int(a ^ b)
                    stage_in = stage_out
                self.add_activity("sbox_network", 0.2 * glitches)
                self._state_bytes = new_state
                self._state.load(state_to_block(self._state_bytes))
                self._round_key.load(self._key_ints[key_index])
                self._counter.load(round_index)
                if round_index == NUM_ROUNDS:
                    self._out.load(state_to_block(self._state_bytes))
                    self._busy.load(0)
                    self._done.load(1)
        if not inputs["en"]:
            # gated clock: only the always-on root buffer keeps toggling
            self.add_activity("clock_tree", 0.4)
        return outputs
