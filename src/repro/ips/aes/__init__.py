"""AES-128 benchmark IP: validated cipher + clocked HDL core."""

from .cipher import (
    NUM_ROUNDS,
    decrypt_block,
    encrypt_block,
    expand_key,
    round_states,
)
from .module import Aes
from .tables import INV_SBOX, RCON, SBOX

__all__ = [
    "Aes",
    "encrypt_block",
    "decrypt_block",
    "expand_key",
    "round_states",
    "NUM_ROUNDS",
    "SBOX",
    "INV_SBOX",
    "RCON",
]
