"""Pure-Python Camellia-128 (RFC 3713) with per-round state access.

Implements the full 128-bit-key cipher: the F round function with the
four S-boxes and the P byte-diffusion layer, the FL / FL^-1 layers, the
KA key-schedule derivation and the 18-round Feistel network.  Validated
against the RFC 3713 test vector and a reference implementation (see
``tests/ips/test_camellia.py``).

:func:`round_trace` exposes the per-cycle values of the Feistel halves
and the active subkey, which is what the round-per-cycle HDL model clocks
through its registers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .tables import SBOX1, SBOX2, SBOX3, SBOX4, SIGMA

MASK8 = 0xFF
MASK32 = 0xFFFFFFFF
MASK64 = 0xFFFFFFFFFFFFFFFF
MASK128 = (1 << 128) - 1

#: Feistel rounds of Camellia-128.
NUM_ROUNDS = 18

#: Rounds *before* which the FL / FL^-1 layers are applied.
FL_ROUNDS = (6, 12)


def _rotl128(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (128 - amount))) & MASK128


def _rotl32(value: int, amount: int) -> int:
    return ((value << amount) | (value >> (32 - amount))) & MASK32


# ----------------------------------------------------------------------
# round functions
# ----------------------------------------------------------------------
def f_function(x: int, k: int) -> int:
    """The Camellia F function: key mix, S-layer, P diffusion layer."""
    x ^= k
    t = [(x >> (56 - 8 * i)) & MASK8 for i in range(8)]
    t[0] = SBOX1[t[0]]
    t[1] = SBOX2[t[1]]
    t[2] = SBOX3[t[2]]
    t[3] = SBOX4[t[3]]
    t[4] = SBOX2[t[4]]
    t[5] = SBOX3[t[5]]
    t[6] = SBOX4[t[6]]
    t[7] = SBOX1[t[7]]
    y = (
        t[0] ^ t[2] ^ t[3] ^ t[5] ^ t[6] ^ t[7],
        t[0] ^ t[1] ^ t[3] ^ t[4] ^ t[6] ^ t[7],
        t[0] ^ t[1] ^ t[2] ^ t[4] ^ t[5] ^ t[7],
        t[1] ^ t[2] ^ t[3] ^ t[4] ^ t[5] ^ t[6],
        t[0] ^ t[1] ^ t[5] ^ t[6] ^ t[7],
        t[1] ^ t[2] ^ t[4] ^ t[6] ^ t[7],
        t[2] ^ t[3] ^ t[4] ^ t[5] ^ t[7],
        t[0] ^ t[3] ^ t[4] ^ t[5] ^ t[6],
    )
    result = 0
    for byte in y:
        result = (result << 8) | byte
    return result


def fl(x: int, k: int) -> int:
    """The FL layer."""
    xl, xr = x >> 32, x & MASK32
    kl, kr = k >> 32, k & MASK32
    xr ^= _rotl32(xl & kl, 1)
    xl ^= xr | kr
    return (xl << 32) | xr


def fl_inv(y: int, k: int) -> int:
    """The FL^-1 layer (inverse of :func:`fl`)."""
    yl, yr = y >> 32, y & MASK32
    kl, kr = k >> 32, k & MASK32
    yl ^= yr | kr
    yr ^= _rotl32(yl & kl, 1)
    return (yl << 32) | yr


# ----------------------------------------------------------------------
# key schedule
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class KeySchedule:
    """The expanded Camellia-128 key material."""

    kw: Tuple[int, int, int, int]
    k: Tuple[int, ...]
    ke: Tuple[int, int, int, int]
    ka: int

    def reversed(self) -> "KeySchedule":
        """The schedule used for decryption (subkeys in reverse order)."""
        return KeySchedule(
            kw=(self.kw[2], self.kw[3], self.kw[0], self.kw[1]),
            k=tuple(reversed(self.k)),
            ke=(self.ke[3], self.ke[2], self.ke[1], self.ke[0]),
            ka=self.ka,
        )


def derive_ka(kl: int) -> int:
    """The KA intermediate key of the Camellia key schedule."""
    d1 = kl >> 64
    d2 = kl & MASK64
    d2 ^= f_function(d1, SIGMA[0])
    d1 ^= f_function(d2, SIGMA[1])
    d1 ^= kl >> 64
    d2 ^= kl & MASK64
    d2 ^= f_function(d1, SIGMA[2])
    d1 ^= f_function(d2, SIGMA[3])
    return (d1 << 64) | d2


def expand_key(key: int) -> KeySchedule:
    """RFC 3713 key schedule for 128-bit keys."""
    kl = key & MASK128
    ka = derive_ka(kl)

    def halves(value: int, amount: int) -> Tuple[int, int]:
        rotated = _rotl128(value, amount)
        return rotated >> 64, rotated & MASK64

    kw1, kw2 = halves(kl, 0)
    k1, k2 = halves(ka, 0)
    k3, k4 = halves(kl, 15)
    k5, k6 = halves(ka, 15)
    ke1, ke2 = halves(ka, 30)
    k7, k8 = halves(kl, 45)
    k9, _unused = halves(ka, 45)
    _unused, k10 = halves(kl, 60)
    k11, k12 = halves(ka, 60)
    ke3, ke4 = halves(kl, 77)
    k13, k14 = halves(kl, 94)
    k15, k16 = halves(ka, 94)
    k17, k18 = halves(kl, 111)
    kw3, kw4 = halves(ka, 111)
    return KeySchedule(
        kw=(kw1, kw2, kw3, kw4),
        k=(
            k1, k2, k3, k4, k5, k6, k7, k8, k9,
            k10, k11, k12, k13, k14, k15, k16, k17, k18,
        ),
        ke=(ke1, ke2, ke3, ke4),
        ka=ka,
    )


# ----------------------------------------------------------------------
# block operations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RoundSnapshot:
    """Register values of the Feistel datapath after one cycle."""

    left: int
    right: int
    subkey: int
    is_fl_cycle: bool


def round_trace(
    block: int, schedule: KeySchedule
) -> Tuple[List[RoundSnapshot], int]:
    """Per-cycle datapath values and the output block.

    The first snapshot is the whitened input; every Feistel round (and
    every FL layer, which takes its own cycle in the HDL model) adds one
    snapshot.
    """
    d1 = (block >> 64) ^ schedule.kw[0]
    d2 = (block & MASK64) ^ schedule.kw[1]
    snapshots = [RoundSnapshot(d1, d2, schedule.kw[0], False)]
    fl_used = 0
    for i in range(NUM_ROUNDS):
        if fl_used < 2 and i == FL_ROUNDS[fl_used]:
            d1 = fl(d1, schedule.ke[2 * fl_used])
            d2 = fl_inv(d2, schedule.ke[2 * fl_used + 1])
            snapshots.append(
                RoundSnapshot(d1, d2, schedule.ke[2 * fl_used], True)
            )
            fl_used += 1
        d2 ^= f_function(d1, schedule.k[i])
        d1, d2 = d2, d1
        snapshots.append(RoundSnapshot(d1, d2, schedule.k[i], False))
    d2 ^= schedule.kw[2]
    d1 ^= schedule.kw[3]
    return snapshots, ((d2 << 64) | d1) & MASK128


def encrypt_block(block: int, key: int) -> int:
    """Camellia-128 ECB encryption of one 128-bit block."""
    _snapshots, out = round_trace(block, expand_key(key))
    return out


def decrypt_block(block: int, key: int) -> int:
    """Camellia-128 ECB decryption of one 128-bit block."""
    _snapshots, out = round_trace(block, expand_key(key).reversed())
    return out
