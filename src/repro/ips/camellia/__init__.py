"""Camellia-128 benchmark IP: validated cipher + clocked HDL core."""

from .cipher import (
    FL_ROUNDS,
    NUM_ROUNDS,
    KeySchedule,
    decrypt_block,
    derive_ka,
    encrypt_block,
    expand_key,
    f_function,
    fl,
    fl_inv,
    round_trace,
)
from .module import Camellia
from .tables import SBOX1, SBOX2, SBOX3, SBOX4, SIGMA

__all__ = [
    "Camellia",
    "encrypt_block",
    "decrypt_block",
    "expand_key",
    "derive_ka",
    "round_trace",
    "f_function",
    "fl",
    "fl_inv",
    "KeySchedule",
    "NUM_ROUNDS",
    "FL_ROUNDS",
    "SBOX1",
    "SBOX2",
    "SBOX3",
    "SBOX4",
    "SIGMA",
]
