"""Round-iterative Camellia-128 core as a clocked HDL module.

One Feistel round (or FL layer) per cycle.  Camellia is the paper's
problem child: it is built from sub-components — the two Feistel halves,
the S-box unit, the FL layer and the key schedule — whose switching is
poorly correlated with what is visible at the primary inputs and
outputs.  The FL layers fire only twice per block, the per-round subkey
switching depends on the key-schedule rotations, and the S-box unit's
activity follows internal round values; together they give the ``busy``
power a high variance that a constant-per-state PSM cannot capture,
reproducing the paper's high Camellia MRE.

Interface (262 PI bits / 129 PO bits, as in the paper's Table I):

============  =======  =============================================
``en``        1 bit    core enable
``load_key``  1 bit    run the key schedule on ``key``
``start``     1 bit    begin processing ``data``
``decrypt``   1 bit    0 = encrypt, 1 = decrypt
``mode``      2 bit    key length select (only 00 = 128-bit supported)
``key``       128 bit  cipher key
``data``      128 bit  input block
``out``       128 bit  result block (registered)
``done``      1 bit    result valid
============  =======  =============================================
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional

from ...hdl.module import Module
from ...hdl.signal import hamming, popcount_int
from ...traces.variables import bool_in, bool_out, int_in, int_out
from .cipher import (
    FL_ROUNDS,
    NUM_ROUNDS,
    KeySchedule,
    expand_key,
    f_function,
    fl,
    fl_inv,
)
from .tables import SBOX1

MASK64 = 0xFFFFFFFFFFFFFFFF


class Camellia(Module):
    """Cycle-accurate iterative Camellia-128 core."""

    NAME = "Camellia"
    INPUTS = (
        bool_in("en"),
        bool_in("load_key"),
        bool_in("start"),
        bool_in("decrypt"),
        int_in("mode", 2),
        int_in("key", 128),
        int_in("data", 128),
    )
    OUTPUTS = (
        int_out("out", 128),
        bool_out("done"),
    )
    #: The round counter at the Feistel/FL boundary — the internal signal
    #: a hierarchical (white-box) characterisation observes.
    PROBES = (int_out("cycle_counter", 5),)

    #: Sub-component capacitances: the S-box unit and FL layer carry
    #: weights that make their (I/O-invisible) activity a large share of
    #: the cycle power — the root cause of the poor PSM accuracy the
    #: paper reports for this IP.
    #: Combinational cone estimate: eight S-boxes, the P diffusion
    #: layer, the FL/FL^-1 networks and the KA derivation datapath.
    COMB_GATES = 12000
    COMPONENT_CAPS = {
        "feistel_left": 1.0,
        "feistel_right": 1.0,
        "sbox_unit": 2.2,
        "fl_layer": 3.0,
        "key_schedule": 1.6,
        "control": 1.0,
        "io": 0.2,
        "clock_tree": 1.0,
    }

    def __init__(self) -> None:
        super().__init__()
        self._left = self.reg("left_reg", 64, component="feistel_left")
        self._right = self.reg("right_reg", 64, component="feistel_right")
        self._subkey = self.reg("subkey_reg", 64, component="key_schedule")
        self._counter = self.reg("cycle_counter", 5, component="control")
        self._busy = self.reg("busy", 1, component="control")
        self._done = self.reg("done_reg", 1, component="control")
        self._out = self.reg("out_reg", 128, component="io")
        self._key = self.reg("key_reg", 128, component="key_schedule")
        self._schedule: Optional[KeySchedule] = None
        self._active: Optional[KeySchedule] = None
        self._d1 = 0
        self._d2 = 0
        self._round = 0
        self._fl_used = 0

    def reset(self) -> None:
        super().reset()
        self._schedule = None
        self._active = None
        self._d1 = 0
        self._d2 = 0
        self._round = 0
        self._fl_used = 0

    def _expand(self, key: int) -> None:
        """Run the KA derivation and account its four F evaluations."""
        self._schedule = expand_key(key)
        self.add_activity(
            "key_schedule",
            0.5 * hamming(key, self._schedule.ka) + 64.0,
        )

    def step(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """One clock cycle of the iterative core.

        Outputs are registered (Moore-style): the values returned are the
        ones visible on the pins *during* this cycle, i.e. the register
        contents before this cycle's clock edge, so ``done`` rises the
        cycle after the final round completes.
        """
        outputs = {"out": self._out.value, "done": self._done.value}
        if inputs["en"]:
            self.add_activity("clock_tree", 4.0)
            if inputs["load_key"]:
                self._key.load(inputs["key"])
                self._expand(inputs["key"])
            if inputs["start"] and not self._busy.value:
                if self._schedule is None:
                    self._key.load(inputs["key"])
                    self._expand(inputs["key"])
                schedule = self._schedule
                if inputs["decrypt"]:
                    schedule = schedule.reversed()
                self._active = schedule
                # Whitening is performed while latching the block.
                self._d1 = (inputs["data"] >> 64) ^ schedule.kw[0]
                self._d2 = (inputs["data"] & MASK64) ^ schedule.kw[1]
                self._round = 0
                self._fl_used = 0
                self._left.load(self._d1)
                self._right.load(self._d2)
                self._subkey.load(schedule.kw[0] & MASK64)
                self._counter.load(0)
                self._busy.load(1)
                self._done.load(0)
            elif self._busy.value:
                # One Feistel round (or one FL layer) of combinational
                # logic per cycle, as the iterative RTL computes it.
                schedule = self._active
                is_fl = (
                    self._fl_used < 2
                    and self._round == FL_ROUNDS[self._fl_used]
                )
                if is_fl:
                    ke_left = schedule.ke[2 * self._fl_used]
                    ke_right = schedule.ke[2 * self._fl_used + 1]
                    self._d1 = fl(self._d1, ke_left)
                    self._d2 = fl_inv(self._d2, ke_right)
                    self._fl_used += 1
                    subkey = ke_left
                    # The FL/FL^-1 layers switch their own network hard,
                    # but only twice per block.
                    self.add_activity("fl_layer", 340.0)
                else:
                    subkey = schedule.k[self._round]
                    # Evaluate the S-layer byte by byte to estimate the
                    # glitching of the substitution network; the P-layer
                    # glitch depth grows superlinearly with the weight of
                    # the (externally invisible) F-function input.
                    mixed = self._d1 ^ subkey
                    f_out = f_function(self._d1, subkey)
                    s_glitch = 0
                    for shift in range(0, 64, 8):
                        byte_in = (mixed >> shift) & 0xFF
                        byte_sub = SBOX1[byte_in]
                        byte_out = (f_out >> shift) & 0xFF
                        # substitution-stage plus P-layer transitions
                        s_glitch += popcount_int(byte_in ^ byte_sub)
                        s_glitch += popcount_int(byte_sub ^ byte_out)
                    f_weight = popcount_int(mixed & MASK64)
                    self.add_activity(
                        "sbox_unit",
                        0.07 * f_weight * f_weight + 0.05 * s_glitch,
                    )
                    self._d2 ^= f_out
                    self._d1, self._d2 = self._d2, self._d1
                    self._round += 1
                self._left.load(self._d1)
                self._right.load(self._d2)
                self._subkey.load(subkey & MASK64)
                self._counter.load(self._counter.value + 1)
                if self._round == NUM_ROUNDS:
                    result = (
                        (self._d2 ^ schedule.kw[2]) << 64
                    ) | (self._d1 ^ schedule.kw[3])
                    self._out.load(result)
                    self._busy.load(0)
                    self._done.load(1)
        if not inputs["en"]:
            # gated clock: only the always-on root buffer keeps toggling
            self.add_activity("clock_tree", 0.4)
        return outputs
