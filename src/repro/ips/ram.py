"""1KB synchronous RAM (256 x 32-bit words).

Matches the paper's first benchmark: a 1KB memory whose energy behaviour
is strongly data-dependent in write mode (bit-cell and write-driver
switching follows the Hamming distance of the data), which is what makes
the PSM flow's linear-regression refinement shine on this IP.

Interface (44 PI bits / 32 PO bits, as in the paper's Table I):

=========  =====  ==========================================
``rst``    1 bit  synchronous reset of the output register
``cs``     1 bit  chip select
``en``     1 bit  access enable
``we``     1 bit  write enable (1 = write, 0 = read)
``addr``   8 bit  word address
``wdata``  32 bit write data
``rdata``  32 bit read data (registered)
=========  =====  ==========================================
"""

from __future__ import annotations

from typing import Dict, Mapping

from ..hdl.module import Module
from ..hdl.signal import hamming, popcount_int
from ..traces.variables import bool_in, int_in, int_out

#: Number of 32-bit words (256 * 32 bits = 1KB).
WORDS = 256
WORD_WIDTH = 32


class Ram(Module):
    """Cycle-accurate 1KB RAM with per-component activity accounting."""

    NAME = "RAM"
    INPUTS = (
        bool_in("rst"),
        bool_in("cs"),
        bool_in("en"),
        bool_in("we"),
        int_in("addr", 8),
        int_in("wdata", WORD_WIDTH),
    )
    OUTPUTS = (int_out("rdata", WORD_WIDTH),)

    #: Relative switched capacitance per component.  Write-driver and I/O
    #: register switching dominates (it tracks the Hamming distance of
    #: consecutive inputs, the regression predictor); the cell array adds
    #: a smaller data-dependent term, the decoder a small address term.
    #: Combinational cone estimate: row decoder, column muxes,
    #: write drivers and sense amps.
    COMB_GATES = 2000
    COMPONENT_CAPS = {
        "array": 0.25,
        "io": 5.0,
        "decoder": 5.0,
        "clock_tree": 1.0,
    }

    def __init__(self) -> None:
        super().__init__()
        self._mem = [
            self.reg(f"word{i}", WORD_WIDTH, component="array")
            for i in range(WORDS)
        ]
        self._rdata = self.reg("rdata", WORD_WIDTH, component="io")
        self._wdata_reg = self.reg("wdata_reg", WORD_WIDTH, component="io")
        self._addr_reg = self.reg("addr_reg", 8, component="decoder")

    def step(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """One clock cycle of the synchronous RAM."""
        self.add_activity("clock_tree", 2.0)
        if inputs["rst"]:
            self._rdata.load(0)
            return {"rdata": self._rdata.value}
        # Input registers always sample the bus: their toggles are the
        # Hamming distance of consecutive inputs.
        self._wdata_reg.load(inputs["wdata"])
        self._addr_reg.load(inputs["addr"])
        if inputs["cs"] and inputs["en"]:
            word = self._mem[inputs["addr"]]
            if inputs["we"]:
                # Write: cells flip by HD(old word, new data); the write
                # drivers burn energy proportional to the data weight.
                self.add_activity(
                    "array", 0.3 * hamming(word.value, inputs["wdata"])
                )
                word.load(inputs["wdata"])
                self._rdata.load(inputs["wdata"])
            else:
                # Read: precharged bitlines discharge on roughly half the
                # columns regardless of data, plus a small data term.
                self.add_activity(
                    "array",
                    0.5 * WORD_WIDTH + 0.05 * popcount_int(word.value),
                )
                self._rdata.load(word.value)
            # Row decoder fires on every access.
            self.add_activity("decoder", 1.0)
        return {"rdata": self._rdata.value}
