"""Multiplier-accumulator (the paper's DesignWare-style *MultSum*).

Computes ``acc <= (clear ? 0 : acc) + a * b + c`` every enabled cycle.
The datapath is a single-cycle 16x16 multiplier feeding a 32-bit adder
and accumulator; power is data-dependent through the product register
and multiplier-array switching, but — as the paper observes — only
partially explained by the Hamming distance of consecutive inputs, which
is why its PSM shows a somewhat higher MRE than the RAM's.

Interface (49 PI bits / 32 PO bits, as in the paper's Table I):

=========  ======  ===================================
``a``      16 bit  multiplier operand
``b``      16 bit  multiplicand operand
``c``      16 bit  addend
``clear``  1 bit   zero the accumulator this cycle
``result`` 32 bit  registered accumulator value
=========  ======  ===================================
"""

from __future__ import annotations

from typing import Dict, Mapping

from ..hdl.module import Module
from ..hdl.signal import popcount_int
from ..traces.variables import bool_in, int_in, int_out

MASK32 = 0xFFFFFFFF


class MultSum(Module):
    """Cycle-accurate multiplier-accumulator."""

    NAME = "MultSum"
    INPUTS = (
        int_in("a", 16),
        int_in("b", 16),
        int_in("c", 16),
        bool_in("clear"),
    )
    OUTPUTS = (int_out("result", 32),)

    #: Combinational cone estimate: the 16x16 partial-product array
    #: plus the 32-bit accumulate adder.
    COMB_GATES = 1500
    COMPONENT_CAPS = {
        "input_regs": 3.0,
        "multiplier": 1.0,
        "accumulator": 1.0,
        "clock_tree": 1.0,
    }

    def __init__(self) -> None:
        super().__init__()
        self._a = self.reg("a_reg", 16, component="input_regs")
        self._b = self.reg("b_reg", 16, component="input_regs")
        self._c = self.reg("c_reg", 16, component="input_regs")
        self._prod = self.reg("prod_reg", 32, component="multiplier")
        self._acc = self.reg("acc_reg", 32, component="accumulator")

    def step(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """One clock cycle: registered multiply-accumulate."""
        self.add_activity("clock_tree", 2.0)
        self._a.load(inputs["a"])
        self._b.load(inputs["b"])
        self._c.load(inputs["c"])
        # Shift-add partial-product evaluation: one row per multiplier
        # bit, with the array switching accumulated per row (the same
        # work an RTL Wallace tree performs each cycle).
        a_value = self._a.value
        b_value = self._b.value
        product = 0
        array_toggles = 0
        for bit in range(16):
            if (b_value >> bit) & 1:
                row = (a_value << bit) & MASK32
                array_toggles += popcount_int(product ^ (product + row))
                product = (product + row) & MASK32
        self.add_activity("multiplier", 0.15 * array_toggles)
        self._prod.load(product)
        base = 0 if inputs["clear"] else self._acc.value
        self._acc.load((base + product + self._c.value) & MASK32)
        return {"result": self._acc.value}
