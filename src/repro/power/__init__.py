"""Dynamic-power estimation substrate (PrimeTime PX / DesignCompiler stand-ins)."""

from .estimator import (
    PowerEstimator,
    PowerSimulationResult,
    component_breakdown,
    run_power_simulation,
)
from .synthesis import (
    SynthesisReport,
    count_source_lines,
    estimate_gates,
    synthesis_time_model,
    synthesize,
)
from .tech import DEFAULT_TECH, TechLibrary

__all__ = [
    "TechLibrary",
    "DEFAULT_TECH",
    "PowerEstimator",
    "PowerSimulationResult",
    "run_power_simulation",
    "component_breakdown",
    "SynthesisReport",
    "synthesize",
    "count_source_lines",
    "estimate_gates",
    "synthesis_time_model",
]
