"""Synthesis-report substitute (stand-in for Synopsys DesignCompiler).

Table I of the paper characterises each benchmark with its source-code
size, PI/PO widths, synthesis time and number of memory elements.  We
report the same descriptors for our Python HDL models: source lines come
from the actual module implementation, memory elements from the declared
registers, and the synthesis-time column from a deterministic effort model
(synthesis is CPU time the paper spends in DesignCompiler; we model it as a
function of design size so the relative ordering of the benchmarks is
preserved).
"""

from __future__ import annotations

import inspect
import math
import sys
from dataclasses import dataclass
from typing import Type

from ..hdl.module import Module


@dataclass(frozen=True)
class SynthesisReport:
    """Design-size descriptors for one IP (Table I row)."""

    name: str
    lines: int
    pi_bits: int
    po_bits: int
    memory_elements: int
    gate_estimate: int
    synthesis_time: float

    def row(self) -> tuple:
        """Table I row: (IP, Lines, PIs, POs, Syn. time, Memory elements)."""
        return (
            self.name,
            self.lines,
            self.pi_bits,
            self.po_bits,
            round(self.synthesis_time, 1),
            self.memory_elements,
        )


def count_source_lines(module_class: Type[Module]) -> int:
    """Count the non-blank source lines implementing a module class.

    Includes the module class itself plus any helper functions defined in
    the same file (the equivalent of the Verilog file's line count).
    """
    source_file = inspect.getsourcefile(module_class)
    if source_file is None:  # pragma: no cover - builtins only
        return 0
    mod = sys.modules.get(module_class.__module__)
    if mod is not None and getattr(mod, "__file__", None):
        text = inspect.getsource(mod)
    else:  # pragma: no cover - detached class
        text = inspect.getsource(module_class)
    return sum(1 for line in text.splitlines() if line.strip())


def estimate_gates(module: Module) -> int:
    """Rough equivalent-gate count.

    Sequential cells count six gates each, but large storage arrays map
    to memory macros rather than flop gates, so state bits beyond 512
    contribute only marginally.  Combinational logic comes from the
    module's ``COMB_GATES`` hint when declared (the ciphers' S-box and
    diffusion cones dwarf their register count) or a small default
    derived from the component weights.
    """
    state = module.state_bits()
    effective_state = min(state, 512) + 0.05 * max(state - 512, 0)
    interface = type(module).input_bits() + type(module).output_bits()
    comb = getattr(module, "COMB_GATES", None)
    if comb is None:
        caps = getattr(module, "COMPONENT_CAPS", {})
        weight = sum(caps.values()) if caps else len(module.components)
        comb = 50 * weight
    return int(6 * effective_state + 4 * interface + comb)


def synthesis_time_model(gates: int, memory_elements: int) -> float:
    """Deterministic synthesis-effort model in seconds.

    Grows slightly super-linearly with gate count, with an extra term for
    memory elements (mapping RAM bits is fast per bit but the array is
    large, mirroring the paper where RAM has the largest element count but
    not the longest synthesis time).
    """
    if gates <= 0:
        return 0.0
    return round(
        2.0
        + 0.0008 * gates * math.log2(gates + 2)
        + 0.0005 * memory_elements,
        1,
    )


def synthesize(module: Module) -> SynthesisReport:
    """Produce the Table I descriptors for a module instance."""
    gates = estimate_gates(module)
    memory = module.state_bits()
    return SynthesisReport(
        name=module.NAME,
        lines=count_source_lines(type(module)),
        pi_bits=type(module).input_bits(),
        po_bits=type(module).output_bits(),
        memory_elements=memory,
        gate_estimate=gates,
        synthesis_time=synthesis_time_model(gates, memory),
    )
