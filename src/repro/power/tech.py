"""Technology parameters for the dynamic-power model.

The paper's Definition 2 gives the per-instant dynamic power as

    delta_i = 1/2 * Vdd^2 * f * C * alpha(t_i)

The :class:`TechLibrary` holds ``Vdd``, ``f`` and the per-toggle switched
capacitance; the estimator multiplies them by the recorded activity.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TechLibrary:
    """Electrical parameters of the target technology.

    Parameters
    ----------
    vdd:
        Supply voltage in volts.
    frequency:
        Clock frequency in hertz.
    cap_per_toggle:
        Effective switched capacitance per recorded toggle, in farads.
        One "toggle" is one bit flip of a register or an equivalent unit of
        combinational switching reported by a module.
    unit:
        Display unit for reports ("mW" by default).
    """

    vdd: float = 1.0
    frequency: float = 100e6
    cap_per_toggle: float = 10e-15
    unit: str = "mW"

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ValueError("vdd must be positive")
        if self.frequency <= 0:
            raise ValueError("frequency must be positive")
        if self.cap_per_toggle <= 0:
            raise ValueError("cap_per_toggle must be positive")

    @property
    def energy_per_toggle(self) -> float:
        """Power contribution (watts) of one toggle per cycle.

        ``1/2 * Vdd^2 * f * C`` — multiply by the cycle's toggle count to
        obtain the dynamic power of that cycle.
        """
        return 0.5 * self.vdd ** 2 * self.frequency * self.cap_per_toggle

    @property
    def unit_scale(self) -> float:
        """Multiplier converting watts to the display unit."""
        scales = {"W": 1.0, "mW": 1e3, "uW": 1e6, "nW": 1e9}
        if self.unit not in scales:
            raise ValueError(f"unknown unit {self.unit!r}")
        return scales[self.unit]


#: Default technology used across benchmarks, yielding mW-scale figures
#: comparable with the paper's example PSM (Fig. 2).
DEFAULT_TECH = TechLibrary()
