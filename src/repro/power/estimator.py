"""Gate-level power-simulator substitute (stand-in for PrimeTime PX).

The estimator converts the per-cycle switching activity recorded by the HDL
kernel into a :class:`~repro.traces.PowerTrace`, applying the paper's
dynamic-power formula per component:

    delta_i = 1/2 * Vdd^2 * f * sum_c C_c * alpha_c(t_i)

where ``alpha_c`` is the activity of component ``c`` and ``C_c`` its
relative capacitance weight (from the module's ``COMPONENT_CAPS`` or 1.0).
Optionally adds seeded Gaussian measurement noise so reference traces carry
the small per-sample variation visible in the paper's Fig. 3 power column.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from ..hdl.module import Module
from ..hdl.simulator import ActivityRecord, SimulationResult, Simulator
from ..traces.functional import FunctionalTrace
from ..traces.power import PowerTrace
from .tech import DEFAULT_TECH, TechLibrary


class PowerEstimator:
    """Computes dynamic power traces from switching activity.

    Parameters
    ----------
    tech:
        Technology parameters (voltage, frequency, capacitance).
    noise_sigma:
        Standard deviation of the additive measurement noise, expressed as
        a fraction of each sample's value (0 disables noise).
    seed:
        Seed for the noise generator; estimates are deterministic for a
        fixed seed.
    """

    def __init__(
        self,
        tech: TechLibrary = DEFAULT_TECH,
        noise_sigma: float = 0.002,
        seed: Optional[int] = 0,
    ) -> None:
        if noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
        self.tech = tech
        self.noise_sigma = noise_sigma
        self.seed = seed

    def estimate(
        self,
        activity: ActivityRecord,
        component_caps: Optional[Mapping[str, float]] = None,
        name: str = "power",
    ) -> PowerTrace:
        """Turn an activity record into a power trace (display units)."""
        caps = dict(component_caps or {})
        scale = self.tech.energy_per_toggle * self.tech.unit_scale
        total = np.zeros(len(activity), dtype=np.float64)
        for component in activity.components:
            weight = float(caps.get(component, 1.0))
            total += weight * activity.column(component)
        values = total * scale
        if self.noise_sigma > 0:
            rng = np.random.default_rng(self.seed)
            values = values * (
                1.0 + rng.normal(0.0, self.noise_sigma, size=len(values))
            )
            values = np.clip(values, 0.0, None)
        return PowerTrace(values, name=name)

    def estimate_module(
        self,
        module: Module,
        activity: ActivityRecord,
        name: Optional[str] = None,
    ) -> PowerTrace:
        """Estimate using the module's declared capacitance weights."""
        caps = getattr(module, "COMPONENT_CAPS", {})
        return self.estimate(
            activity, caps, name=name or f"{module.NAME}.power"
        )

    def estimate_components(
        self,
        module: Module,
        activity: ActivityRecord,
    ) -> Dict[str, PowerTrace]:
        """Per-component power traces (hierarchical characterisation).

        The component traces sum to the module's total power trace up to
        the per-component measurement noise (each component gets its own
        noise stream, derived deterministically from the seed).
        """
        caps = getattr(module, "COMPONENT_CAPS", {})
        scale = self.tech.energy_per_toggle * self.tech.unit_scale
        traces: Dict[str, PowerTrace] = {}
        for index, component in enumerate(activity.components):
            weight = float(caps.get(component, 1.0))
            values = weight * activity.column(component) * scale
            if self.noise_sigma > 0:
                seed = None if self.seed is None else self.seed + index + 1
                rng = np.random.default_rng(seed)
                values = np.clip(
                    values
                    * (1.0 + rng.normal(0.0, self.noise_sigma, len(values))),
                    0.0,
                    None,
                )
            traces[component] = PowerTrace(
                values, name=f"{module.NAME}.{component}"
            )
        return traces


@dataclass
class PowerSimulationResult:
    """Functional trace + reference power trace + timing breakdown."""

    trace: FunctionalTrace
    power: PowerTrace
    functional_time: float
    power_time: float

    @property
    def total_time(self) -> float:
        """End-to-end reference-generation time (the paper's PX column)."""
        return self.functional_time + self.power_time


def run_power_simulation(
    module: Module,
    stimulus: Iterable[Mapping[str, int]],
    estimator: Optional[PowerEstimator] = None,
    name: Optional[str] = None,
) -> PowerSimulationResult:
    """One-call training-pair generation: simulate + estimate power.

    This is the reproduction of the paper's reference flow: simulate the IP
    on the stimulus while recording switching activity, then run the power
    model over the activity — the equivalent of running PrimeTime PX on the
    functional trace.
    """
    estimator = estimator or PowerEstimator()
    simulator = Simulator(module, record_activity=True)
    result: SimulationResult = simulator.run(stimulus, name=name)
    start = time.perf_counter()
    power = estimator.estimate_module(module, result.activity, name=name)
    power_time = time.perf_counter() - start
    return PowerSimulationResult(
        trace=result.trace,
        power=power,
        functional_time=result.wall_time,
        power_time=power_time,
    )


def component_breakdown(
    module: Module,
    activity: ActivityRecord,
    tech: TechLibrary = DEFAULT_TECH,
) -> Dict[str, float]:
    """Mean power per component — used to analyse hierarchical IPs.

    The paper's Camellia discussion hinges on subcomponents with poorly
    correlated power; this helper quantifies each component's share.
    """
    caps = getattr(module, "COMPONENT_CAPS", {})
    scale = tech.energy_per_toggle * tech.unit_scale
    breakdown = {}
    for component in activity.components:
        weight = float(caps.get(component, 1.0))
        column = activity.column(component)
        mean = float(np.mean(column)) if len(column) else 0.0
        breakdown[component] = weight * mean * scale
    return breakdown
