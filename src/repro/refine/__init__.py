"""Counterexample-driven accuracy refinement.

The subsystem that closes the accuracy loop the paper leaves open:
Table III reports MRE as a one-shot number, while this package treats it
as a searched and tracked trajectory.

* :mod:`repro.refine.oracle` — replays stimuli through the mined PSM and
  the reference power model, scoring per-window MRE
  (:func:`repro.core.metrics.windowed_mre`) and wrong-state-prediction
  episodes (:func:`repro.core.hmm.extract_wsp_events`) to rank where the
  model is worst.
* :mod:`repro.refine.search` — a seeded perturbation engine over the
  worst windows (bursty / idle-heavy / phase-alternating / toggle-max
  families from :mod:`repro.testbench.stimuli`) hunting for
  counterexample stimuli the model estimates badly.
* :mod:`repro.refine.driver` — the retraining loop: counterexample
  traces are folded back into training through
  :meth:`repro.core.pipeline.PsmFlow.fit_stream`, candidates are
  accepted only when the held-out MRE does not increase (so refinement
  is monotone by construction), and accepted models are published
  through :class:`repro.core.streaming.BundlePublisher` for registry
  hot swap.
* :mod:`repro.refine.trajectory` — the ``psmgen-accuracy/v1`` benchmark
  artifact (``BENCH_accuracy.json``) with the same
  ``--compare``/``--threshold`` regression-gate contract as the
  micro-bench harness.
"""

from .driver import RefineConfig, RefineResult, refine_benchmark
from .oracle import AccuracyOracle, OracleReport, WindowScore
from .search import Counterexample, StimulusSearch
from .trajectory import (
    ACCURACY_SCHEMA,
    compare_accuracy,
    result_row,
    run_accuracy,
    validate_accuracy,
)

__all__ = [
    "AccuracyOracle",
    "OracleReport",
    "WindowScore",
    "Counterexample",
    "StimulusSearch",
    "RefineConfig",
    "RefineResult",
    "refine_benchmark",
    "ACCURACY_SCHEMA",
    "run_accuracy",
    "result_row",
    "validate_accuracy",
    "compare_accuracy",
]
