"""The tracked accuracy trajectory: ``psmgen-accuracy/v1``.

Mirrors the micro-bench harness for accuracy instead of speed: ``psmgen
bench --accuracy`` runs the refinement loop over the benchmark IPs and
writes a schema-versioned JSON report (the committed
``BENCH_accuracy.json``), and ``--compare``/``--threshold`` turn it
into a regression gate — the same contract ``compare_micro`` gives
throughput.

Two gates apply on comparison:

* **self gate** — every row of the *current* payload must satisfy
  ``mre_after <= mre_before`` (the driver guarantees this by
  construction; a violation means the monotone accept/reject loop is
  broken);
* **baseline gate** — a row's refined MRE must not exceed the
  baseline's refined MRE for the same IP by more than ``threshold``x
  (with a small absolute slack so near-zero MREs do not gate on noise).
  IPs present on only one side are skipped, so a one-IP CI smoke run
  can compare against the committed four-IP artifact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..microbench import check_fields
from ..testbench import BENCHMARKS
from .driver import RefineConfig, RefineResult, refine_benchmark

#: Identifier of the payload layout (bump on breaking changes).
ACCURACY_SCHEMA = "psmgen-accuracy/v1"

#: Absolute MRE slack (percentage points) under the baseline gate.
ABSOLUTE_SLACK = 0.5

_ROW_FIELDS = (
    ("ip", str),
    ("mre_before", (int, float)),
    ("mre_after", (int, float)),
    ("wsp_before", (int, float)),
    ("wsp_after", (int, float)),
    ("iterations", int),
    ("counterexamples_found", int),
    ("counterexamples_accepted", int),
    ("converged", bool),
    ("eval_cycles", int),
    ("wall_s", (int, float)),
)


def result_row(result: RefineResult) -> dict:
    """One report row from a finished refinement run."""
    return {
        "ip": result.ip,
        "mre_before": round(result.mre_before, 4),
        "mre_after": round(result.mre_after, 4),
        "wsp_before": round(result.wsp_before, 4),
        "wsp_after": round(result.wsp_after, 4),
        "iterations": len(result.iterations),
        "counterexamples_found": result.counterexamples_found,
        "counterexamples_accepted": result.counterexamples_accepted,
        "converged": result.converged,
        "eval_cycles": result.eval_cycles,
        "wall_s": round(result.wall_s, 3),
    }


def run_accuracy(
    names: Optional[Sequence[str]] = None,
    config: Optional[RefineConfig] = None,
    progress=None,
) -> dict:
    """Refine every requested IP and assemble the trajectory payload."""
    from ..bench import scale_factor

    config = config or RefineConfig()
    rows = []
    for name in names or list(BENCHMARKS):
        rows.append(
            result_row(refine_benchmark(name, config, progress=progress))
        )
    return {
        "schema": ACCURACY_SCHEMA,
        "repro_scale": scale_factor(),
        "seed": config.seed,
        "iterations_budget": config.iterations,
        "oracle_window": config.oracle_window,
        "results": rows,
    }


def validate_accuracy(payload: dict) -> None:
    """Raise ``ValueError`` unless ``payload`` is a well-formed report."""
    if not isinstance(payload, dict):
        raise ValueError("accuracy payload must be a JSON object")
    if payload.get("schema") != ACCURACY_SCHEMA:
        raise ValueError(
            f"unexpected schema {payload.get('schema')!r}; "
            f"want {ACCURACY_SCHEMA!r}"
        )
    results = payload.get("results")
    if not isinstance(results, list) or not results:
        raise ValueError("payload has no results")
    for row in results:
        check_fields(row, _ROW_FIELDS, context="accuracy row")


def compare_accuracy(
    current: dict, baseline: dict, threshold: float = 1.5
) -> List[str]:
    """Accuracy regressions of ``current`` against ``baseline``.

    Returns human-readable descriptions (empty = both gates pass); both
    payloads are validated first.
    """
    validate_accuracy(current)
    validate_accuracy(baseline)
    regressions: List[str] = []
    for row in current["results"]:
        if row["mre_after"] > row["mre_before"] + 1e-9:
            regressions.append(
                f"{row['ip']}: refinement increased MRE "
                f"({row['mre_before']:.2f}% -> {row['mre_after']:.2f}%)"
            )
    base: Dict[str, dict] = {
        row["ip"]: row for row in baseline["results"]
    }
    for row in current["results"]:
        reference = base.get(row["ip"])
        if reference is None:
            continue
        allowed = max(
            reference["mre_after"] * threshold,
            reference["mre_after"] + ABSOLUTE_SLACK,
        )
        if row["mre_after"] > allowed:
            regressions.append(
                f"{row['ip']}: refined MRE {row['mre_after']:.2f}% vs "
                f"baseline {reference['mre_after']:.2f}% "
                f"(allowed {allowed:.2f}%)"
            )
    return regressions


def format_accuracy(payload: dict) -> str:
    """Plain-text table of one accuracy payload (CLI output)."""
    lines = [
        f"{'ip':>10s} {'MRE before':>11s} {'MRE after':>10s} "
        f"{'iters':>5s} {'cx found':>8s} {'cx used':>7s} "
        f"{'converged':>9s} {'wall':>8s}"
    ]
    for row in payload["results"]:
        lines.append(
            f"{row['ip']:>10s} {row['mre_before']:>10.2f}% "
            f"{row['mre_after']:>9.2f}% {row['iterations']:>5d} "
            f"{row['counterexamples_found']:>8d} "
            f"{row['counterexamples_accepted']:>7d} "
            f"{str(row['converged']).lower():>9s} "
            f"{row['wall_s']:>7.1f}s"
        )
    return "\n".join(lines)
