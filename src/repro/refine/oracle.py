"""The accuracy oracle: where is the mined model worst?

Replays a stimulus through both sides of the methodology — the reference
power model (gate-level estimator) and the mined PSM set — and scores
the disagreement window by window.  Each window carries its MRE
(per-window floored denominator, zero-power windows skipped with a
count — see :func:`repro.core.metrics.windowed_mre`) and the
wrong-state-prediction episodes overlapping it
(:func:`repro.core.hmm.extract_wsp_events`), so the search layer can
rank windows by *how wrong* and *how lost* the model is there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Type

import numpy as np

from ..core.hmm import WspEvent, events_in_window, extract_wsp_events
from ..core.metrics import mre, windowed_mre
from ..core.pipeline import PsmFlow
from ..core.simulation import EstimationResult
from ..hdl.module import Module
from ..power.estimator import PowerSimulationResult, run_power_simulation
from ..testbench.stimuli import Stimulus
from ..traces.functional import FunctionalTrace
from ..traces.power import PowerTrace

#: Default oracle window, in instants.
DEFAULT_ORACLE_WINDOW = 256


@dataclass(frozen=True)
class WindowScore:
    """Per-window disagreement between the PSM and the reference.

    ``mre`` is ``None`` when the window was skipped (zero reference
    power); ``desync`` counts its unreliable instants and ``events`` the
    wrong-state-prediction episodes overlapping it.
    """

    start: int
    stop: int
    mre: Optional[float]
    desync: int
    events: int

    @property
    def defined(self) -> bool:
        """True when the window has a usable MRE score."""
        return self.mre is not None


@dataclass
class OracleReport:
    """Scored replay of one trace through model and reference."""

    windows: List[WindowScore]
    skipped: int
    overall_mre: float
    wsp: float
    desync_fraction: float
    events: List[WspEvent] = field(default_factory=list)
    result: Optional[EstimationResult] = None

    def worst(self, count: int) -> List[WindowScore]:
        """The ``count`` worst defined windows.

        Ranked by MRE, then by desynchronised instants, with the window
        position as the final tie-break so the ordering is fully
        deterministic.
        """
        defined = [w for w in self.windows if w.defined]
        defined.sort(key=lambda w: (-w.mre, -w.desync, w.start))
        return defined[:count]


class AccuracyOracle:
    """Scores stimuli/traces against a fitted flow and its reference IP.

    ``flow`` is mutable on purpose: the refinement driver points the
    oracle at each newly-accepted model so subsequent scoring rounds
    judge the current model, not the starting one.
    """

    def __init__(
        self,
        flow: PsmFlow,
        module_class: Type[Module],
        window: int = DEFAULT_ORACLE_WINDOW,
        engine: str = "auto",
    ) -> None:
        self.flow = flow
        self.module_class = module_class
        self.window = window
        self.engine = engine

    # ------------------------------------------------------------------
    def score_trace(
        self, trace: FunctionalTrace, reference: PowerTrace
    ) -> OracleReport:
        """Score an already-simulated (functional, power) pair."""
        result = self.flow.estimate(trace, engine=self.engine)
        tiles = windowed_mre(
            result.estimated.values, reference.values, self.window
        )
        events = extract_wsp_events(result)
        unreliable = ~np.asarray(result.reliable, dtype=bool)
        windows = []
        for (start, stop), score in zip(tiles.bounds, tiles.scores):
            windows.append(
                WindowScore(
                    start=start,
                    stop=stop,
                    mre=score,
                    desync=int(unreliable[start : stop + 1].sum()),
                    events=len(events_in_window(events, start, stop)),
                )
            )
        return OracleReport(
            windows=windows,
            skipped=tiles.skipped,
            overall_mre=mre(result.estimated.values, reference.values),
            wsp=result.wrong_state_fraction,
            desync_fraction=result.desync_fraction,
            events=events,
            result=result,
        )

    def score_stimulus(
        self, stimulus: Stimulus, name: Optional[str] = None
    ) -> Tuple[OracleReport, PowerSimulationResult]:
        """Replay a stimulus through reference and model, then score it.

        Returns the report plus the reference simulation, whose
        ``(trace, power)`` pair is exactly the training material a
        counterexample contributes when folded back into the fit.
        """
        reference = run_power_simulation(
            self.module_class(), stimulus, name=name
        )
        return self.score_trace(reference.trace, reference.power), reference

    # ------------------------------------------------------------------
    def input_rows(
        self, trace: FunctionalTrace, start: int, stop: int
    ) -> List[dict]:
        """The primary-input assignment rows of one inclusive window.

        The raw material the perturbation families mutate: replaying
        these rows as a stimulus reproduces the window's input behaviour
        from reset.
        """
        window = trace.slice(start, stop)
        inputs = window.inputs
        columns = {v.name: window.column(v.name) for v in inputs}
        return [
            {v.name: int(columns[v.name][i]) for v in inputs}
            for i in range(len(window))
        ]
