"""The refinement driver: oracle → search → retrain → publish.

One :func:`refine_benchmark` run is the active-learning loop applied to
a built-in benchmark IP:

1. fit the base model on the IP's short-TS verification suite through
   :meth:`~repro.core.pipeline.PsmFlow.fit_stream` (the same windowed
   operators every later retrain uses);
2. score a seeded held-out long-TS trace with the
   :class:`~repro.refine.oracle.AccuracyOracle`;
3. search the worst windows for counterexample stimuli
   (:class:`~repro.refine.search.StimulusSearch`);
4. refit a candidate model over the base pair plus every accepted
   counterexample pair, and **accept it only when the held-out MRE does
   not increase** — refinement is therefore monotone by construction
   (``mre_after <= mre_before`` always holds);
5. publish each accepted model through an optional
   :class:`~repro.core.streaming.BundlePublisher` (registry hot swap),
   and iterate until no counterexamples are found, the improvement
   drops below ``epsilon``, or the iteration budget is spent.

Everything is seeded: two runs with the same ``--seed`` produce
bit-identical refined bundles (state ids are reset before every fit,
the reference power model is deterministic, and the accuracy metadata
embedded in the bundle carries no wall times).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.metrics import mre
from ..core.pipeline import PsmFlow
from ..core.psm import reset_state_ids
from ..core.streaming import DEFAULT_WINDOW, BundlePublisher
from ..power.estimator import run_power_simulation
from ..testbench import BENCHMARKS
from .oracle import DEFAULT_ORACLE_WINDOW, AccuracyOracle
from .search import DEFAULT_FAMILIES, Counterexample, StimulusSearch


@dataclass
class RefineConfig:
    """Budget and search knobs of one refinement run."""

    iterations: int = 3
    seed: int = 0
    eval_cycles: Optional[int] = None
    oracle_window: int = DEFAULT_ORACLE_WINDOW
    worst_windows: int = 4
    families: Sequence[str] = DEFAULT_FAMILIES
    epsilon: float = 0.05
    max_counterexamples: int = 12
    stream_window: int = DEFAULT_WINDOW
    jobs: int = 1


@dataclass
class IterationRecord:
    """Outcome of one refinement iteration.

    ``strategy`` names the accepted counterexample subset (``all``,
    ``replay-only`` or ``top-1`` — the driver backs off through them
    when folding the full batch in makes the held-out score worse), or
    ``rejected`` when every subset failed the monotonicity gate.
    """

    index: int
    found: int
    accepted: bool
    candidate_mre: Optional[float]
    mre: float
    strategy: str = "rejected"

    def describe(self) -> str:
        """One-line rendering for the CLI trajectory output."""
        if self.found == 0:
            return f"iteration {self.index}: no counterexamples found"
        verdict = (
            f"accepted ({self.strategy})" if self.accepted else "rejected"
        )
        candidate = (
            f"{self.candidate_mre:.2f}%"
            if self.candidate_mre is not None
            else "n/a"
        )
        return (
            f"iteration {self.index}: {self.found} counterexample(s), "
            f"candidate MRE {candidate} {verdict} "
            f"-> current MRE {self.mre:.2f}%"
        )


@dataclass
class RefineResult:
    """Everything one refinement run produced."""

    ip: str
    seed: int
    mre_before: float
    mre_after: float
    wsp_before: float
    wsp_after: float
    eval_cycles: int
    iterations: List[IterationRecord] = field(default_factory=list)
    counterexamples_found: int = 0
    counterexamples_accepted: int = 0
    converged: bool = False
    wall_s: float = 0.0
    flow: Optional[PsmFlow] = None
    variables: list = field(default_factory=list)

    def accuracy_metadata(self) -> dict:
        """The bundle-embeddable accuracy block.

        Deterministic values only — no wall times — so two runs with the
        same seed write byte-identical bundles; timings live in the
        ``psmgen-accuracy/v1`` trajectory artifact instead.
        """
        return {
            "ip": self.ip,
            "seed": self.seed,
            "mre_before": self.mre_before,
            "mre_after": self.mre_after,
            "wsp_before": self.wsp_before,
            "wsp_after": self.wsp_after,
            "eval_cycles": self.eval_cycles,
            "iterations": len(self.iterations),
            "counterexamples_found": self.counterexamples_found,
            "counterexamples_accepted": self.counterexamples_accepted,
            "converged": self.converged,
        }


def _fit(
    spec, training: Sequence[Tuple], config: RefineConfig
) -> PsmFlow:
    """One deterministic fit over the training pairs, via the stream path.

    State ids are reset first so repeated fits in one process (and the
    second CLI run of a determinism check) produce identical PSMs.
    """
    reset_state_ids()
    flow_config = spec.flow_config()
    flow_config.jobs = config.jobs
    return PsmFlow(flow_config).fit_stream(
        list(training), window=config.stream_window
    )


def refine_benchmark(
    name: str,
    config: Optional[RefineConfig] = None,
    publisher: Optional[BundlePublisher] = None,
    progress: Optional[Callable[[str], None]] = None,
) -> RefineResult:
    """Run the counterexample-driven refinement loop on one IP."""
    config = config or RefineConfig()
    if name not in BENCHMARKS:
        raise ValueError(
            f"unknown IP {name!r}; choose from {', '.join(BENCHMARKS)}"
        )
    from ..bench import long_cycles

    spec = BENCHMARKS[name]
    eval_cycles = config.eval_cycles or max(long_cycles() // 4, 500)
    start = time.perf_counter()

    def tell(message: str) -> None:
        if progress is not None:
            progress(message)

    base = run_power_simulation(
        spec.module_class(), spec.short_ts(), name=f"{name}.train"
    )
    training: List[Tuple] = [(base.trace, base.power)]
    flow = _fit(spec, training, config)

    eval_ref = run_power_simulation(
        spec.module_class(),
        spec.long_ts(eval_cycles, seed=config.seed),
        name=f"{name}.eval",
    )
    oracle = AccuracyOracle(
        flow, spec.module_class, window=config.oracle_window
    )
    report = oracle.score_trace(eval_ref.trace, eval_ref.power)
    search = StimulusSearch(
        oracle, families=config.families, seed=config.seed
    )

    result = RefineResult(
        ip=name,
        seed=config.seed,
        mre_before=report.overall_mre,
        mre_after=report.overall_mre,
        wsp_before=report.wsp,
        wsp_after=report.wsp,
        eval_cycles=eval_cycles,
        flow=flow,
        variables=base.trace.variables,
    )
    tell(
        f"{name}: baseline MRE {report.overall_mre:.2f}% "
        f"WSP {report.wsp:.2f}% over {eval_cycles} held-out cycles"
    )

    current_mre = report.overall_mre
    for index in range(config.iterations):
        counterexamples: List[Counterexample] = search.find(
            report,
            eval_ref.trace,
            threshold=current_mre,
            iteration=index,
            worst_windows=config.worst_windows,
            limit=config.max_counterexamples,
        )
        result.counterexamples_found += len(counterexamples)
        if not counterexamples:
            result.iterations.append(
                IterationRecord(index, 0, False, None, current_mre)
            )
            result.converged = True
            tell(f"iteration {index}: converged (no counterexamples)")
            break

        # Backoff acceptance: the full batch first, then only the
        # identity replays (adversarial families can poison the power
        # attributes of joined states), then the single best replay.
        # The first subset whose refit does not increase the held-out
        # MRE wins; when all fail the iteration is rejected and the
        # current model stands (monotonicity guarantee).
        replays = [cx for cx in counterexamples if cx.family == "replay"]
        subsets = [("all", counterexamples)]
        if replays and len(replays) < len(counterexamples):
            subsets.append(("replay-only", replays))
        preferred = replays if replays else counterexamples
        if len(preferred) > 1 or len(subsets) > 1:
            subsets.append(("top-1", preferred[:1]))

        accepted = False
        candidate_mre = None
        for strategy, subset in subsets:
            candidate_training = training + [
                (cx.functional, cx.power) for cx in subset
            ]
            candidate_flow = _fit(spec, candidate_training, config)
            oracle.flow = candidate_flow
            candidate_report = oracle.score_trace(
                eval_ref.trace, eval_ref.power
            )
            candidate_mre = candidate_report.overall_mre
            if candidate_mre <= current_mre:
                accepted = True
                break
            oracle.flow = flow

        if accepted:
            improvement = current_mre - candidate_mre
            flow = candidate_flow
            training = candidate_training
            report = candidate_report
            current_mre = candidate_mre
            result.counterexamples_accepted += len(subset)
            result.flow = flow
            result.mre_after = current_mre
            result.wsp_after = candidate_report.wsp
            record = IterationRecord(
                index, len(counterexamples), True, candidate_mre,
                current_mre, strategy=strategy,
            )
            result.iterations.append(record)
            tell(record.describe())
            if publisher is not None:
                publisher.publish(flow.psms, reason=f"refine-{index}")
            if improvement < config.epsilon:
                result.converged = True
                tell(
                    f"iteration {index}: converged "
                    f"(improvement {improvement:.3f} < "
                    f"epsilon {config.epsilon})"
                )
                break
        else:
            record = IterationRecord(
                index, len(counterexamples), False, candidate_mre,
                current_mre,
            )
            result.iterations.append(record)
            tell(record.describe())

    result.wall_s = time.perf_counter() - start
    return result
