"""Counterexample stimulus search over the oracle's worst windows.

Each search round takes the ranked windows of an
:class:`~repro.refine.oracle.OracleReport`, extracts their input rows
and mutates them with the seeded perturbation families of
:mod:`repro.testbench.stimuli` (bursty, idle-heavy, phase-alternating,
adversarial toggle-max).  A perturbed stimulus is replayed through the
oracle; when the model's MRE on it exceeds the current held-out MRE the
stimulus is a *counterexample* — concrete evidence of a behaviour the
training set under-covers — and its reference ``(functional, power)``
pair is handed to the refinement driver as new training material.

Every candidate's seed is derived deterministically from
``(search seed, iteration, window rank, family)``, so a refinement run
is reproducible end to end from one CLI ``--seed``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..testbench.stimuli import PERTURBATION_FAMILIES, Stimulus
from ..traces.functional import FunctionalTrace
from ..traces.power import PowerTrace
from .oracle import AccuracyOracle, OracleReport

#: Default family rotation, in deterministic application order.  The
#: identity ``replay`` family anchors each round (the observed bad
#: window is itself the most direct counterexample); the four mutating
#: families search beyond the observed behaviours.
DEFAULT_FAMILIES: Tuple[str, ...] = (
    "replay",
    "bursty",
    "idle-heavy",
    "phase-alternating",
    "toggle-max",
)


def derive_seed(seed: int, iteration: int, rank: int, family: int) -> int:
    """Deterministic per-candidate seed from the run seed and position."""
    mixed = (
        seed * 1_000_003
        + iteration * 10_007
        + rank * 101
        + family
    )
    return mixed % (2**32)


@dataclass(frozen=True)
class Counterexample:
    """A found stimulus the current model estimates badly.

    ``mre`` is the model's full-stimulus MRE on it; ``functional`` /
    ``power`` are the reference pair ready to join the training set.
    """

    family: str
    window_start: int
    window_stop: int
    mre: float
    stimulus: Stimulus
    functional: FunctionalTrace
    power: PowerTrace


class StimulusSearch:
    """Seeded perturbation search driven by an accuracy oracle."""

    def __init__(
        self,
        oracle: AccuracyOracle,
        families: Sequence[str] = DEFAULT_FAMILIES,
        seed: int = 0,
    ) -> None:
        unknown = [f for f in families if f not in PERTURBATION_FAMILIES]
        if unknown:
            raise ValueError(
                f"unknown perturbation families {unknown}; choose from "
                f"{sorted(PERTURBATION_FAMILIES)}"
            )
        self.oracle = oracle
        self.families = tuple(families)
        self.seed = seed

    def find(
        self,
        report: OracleReport,
        trace: FunctionalTrace,
        threshold: float,
        iteration: int = 0,
        worst_windows: int = 4,
        limit: int = 12,
    ) -> List[Counterexample]:
        """One search round: perturb the worst windows, keep the hits.

        ``threshold`` is the current held-out MRE — a candidate counts
        as a counterexample only when the model does *worse* on it than
        on the evaluation trace overall.  Results are sorted hardest
        first (window position and family as deterministic tie-breaks)
        and capped at ``limit``.
        """
        widths = {v.name: v.width for v in trace.inputs}
        found: List[Counterexample] = []
        for rank, window in enumerate(report.worst(worst_windows)):
            rows = self.oracle.input_rows(trace, window.start, window.stop)
            if not rows:
                continue
            defaults = dict(rows[0])
            for family_index, family in enumerate(self.families):
                stimulus = PERTURBATION_FAMILIES[family](
                    rows,
                    defaults,
                    widths,
                    seed=derive_seed(
                        self.seed, iteration, rank, family_index
                    ),
                )
                if not stimulus:
                    continue
                candidate_report, reference = self.oracle.score_stimulus(
                    stimulus,
                    name=f"cx.i{iteration}.w{window.start}.{family}",
                )
                if candidate_report.overall_mre > threshold:
                    found.append(
                        Counterexample(
                            family=family,
                            window_start=window.start,
                            window_stop=window.stop,
                            mre=candidate_report.overall_mre,
                            stimulus=stimulus,
                            functional=reference.trace,
                            power=reference.power,
                        )
                    )
        found.sort(key=lambda cx: (-cx.mre, cx.window_start, cx.family))
        return found[:limit]
