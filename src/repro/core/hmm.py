"""Hidden Markov Model over a PSM set (paper Sec. V).

The HMM is the 5-tuple ``<Q, E, A, B, pi>``:

* ``Q`` — the states of all the generated PSMs;
* ``E`` — their characterising assertions (for a joined state, each member
  of its choice assertion);
* ``A[i][j]`` — proportional to the number of transitions exiting state
  ``i`` toward state ``j``;
* ``B[j][k]`` — proportional to the number of times assertion ``k`` was
  included (by ``join`` operations) in the assertion set of state ``j``;
* ``pi[i]`` — proportional to the number of functional traces that
  originated a PSM with ``i`` as initial state (measured here as the
  number of training intervals of ``i`` starting at instant 0).

During simulation the *filtering* approach predicts the most probable
next state on non-deterministic choices and after desynchronisation; a
wrong prediction zeroes the corresponding entry of ``A`` so the reverted
simulation follows a different path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .psm import PSM, PowerState, state_universe
from .temporal import TemporalAssertion, base_assertions


@dataclass(frozen=True)
class WspEvent:
    """One wrong-state-prediction episode of a PSM simulation.

    Every contiguous run of unreliable instants in an
    :class:`~repro.core.simulation.EstimationResult` is one event: it
    begins where the filtering predicted a state the trace then
    contradicted (or observed a proposition unknown to the model) and
    ends at the instant *before* resynchronisation — on a trace that
    never resynchronises the final event runs to the last instant.
    ``start``/``stop`` are inclusive, matching the paper's interval
    convention.
    """

    start: int
    stop: int

    @property
    def instants(self) -> int:
        """Number of instants covered by the episode."""
        return self.stop - self.start + 1

    def overlaps(self, start: int, stop: int) -> bool:
        """True when the episode intersects the inclusive interval."""
        return self.start <= stop and start <= self.stop


def extract_wsp_events(result) -> List[WspEvent]:
    """The wrong-state-prediction episodes of one estimation result.

    ``result`` is an :class:`~repro.core.simulation.EstimationResult`;
    its ``reliable`` mask marks the synchronised instants, so the
    maximal runs of ``False`` are exactly the desynchronisation
    episodes.  Events are returned in trace order, non-overlapping,
    and together cover every unreliable instant — the counterexample
    oracle uses them to localise *where* the model loses the state,
    complementing the aggregate WSP percentage.
    """
    unreliable = ~np.asarray(result.reliable, dtype=bool)
    if unreliable.size == 0 or not unreliable.any():
        return []
    padded = np.concatenate(([False], unreliable, [False]))
    edges = np.diff(padded.astype(np.int8))
    starts = np.nonzero(edges == 1)[0]
    stops = np.nonzero(edges == -1)[0] - 1
    return [
        WspEvent(int(start), int(stop))
        for start, stop in zip(starts, stops)
    ]


def events_in_window(
    events: Sequence[WspEvent], start: int, stop: int
) -> List[WspEvent]:
    """The events overlapping one inclusive ``[start, stop]`` window."""
    return [event for event in events if event.overlaps(start, stop)]


class PsmHmm:
    """The statistical model driving non-deterministic PSM simulation."""

    def __init__(self, psms: Sequence[PSM]) -> None:
        self.psms = list(psms)
        universe: Mapping[int, PowerState] = state_universe(psms)
        self.state_ids: List[int] = list(universe)
        self._states: Dict[int, PowerState] = dict(universe)
        self._index: Dict[int, int] = {
            sid: k for k, sid in enumerate(self.state_ids)
        }
        self.observations: List[TemporalAssertion] = []
        self._obs_index: Dict[TemporalAssertion, int] = {}
        for sid in self.state_ids:
            for symbol in base_assertions(self._states[sid].assertion):
                if symbol not in self._obs_index:
                    self._obs_index[symbol] = len(self.observations)
                    self.observations.append(symbol)
        m = len(self.state_ids)
        k = len(self.observations)
        self.A = np.zeros((m, m), dtype=np.float64)
        self.B = np.zeros((m, k), dtype=np.float64)
        self.pi = np.zeros(m, dtype=np.float64)
        self._build_transition_matrix()
        self._build_observation_matrix()
        self._build_initial_vector()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_transition_matrix(self) -> None:
        for psm in self.psms:
            for transition in psm.transitions:
                i = self._index[transition.src]
                j = self._index[transition.dst]
                self.A[i, j] += 1.0
        self._normalise_rows(self.A)

    def _build_observation_matrix(self) -> None:
        for sid in self.state_ids:
            i = self._index[sid]
            for symbol in base_assertions(self._states[sid].assertion):
                self.B[i, self._obs_index[symbol]] += 1.0
        self._normalise_rows(self.B)

    def _build_initial_vector(self) -> None:
        for sid in self.state_ids:
            count = sum(
                1 for iv in self._states[sid].intervals if iv.start == 0
            )
            self.pi[self._index[sid]] = float(count)
        total = self.pi.sum()
        if total > 0:
            self.pi /= total
        else:  # no interval bookkeeping: fall back to marked initials
            for psm in self.psms:
                for state in psm.initial_states:
                    self.pi[self._index[state.sid]] += 1.0
            total = self.pi.sum()
            if total > 0:
                self.pi /= total

    @staticmethod
    def _normalise_rows(matrix: np.ndarray) -> None:
        sums = matrix.sum(axis=1, keepdims=True)
        np.divide(matrix, sums, out=matrix, where=sums > 0)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def state(self, sid: int) -> PowerState:
        """Look a state up by id."""
        return self._states[sid]

    def index_of(self, sid: int) -> int:
        """Matrix row index of a state id."""
        return self._index[sid]

    def observation_index(self, symbol: TemporalAssertion) -> Optional[int]:
        """Column index of an observation symbol (None if unknown)."""
        return self._obs_index.get(symbol)

    # ------------------------------------------------------------------
    # filtering
    # ------------------------------------------------------------------
    def initial_belief(self) -> np.ndarray:
        """The prior distribution ``pi`` (uniform fallback when empty)."""
        if self.pi.sum() > 0:
            return self.pi.copy()
        m = len(self.state_ids)
        return np.full(m, 1.0 / m) if m else np.zeros(0)

    def filter_step(
        self, belief: np.ndarray, symbol: Optional[TemporalAssertion]
    ) -> np.ndarray:
        """One filtering update: propagate through ``A``, weight by ``B``.

        ``symbol`` is the assertion just observed; when it is unknown to
        the model the observation weighting is skipped (pure prediction).
        """
        predicted = belief @ self.A
        if symbol is not None:
            column = self._obs_index.get(symbol)
            if column is not None:
                predicted = predicted * self.B[:, column]
        total = predicted.sum()
        if total > 0:
            return predicted / total
        return self.initial_belief()

    def belief_for_state(self, sid: int) -> np.ndarray:
        """One-hot belief on a known current state."""
        belief = np.zeros(len(self.state_ids))
        belief[self._index[sid]] = 1.0
        return belief

    def score_candidates(
        self,
        belief: np.ndarray,
        candidates: Sequence[int],
        symbol: Optional[TemporalAssertion] = None,
    ) -> List[Tuple[int, float]]:
        """Filtered probability of each candidate next state.

        Candidates are scored by ``(belief @ A)[j]``, weighted by the
        observation likelihood ``B[j, symbol]`` when the entering
        assertion is already known; ties keep candidate order.
        """
        predicted = belief @ self.A
        scores: List[Tuple[int, float]] = []
        for sid in candidates:
            j = self._index[sid]
            score = float(predicted[j])
            if symbol is not None:
                column = self._obs_index.get(symbol)
                if column is not None:
                    score *= float(self.B[j, column])
            scores.append((sid, score))
        return scores

    def best_candidate(
        self,
        belief: np.ndarray,
        candidates: Sequence[int],
        symbol: Optional[TemporalAssertion] = None,
    ) -> Optional[int]:
        """Most probable candidate (None when the list is empty).

        When every candidate has zero filtered probability the first
        candidate is returned: the chain must move somewhere and the
        banned-path bookkeeping already removed known-bad choices.
        """
        scored = self.score_candidates(belief, candidates, symbol)
        if not scored:
            return None
        best_sid, best_score = scored[0]
        for sid, score in scored[1:]:
            if score > best_score:
                best_sid, best_score = sid, score
        return best_sid

    # ------------------------------------------------------------------
    # wrong-state feedback
    # ------------------------------------------------------------------
    def ban_transition(self, src_sid: int, dst_sid: int) -> None:
        """Zero the probability of reaching ``dst`` from ``src``.

        Called when the simulation discovers that a predicted state was
        wrong; the row is re-normalised so the remaining alternatives
        share the probability mass.
        """
        i = self._index[src_sid]
        j = self._index[dst_sid]
        self.A[i, j] = 0.0
        total = self.A[i].sum()
        if total > 0:
            self.A[i] /= total

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"PsmHmm(states={len(self.state_ids)}, "
            f"observations={len(self.observations)})"
        )
