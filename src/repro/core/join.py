"""The ``join`` procedure (paper Sec. IV, Fig. 6b).

``join`` collapses mergeable states that are *not* required to be
adjacent and that may belong to *different* PSMs of the set.  The merged
state's assertion is the concurrent form ``{p_i || p_j || ...}``; its
``start``/``stop`` become the collection of the merged states' intervals;
its power attributes pool the samples of every merged state.  The merged
state inherits the predecessors and the successors of all merged states
(a pair of adjacent merged states yields a self-loop), which can make the
result non-deterministic — the HMM of Section V handles the choice at
simulation time.

Implementation: states are clustered greedily into groups of pairwise
power-mergeable states (each state joins the first group whose pooled
attributes it is mergeable with), then groups are re-merged to fixpoint —
the iterate-until-no-merge behaviour of the paper at O(S x G) cost
instead of O(S^3), which matters for the long-TS traces.  Connected
groups form the output PSMs: when a group spans several input PSMs those
PSMs fuse into one, reducing the set's cardinality.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..traces.power import PowerTrace
from .attributes import PowerAttributes
from .mergeability import MergePolicy
from .psm import PSM, PowerState, Transition
from .temporal import ChoiceAssertion, base_assertions


def merge_states(
    states: Sequence[PowerState],
    power_traces: Mapping[int, PowerTrace],
) -> PowerState:
    """Build the replacement for a set of join-mergeable states.

    Assertions are flattened into one choice; repeated member assertions
    are kept with their multiplicity, which later feeds the HMM's
    observation matrix ``B``.
    """
    if len(states) < 2:
        raise ValueError("join merges at least two states")
    parts = []
    for state in states:
        parts.extend(base_assertions(state.assertion))
    assertion = ChoiceAssertion(parts)
    intervals = [iv for state in states for iv in state.intervals]
    attributes = PowerAttributes.pooled([s.attributes for s in states])
    return PowerState(
        assertion=assertion, attributes=attributes, intervals=intervals
    )


class _Group:
    """A cluster of power-mergeable states.

    Membership is decided against the group's *leader* (its first, most
    sampled member) rather than against pooled statistics: pooling
    heterogeneous members inflates the group's variance, which would make
    the t-tests progressively blind and let one group absorb everything.
    ``leader_index`` is the leader's position in the clustering input,
    used by the matrix engine to look decisions up instead of recomputing
    the tests.
    """

    __slots__ = ("members", "leader", "leader_index", "data_dependent")

    def __init__(self, state: PowerState, leader_index: int = -1) -> None:
        self.members: List[PowerState] = [state]
        self.leader: PowerAttributes = state.attributes
        self.leader_index = leader_index
        # Cached: the greedy pass probes this on every candidate group,
        # so rescanning the member list each time is O(S^2) on long
        # tiled traces.
        self.data_dependent: bool = state.is_data_dependent

    def absorb_state(self, state: PowerState) -> None:
        self.members.append(state)
        if state.is_data_dependent:
            self.data_dependent = True

    def absorb_group(self, other: "_Group") -> None:
        self.members.extend(other.members)
        if other.data_dependent:
            self.data_dependent = True


#: Below this many states the pairwise-matrix setup costs more than the
#: handful of scalar tests it replaces.
_MATRIX_MIN_STATES = 16


def _cluster(
    states: Sequence[PowerState],
    policy: MergePolicy,
    engine: str = "auto",
) -> List[_Group]:
    """Leader-based clustering followed by group merging to fixpoint.

    States are visited by decreasing sample count so group leaders carry
    the most reliable statistics.  ``engine="matrix"`` evaluates every
    pairwise mergeability decision up front as a compact decision table
    over the deduplicated attribute triplets
    (:meth:`~repro.core.mergeability.MergePolicy.mergeability_lookup`)
    and turns the greedy/fixpoint loops into table lookups — valid
    because leaders are always founding states' attributes, never
    pooled, so the precomputed table covers every comparison the scalar
    engine makes.  ``engine="scalar"`` is the retained oracle;
    ``"auto"`` picks the matrix for ``len(states) >= 16``.
    """
    if engine == "auto":
        engine = (
            "matrix" if len(states) >= _MATRIX_MIN_STATES else "scalar"
        )
    if engine not in ("matrix", "scalar"):
        raise ValueError(
            f"unknown engine {engine!r}; use 'matrix', 'scalar' or 'auto'"
        )
    table = row_of = None
    if engine == "matrix":
        small, inverse = policy.mergeability_lookup(
            [s.attributes for s in states]
        )
        # Plain nested lists: the greedy loop probes single entries, and
        # Python-level list indexing beats numpy scalar indexing there.
        table = small.tolist()
        row_of = inverse.tolist()

    def decide(leader_of: _Group, index: int, attrs: PowerAttributes) -> bool:
        if table is not None:
            return table[row_of[leader_of.leader_index]][row_of[index]]
        return policy.mergeable_attributes(leader_of.leader, attrs)

    order = sorted(range(len(states)), key=lambda k: -states[k].n)
    groups: List[_Group] = []
    for index in order:
        state = states[index]
        placed = False
        if not state.is_data_dependent:
            for group in groups:
                if group.data_dependent:
                    continue
                if decide(group, index, state.attributes):
                    group.absorb_state(state)
                    placed = True
                    break
        if not placed:
            groups.append(_Group(state, leader_index=index))
    # Re-merge whole groups (leader vs leader) until fixpoint.
    changed = True
    while changed:
        changed = False
        for i in range(len(groups)):
            if groups[i] is None or groups[i].data_dependent:
                continue
            for j in range(i + 1, len(groups)):
                if groups[j] is None or groups[j].data_dependent:
                    continue
                if decide(
                    groups[i], groups[j].leader_index, groups[j].leader
                ):
                    groups[i].absorb_group(groups[j])
                    groups[j] = None
                    changed = True
        groups = [g for g in groups if g is not None]
    return groups


def join(
    psms: Sequence[PSM],
    power_traces: Mapping[int, PowerTrace],
    policy: Optional[MergePolicy] = None,
    engine: str = "auto",
) -> List[PSM]:
    """Merge mergeable state sets across a PSM set.

    Returns the reduced set ``P'``.  The input PSMs are not modified.
    ``engine`` selects the clustering backend (see :func:`_cluster`).
    """
    policy = policy or MergePolicy()
    all_states: List[PowerState] = []
    initial_ids: Set[int] = set()
    for psm in psms:
        all_states.extend(psm.states)
        initial_ids.update(s.sid for s in psm.initial_states)

    groups = _cluster(all_states, policy, engine=engine)

    # Build the replacement state of each group and the old->new id map.
    replacement: Dict[int, PowerState] = {}
    group_state: List[PowerState] = []
    for group in groups:
        if len(group.members) == 1:
            new_state = group.members[0]
        else:
            new_state = merge_states(group.members, power_traces)
        group_state.append(new_state)
        for member in group.members:
            replacement[member.sid] = new_state

    # Union-find over groups to identify the fused output machines.
    parent = list(range(len(groups)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[rb] = ra

    group_index = {
        state.sid: k
        for k, group in enumerate(groups)
        for state in group.members
    }
    edges: List[Tuple[int, int, object]] = []
    for psm in psms:
        sids = [s.sid for s in psm.states]
        for a, b in zip(sids, sids[1:]):
            union(group_index[a], group_index[b])
        for transition in psm.transitions:
            union(group_index[transition.src], group_index[transition.dst])
            edges.append(
                (
                    replacement[transition.src].sid,
                    replacement[transition.dst].sid,
                    transition.enabling,
                )
            )

    # One output PSM per connected component.
    components: Dict[int, List[int]] = {}
    for k in range(len(groups)):
        components.setdefault(find(k), []).append(k)
    output: List[PSM] = []
    state_to_psm: Dict[int, PSM] = {}
    for index, members in enumerate(sorted(components.values())):
        psm = PSM(name=f"joined_{index}")
        for k in members:
            state = group_state[k]
            is_initial = any(
                m.sid in initial_ids for m in groups[k].members
            )
            psm.add_state(state, initial=is_initial)
            state_to_psm[state.sid] = psm
        output.append(psm)
    seen_edges: Set[Tuple[int, int, object]] = set()
    for src, dst, enabling in edges:
        key = (src, dst, enabling)
        if key in seen_edges:
            continue
        seen_edges.add(key)
        state_to_psm[src].add_transition(Transition(src, dst, enabling))
    for psm in output:
        psm.validate()
    return output
