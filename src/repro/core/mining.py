"""Dynamic mining of propositions from functional traces (paper Sec. III-A).

Implements the two-phase miner the paper adopts from its reference [9]
(Danese et al., DATE 2015):

1. **Atomic-proposition extraction** — candidate atomic propositions over
   the PIs and POs are generated (boolean value tests, variable/constant
   equalities, comparisons between same-width variables) and filtered to
   those that *hold frequently* on the trace, i.e. whose truth signal is
   stable over sub-traces rather than chattering with the data.  The
   output is the truth matrix ``m`` where ``m[i, j]`` is the truth of the
   ``j``-th atomic proposition at instant ``i``.

2. **Composition** — each row of ``m`` is AND-composed into one
   proposition (a minterm of the alphabet), so that at every instant one
   and only one proposition of the mined set ``Prop`` holds.  The
   proposition trace lists, per instant, the proposition that holds.

When several functional traces are mined together the alphabet and the
proposition universe are shared, which is what later allows ``join`` and
the HMM to recognise the *same* assertion across PSMs generated from
different traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..parallel import parallel_map
from ..traces.functional import FunctionalTrace
from .propositions import (
    AtomicProposition,
    Proposition,
    PropositionTrace,
    VarCompare,
    VarEqualsConst,
    run_length_encode,
)

#: Alphabetic labels used for the first mined propositions (p_a, p_b, ...).
_ALPHA = "abcdefghijklmnopqrstuvwxyz"

#: Widest atom alphabet labelled through the direct-addressed code table
#: (2^20 int32 slots = 4 MiB, built once per labeler).
_DENSE_MAX_BITS = 20


def proposition_label(index: int) -> str:
    """Label of the ``index``-th proposition: p_a..p_z, then p_aa, p_ab...

    Indices past the single-letter alphabet continue in bijective base-26
    (spreadsheet-column style), so every label is unambiguously alphabetic
    — a ``p_26`` would be indistinguishable from a hypothetical numeric
    alphabet.  Labels are stored verbatim on export, so round-trips are
    stable regardless of the scheme that generated them.
    """
    chars: List[str] = []
    n = index
    while True:
        chars.append(_ALPHA[n % 26])
        n = n // 26 - 1
        if n < 0:
            break
    return "p_" + "".join(reversed(chars))


def _row_codes(matrix: np.ndarray) -> np.ndarray:
    """One comparable scalar code per truth-matrix row.

    Alphabets up to 63 atoms pack each row into an ``int64`` bit mask
    (a single vectorised matmul); wider alphabets fall back on
    ``np.packbits`` plus a structured void-dtype view, which compares
    byte-wise.  Either way ``np.unique`` over the codes replaces the
    historical per-instant ``row.tobytes()`` dictionary probing.
    """
    n, k = matrix.shape
    if k == 0:
        return np.zeros(n, dtype=np.int64)
    if k <= 63:
        weights = np.int64(1) << np.arange(k, dtype=np.int64)
        return matrix.astype(np.int64) @ weights
    packed = np.ascontiguousarray(np.packbits(matrix, axis=1))
    return packed.view(np.dtype((np.void, packed.shape[1])))[:, 0]


def _trace_truth_matrix(
    args: Tuple[Sequence[AtomicProposition], FunctionalTrace],
) -> np.ndarray:
    """Truth matrix of one trace (module-level so workers can pickle it)."""
    atoms, trace = args
    if not atoms:
        return np.zeros((len(trace), 0), dtype=bool)
    return np.column_stack([atom.evaluate_trace(trace) for atom in atoms])


@dataclass
class MinerConfig:
    """Tuning knobs of the assertion miner.

    Attributes
    ----------
    include_bool_atoms:
        Mine ``v=true`` atoms for 1-bit variables.
    include_comparisons:
        Mine ``v_i > v_j`` / ``v_i == v_j`` atoms for pairs of multi-bit
        variables of equal width.
    max_distinct_for_const:
        Mine ``v == c`` equalities for a multi-bit variable only when it
        takes at most this many distinct values over the training traces
        (keeps wide data buses from exploding the alphabet).
    max_const_width:
        Never mine ``v == c`` equalities for variables wider than this:
        a wide bus showing few distinct values in training (a cipher key,
        say) is a coverage artifact, and constants latched from it would
        make every unseen value an unknown behaviour.
    max_compare_width:
        Never mine ``v_i <op> v_j`` comparisons between variables wider
        than this; relations between wide data buses reflect the data,
        not the IP's functional mode.
    min_avg_run:
        Temporal-stability filter: an atom is kept only when the average
        run length of its truth signal is at least this value.  This is
        the operational reading of the paper's "propositions which hold
        frequently on sub-traces": control conditions are stable for many
        consecutive instants, while data-dependent comparisons chatter and
        are discarded.
    min_stable_run / max_chatter_fraction:
        Local-stability filter complementing ``min_avg_run``: an atom is
        dropped when more than ``max_chatter_fraction`` of the instants
        fall inside truth runs shorter than ``min_stable_run``.  A global
        average hides local chatter — a comparison that is stable during
        directed test phases but flips every cycle on random data has a
        decent average run length yet chatters over most of the trace.
        Single-cycle control pulses (``start``, ``clear``) survive because
        their short runs cover few instants.
    min_support:
        Minimum fraction of instants where an atom (or its negation) must
        hold; 0 disables the filter.
    """

    include_bool_atoms: bool = True
    include_comparisons: bool = True
    max_distinct_for_const: int = 16
    max_const_width: int = 16
    max_compare_width: int = 64
    min_avg_run: float = 2.0
    min_stable_run: int = 3
    max_chatter_fraction: float = 0.25
    min_support: float = 0.0
    extra_atoms: Sequence[AtomicProposition] = field(default_factory=tuple)


def candidate_atoms_from_values(
    variables: Sequence,
    config: MinerConfig,
    distinct_values: Mapping[str, Optional[Set[int]]],
) -> List[AtomicProposition]:
    """The candidate atom list for known per-variable distinct values.

    ``distinct_values`` maps each eligible multi-bit variable name to the
    distinct values it takes over the training data, or ``None`` once the
    count exceeded ``max_distinct_for_const`` (the caller may stop
    collecting at that point — only the *sorted* values of variables at
    or under the cap influence the result).  Shared by the batch miner
    and the streaming :class:`~repro.core.streaming.AtomDiscovery`
    operator so both construct the exact same alphabet in the exact same
    order: boolean atoms, then per-variable sorted equality constants,
    then same-width comparisons, then the configured extras.
    """
    atoms: List[AtomicProposition] = []
    bool_vars = [v for v in variables if v.width == 1]
    int_vars = [v for v in variables if v.width > 1]

    if config.include_bool_atoms:
        for var in bool_vars:
            atoms.append(VarEqualsConst(var.name, 1, is_bool=True))

    for var in int_vars:
        if var.width > config.max_const_width:
            continue
        values = distinct_values.get(var.name)
        if values is None or len(values) > config.max_distinct_for_const:
            continue
        for value in sorted(values):
            atoms.append(VarEqualsConst(var.name, int(value)))

    if config.include_comparisons:
        for i, left in enumerate(int_vars):
            for right in int_vars[i + 1 :]:
                if left.width != right.width:
                    continue
                if left.width > config.max_compare_width:
                    continue
                atoms.append(VarCompare(left.name, "==", right.name))
                atoms.append(VarCompare(left.name, ">", right.name))

    for atom in config.extra_atoms:
        if atom not in atoms:
            atoms.append(atom)
    return atoms


def atom_passes_filters(
    config: MinerConfig,
    holds: int,
    total: int,
    avg_run: float,
    chatter: float,
) -> bool:
    """The miner's keep/drop decision for one candidate atom.

    Centralises the support / average-run / chatter comparisons so the
    batch filter and the streaming per-window statistics apply bit-equal
    thresholds (the epsilon guards included).
    """
    if config.min_support > 0:
        frac = holds / total
        if min(frac, 1.0 - frac) + 1e-12 < config.min_support and (
            0 < holds < total
        ):
            return False
    if avg_run + 1e-9 < config.min_avg_run:
        return False
    if chatter > config.max_chatter_fraction:
        return False
    return True


class PropositionLabeler:
    """Replays the mined proposition universe on unseen functional traces.

    The simulator needs, per instant of a *new* trace, the proposition of
    the mined universe that holds (exactly one can, since propositions are
    minterms).  Instants whose atom valuation was never seen in training
    map to ``None`` — an unknown behaviour that triggers the PSM
    resynchronisation machinery.
    """

    def __init__(
        self,
        atoms: Sequence[AtomicProposition],
        universe: Dict[bytes, Proposition],
    ) -> None:
        self.atoms = list(atoms)
        self._universe = dict(universe)
        # Per-assignment labelling is the streaming monitor's hot path;
        # memoise on the values of the variables the atoms mention.
        names: List[str] = []
        for atom in self.atoms:
            for name in atom.variables():
                if name not in names:
                    names.append(name)
        self._atom_variables = tuple(names)
        # Dense code -> universe-position table (built lazily): alphabets
        # of up to _DENSE_MAX_BITS atoms fit a direct-addressed array.
        self._dense_map: Optional[np.ndarray] = None
        self._dense_lut: Optional[List[Optional[Proposition]]] = None
        self._assignment_cache: Dict[tuple, Optional[Proposition]] = {}
        self._cache_hits = 0
        self._cache_misses = 0
        self._cache_evictions = 0
        self._cache_enabled = True

    @property
    def propositions(self) -> List[Proposition]:
        """All known propositions."""
        return list(self._universe.values())

    def label_indices(
        self, trace: FunctionalTrace
    ) -> Tuple[np.ndarray, List[Optional[Proposition]]]:
        """Index-coded labelling: ``(int32 indices, look-up table)``.

        ``lut[indices[t]]`` is the proposition holding at instant ``t``
        (``None`` for valuations never seen in training).  Small alphabets
        (up to ``_DENSE_MAX_BITS`` atoms) are resolved by one gather from
        a direct-addressed code table; wider ones fall back on a single
        ``np.unique`` over packed row codes, probing the universe once per
        *distinct* valuation instead of once per instant.

        The result is memoised on the trace itself (when it exposes the
        derived-data cache protocol), so repeated estimates of the same
        trace — every per-PSM simulation of a ``flow.estimate``, or the
        compiled engine re-running a benchmark window — label it once.
        """
        cache_get = getattr(trace, "cache_get", None)
        cache_key = ("label_indices", id(self))
        if cache_get is not None:
            cached = cache_get(cache_key)
            if cached is not None:
                return cached
        matrix = _trace_truth_matrix((self.atoms, trace))
        codes = _row_codes(matrix)
        if 0 < len(self.atoms) <= _DENSE_MAX_BITS:
            dense, lut = self._dense_tables()
            result = dense.take(codes), lut
        else:
            _, first, inverse = np.unique(
                codes, return_index=True, return_inverse=True
            )
            lut = [
                self._universe.get(matrix[i].tobytes())
                for i in first.tolist()
            ]
            result = inverse.astype(np.int32), lut
        cache_set = getattr(trace, "cache_set", None)
        if cache_set is not None:
            cache_set(cache_key, result)
        return result

    def _dense_tables(
        self,
    ) -> Tuple[np.ndarray, List[Optional[Proposition]]]:
        """``(code table, look-up table)`` for the dense labelling path.

        The code table maps every possible packed atom valuation directly
        to its universe position; valuations never seen in training all
        share the trailing ``None`` slot (they are indistinguishable to
        the simulators, which only ever branch on the proposition value).
        """
        if self._dense_map is None:
            props = list(self._universe.values())
            dense = np.full(
                1 << len(self.atoms), len(props), dtype=np.int32
            )
            for position, key in enumerate(self._universe):
                code = 0
                for bit, byte in enumerate(key):
                    if byte:
                        code |= 1 << bit
                dense[code] = position
            self._dense_map = dense
            self._dense_lut = props + [None]
        return self._dense_map, self._dense_lut

    def label(self, trace: FunctionalTrace) -> List[Optional[Proposition]]:
        """Proposition (or None) holding at each instant of ``trace``."""
        indices, lut = self.label_indices(trace)
        table = np.empty(max(len(lut), 1), dtype=object)
        table[: len(lut)] = lut
        return table.take(indices).tolist()

    def label_segments(self, trace: FunctionalTrace) -> "LabeledRuns":
        """Run-length-encoded labelling of ``trace`` (simulator fast path).

        Memoised on the trace like :meth:`label_indices`; the returned
        :class:`LabeledRuns` is treated as immutable by every consumer.
        """
        cache_get = getattr(trace, "cache_get", None)
        cache_key = ("label_segments", id(self))
        if cache_get is not None:
            cached = cache_get(cache_key)
            if cached is not None:
                return cached
        indices, lut = self.label_indices(trace)
        starts, lengths, seg_indices = run_length_encode(indices)
        seg_props = [lut[i] for i in seg_indices.tolist()]
        runs = LabeledRuns(
            n=len(indices),
            starts=starts,
            lengths=lengths,
            props=seg_props,
        )
        cache_set = getattr(trace, "cache_set", None)
        if cache_set is not None:
            cache_set(cache_key, runs)
        return runs

    def stats(self) -> Dict[str, object]:
        """Effectiveness counters of the per-assignment memo cache.

        ``hits``/``misses`` survive both the bounded-size eviction (which
        is counted in ``evictions``) and the self-disabling heuristic, so
        the figures describe the whole lifetime of the labeler.
        """
        return {
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "evictions": self._cache_evictions,
            "enabled": self._cache_enabled,
        }

    def label_assignment(self, assignment) -> Optional[Proposition]:
        """Proposition holding under a single variable assignment.

        This is the streaming monitor's hot path: one call per simulated
        clock cycle, so results are memoised on the relevant variable
        values (bounded: the cache is dropped if it grows past 64k rows,
        which only happens when atoms predicate over wide data buses).
        """
        if self._cache_enabled:
            cache_key = tuple(assignment[n] for n in self._atom_variables)
            cache = self._assignment_cache
            if cache_key in cache:
                self._cache_hits += 1
                return cache[cache_key]
            self._cache_misses += 1
        key = bytes(
            1 if atom.evaluate(assignment) else 0 for atom in self.atoms
        )
        prop = self._universe.get(key)
        if self._cache_enabled:
            if len(cache) > 65536:
                # Bounded memo: drop the rows, keep the hit/miss counters
                # so stats() reflects the labeler's whole lifetime.
                cache.clear()
                self._cache_evictions += 1
            cache[cache_key] = prop
            # Data-bearing atom variables make the key unique per cycle;
            # turn the memo off when it clearly is not paying for itself.
            if (
                self._cache_misses > 4096
                and self._cache_hits < self._cache_misses
            ):
                self._cache_enabled = False
                self._assignment_cache = {}
        return prop


@dataclass
class LabeledRuns:
    """Run-length-encoded proposition labelling of a functional trace.

    ``props[s]`` holds (or is ``None``) over the whole segment
    ``[starts[s], starts[s] + lengths[s])``; segments are maximal, so no
    segment spans a proposition change — the invariant the simulators'
    O(segments) fast paths rely on.
    """

    n: int
    starts: np.ndarray
    lengths: np.ndarray
    props: List[Optional[Proposition]]

    def __iter__(self):
        """Iterate ``(start, length, prop)`` per segment."""
        return zip(self.starts.tolist(), self.lengths.tolist(), self.props)

    @property
    def unknown_instants(self) -> int:
        """Instants whose valuation was never seen in training."""
        return int(
            sum(
                length
                for length, prop in zip(self.lengths.tolist(), self.props)
                if prop is None
            )
        )

    def instant_props(self) -> List[Optional[Proposition]]:
        """Per-instant proposition list (the object-API view)."""
        table = np.empty(max(len(self.props), 1), dtype=object)
        table[: len(self.props)] = self.props
        return table.take(
            np.repeat(np.arange(len(self.props)), self.lengths)
        ).tolist()

    def run_ends(self) -> np.ndarray:
        """Per-instant exclusive end of the segment containing ``t``."""
        return np.repeat(self.starts + self.lengths, self.lengths)


@dataclass
class MiningResult:
    """Output of the miner over one or more functional traces."""

    atoms: List[AtomicProposition]
    propositions: List[Proposition]
    traces: List[PropositionTrace]
    matrices: List[np.ndarray]
    labeler: Optional[PropositionLabeler] = None

    @property
    def proposition_trace(self) -> PropositionTrace:
        """The single proposition trace (only when one trace was mined)."""
        if len(self.traces) != 1:
            raise ValueError("multiple traces were mined; use .traces")
        return self.traces[0]

    @property
    def matrix(self) -> np.ndarray:
        """The single truth matrix (only when one trace was mined)."""
        if len(self.matrices) != 1:
            raise ValueError("multiple traces were mined; use .matrices")
        return self.matrices[0]


class AssertionMiner:
    """Phase-1 + phase-2 miner producing proposition traces.

    ``jobs`` fans the per-trace truth-matrix evaluation out over worker
    processes when several traces are mined together; results are
    bit-identical to a serial run (pure numpy evaluation, order-preserving
    map).
    """

    def __init__(
        self, config: Optional[MinerConfig] = None, jobs: int = 1
    ) -> None:
        self.config = config or MinerConfig()
        self.jobs = jobs

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def mine(self, trace: FunctionalTrace) -> MiningResult:
        """Mine one functional trace."""
        return self.mine_many([trace])

    def mine_many(self, traces: Sequence[FunctionalTrace]) -> MiningResult:
        """Mine several traces over a shared alphabet and universe."""
        if not traces:
            raise ValueError("at least one functional trace is required")
        self._check_compatible(traces)
        atoms = self._candidate_atoms(traces)
        atoms, matrices = self._filter_atoms(atoms, traces)
        propositions, prop_traces, universe = self._compose(
            atoms, matrices, traces
        )
        return MiningResult(
            atoms=atoms,
            propositions=propositions,
            traces=prop_traces,
            matrices=matrices,
            labeler=PropositionLabeler(atoms, universe),
        )

    # ------------------------------------------------------------------
    # phase 1: atomic propositions
    # ------------------------------------------------------------------
    def _check_compatible(self, traces: Sequence[FunctionalTrace]) -> None:
        names = traces[0].variable_names
        for trace in traces[1:]:
            if trace.variable_names != names:
                raise ValueError(
                    "all traces must observe the same variables"
                )
        if any(len(t) == 0 for t in traces):
            raise ValueError("cannot mine an empty trace")

    def _candidate_atoms(
        self, traces: Sequence[FunctionalTrace]
    ) -> List[AtomicProposition]:
        config = self.config
        first = traces[0]
        distinct: Dict[str, Optional[Set[int]]] = {}
        for var in first.variables:
            if var.width <= 1 or var.width > config.max_const_width:
                continue
            values: Set[int] = set()
            for trace in traces:
                values.update(
                    int(v) for v in np.unique(trace.column(var.name))
                )
                if len(values) > config.max_distinct_for_const:
                    break
            distinct[var.name] = values
        return candidate_atoms_from_values(first.variables, config, distinct)

    def _filter_atoms(
        self,
        atoms: List[AtomicProposition],
        traces: Sequence[FunctionalTrace],
    ) -> Tuple[List[AtomicProposition], List[np.ndarray]]:
        """Keep temporally stable, sufficiently supported atoms.

        Returns the surviving atoms and the per-trace truth matrices
        restricted to them.
        """
        config = self.config
        raw = parallel_map(
            _trace_truth_matrix,
            [(atoms, trace) for trace in traces],
            jobs=self.jobs,
        )
        total = sum(len(trace) for trace in traces)
        keep: List[int] = []
        for j in range(len(atoms)):
            holds = sum(int(np.count_nonzero(m[:, j])) for m in raw)
            avg_run, chatter = self._run_statistics(raw, j)
            if atom_passes_filters(config, holds, total, avg_run, chatter):
                keep.append(j)
        kept_atoms = [atoms[j] for j in keep]
        matrices = [m[:, keep] if keep else m[:, :0] for m in raw]
        return kept_atoms, matrices

    def _run_statistics(
        self, matrices: Sequence[np.ndarray], column: int
    ) -> Tuple[float, float]:
        """(average run length, chatter fraction) of an atom's signal.

        The chatter fraction is the share of instants lying inside truth
        runs shorter than ``min_stable_run``.
        """
        min_stable = self.config.min_stable_run
        total_len = 0
        total_runs = 0
        chatter_instants = 0
        for matrix in matrices:
            signal = matrix[:, column]
            if len(signal) == 0:
                continue
            total_len += len(signal)
            changes = np.nonzero(signal[1:] != signal[:-1])[0]
            boundaries = np.concatenate(([0], changes + 1, [len(signal)]))
            lengths = np.diff(boundaries)
            total_runs += len(lengths)
            chatter_instants += int(lengths[lengths < min_stable].sum())
        if total_runs == 0:
            return float("inf"), 0.0
        return total_len / total_runs, chatter_instants / total_len

    # ------------------------------------------------------------------
    # phase 2: composition into minterm propositions
    # ------------------------------------------------------------------
    def _compose(
        self,
        atoms: List[AtomicProposition],
        matrices: Sequence[np.ndarray],
        traces: Sequence[FunctionalTrace],
    ) -> Tuple[List[Proposition], List[PropositionTrace], Dict[bytes, Proposition]]:
        """Vectorised AND-composition of the truth-matrix rows.

        All traces' rows are packed into scalar codes and deduplicated by
        a single ``np.unique(..., return_inverse=True)``; propositions
        are created once per distinct row, in first-appearance order
        across the traces (so labels match the historical per-instant
        accumulation bit for bit), and each trace becomes an index-coded
        :class:`~repro.core.propositions.PropositionTrace`.
        """
        stacked = np.concatenate(matrices, axis=0)
        codes = _row_codes(stacked)
        _, first, inverse = np.unique(
            codes, return_index=True, return_inverse=True
        )
        order = np.argsort(first)  # distinct rows in first-appearance order
        rank = np.empty(len(order), dtype=np.int64)
        rank[order] = np.arange(len(order))
        instant_index = rank[inverse]

        universe: Dict[bytes, Proposition] = {}
        propositions: List[Proposition] = []
        for row_index in first[order].tolist():
            row = stacked[row_index]
            positives = [a for a, v in zip(atoms, row) if v]
            negatives = [a for a, v in zip(atoms, row) if not v]
            prop = Proposition(
                proposition_label(len(propositions)), positives, negatives
            )
            universe[np.ascontiguousarray(row).tobytes()] = prop
            propositions.append(prop)

        prop_traces: List[PropositionTrace] = []
        offset = 0
        for trace_id, trace in enumerate(traces):
            stop = offset + len(trace)
            prop_traces.append(
                PropositionTrace.from_indices(
                    instant_index[offset:stop], propositions, trace_id
                )
            )
            offset = stop
        return propositions, prop_traces, universe
