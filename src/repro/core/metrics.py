"""Accuracy metrics for PSM power estimation (paper Sec. VI).

The paper's headline accuracy figure is the **Mean Relative Error (MRE)**
between the power values estimated by simulating the PSMs and the
reference values of the power simulator.  The **WSP** (wrong-state
prediction percentage) is computed by the simulator itself and exposed on
:class:`~repro.core.simulation.EstimationResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

import numpy as np

from ..traces.power import PowerTrace

ArrayLike = Union[PowerTrace, np.ndarray, list]


def _as_array(values: ArrayLike) -> np.ndarray:
    if isinstance(values, PowerTrace):
        return values.values
    return np.asarray(values, dtype=np.float64)


def _paired(estimated: ArrayLike, reference: ArrayLike):
    est = _as_array(estimated)
    ref = _as_array(reference)
    if est.shape != ref.shape:
        raise ValueError(
            f"length mismatch: estimated {est.shape} vs reference {ref.shape}"
        )
    if est.size == 0:
        raise ValueError("cannot compute a metric over zero instants")
    return est, ref


def mre(estimated: ArrayLike, reference: ArrayLike) -> float:
    """Mean relative error, as a percentage.

    ``mean_t |est_t - ref_t| / ref_t * 100``.  Instants whose reference is
    (near) zero would make the ratio blow up on measurement noise, so the
    denominator is floored at 1% of the mean reference power; with the
    idle floors of our power models this floor is almost never active.
    """
    est, ref = _paired(estimated, reference)
    floor = 0.01 * float(np.mean(ref))
    if floor <= 0.0:
        floor = np.finfo(np.float64).tiny
    denominator = np.maximum(ref, floor)
    return float(np.mean(np.abs(est - ref) / denominator) * 100.0)


def mae(estimated: ArrayLike, reference: ArrayLike) -> float:
    """Mean absolute error in the power trace's units."""
    est, ref = _paired(estimated, reference)
    return float(np.mean(np.abs(est - ref)))


def rmse(estimated: ArrayLike, reference: ArrayLike) -> float:
    """Root-mean-square error in the power trace's units."""
    est, ref = _paired(estimated, reference)
    return float(np.sqrt(np.mean((est - ref) ** 2)))


@dataclass
class WindowedMre:
    """Per-window MRE scores over a trace, with skip-with-count semantics.

    ``bounds[i]`` is the inclusive ``(start, stop)`` interval of window
    ``i``; ``scores[i]`` is its MRE percentage, or ``None`` when the
    window was skipped (zero-power reference — relative error is
    undefined there, so the window is counted in ``skipped`` instead of
    poisoning the aggregate with NaN/inf).  Empty and single-instant
    windows never raise: an empty trace simply yields no windows, and a
    trailing one-instant window is scored like any other.
    """

    bounds: List[Tuple[int, int]] = field(default_factory=list)
    scores: List[Optional[float]] = field(default_factory=list)
    skipped: int = 0

    def defined(self) -> List[Tuple[Tuple[int, int], float]]:
        """The scored ``((start, stop), mre)`` pairs, in trace order."""
        return [
            (bounds, score)
            for bounds, score in zip(self.bounds, self.scores)
            if score is not None
        ]

    @property
    def mean(self) -> Optional[float]:
        """Mean of the defined window scores (None when all skipped)."""
        defined = [s for s in self.scores if s is not None]
        if not defined:
            return None
        return float(np.mean(defined))

    @property
    def worst(self) -> Optional[Tuple[Tuple[int, int], float]]:
        """The highest-MRE window (None when every window was skipped)."""
        defined = self.defined()
        if not defined:
            return None
        return max(defined, key=lambda pair: pair[1])


def windowed_mre(
    estimated: ArrayLike, reference: ArrayLike, window: int
) -> WindowedMre:
    """Per-window MRE tiling of an estimate/reference pair.

    The counterexample oracle's scoring primitive: the trace is tiled in
    ``window``-instant intervals (final window partial) and each window
    is scored with the same floored-denominator rule as :func:`mre`,
    but with the floor computed *per window* so a locally-idle window is
    judged on its own power scale.  Windows whose reference power is
    entirely zero are skipped with a count rather than returning
    NaN or raising ``ZeroDivisionError`` — see :class:`WindowedMre`.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    est = _as_array(estimated)
    ref = _as_array(reference)
    if est.shape != ref.shape:
        raise ValueError(
            f"length mismatch: estimated {est.shape} vs reference {ref.shape}"
        )
    report = WindowedMre()
    for start in range(0, est.size, window):
        stop = min(start + window, est.size) - 1
        report.bounds.append((start, stop))
        ref_win = ref[start : stop + 1]
        floor = 0.01 * float(np.mean(ref_win))
        if floor <= 0.0:
            # All-zero (or negative-sum) reference: relative error is
            # undefined on this window — skip it, keep the count.
            report.scores.append(None)
            report.skipped += 1
            continue
        est_win = est[start : stop + 1]
        denominator = np.maximum(ref_win, floor)
        report.scores.append(
            float(np.mean(np.abs(est_win - ref_win) / denominator) * 100.0)
        )
    return report


def mean_power_error(estimated: ArrayLike, reference: ArrayLike) -> float:
    """Relative error of the *average* power, as a percentage.

    Complements the per-instant MRE: energy-oriented flows care about the
    mean consumption over a run.
    """
    est, ref = _paired(estimated, reference)
    mean_ref = float(np.mean(ref))
    if mean_ref == 0.0:
        return 0.0 if float(np.mean(est)) == 0.0 else float("inf")
    return float(abs(np.mean(est) - mean_ref) / mean_ref * 100.0)
