"""Accuracy metrics for PSM power estimation (paper Sec. VI).

The paper's headline accuracy figure is the **Mean Relative Error (MRE)**
between the power values estimated by simulating the PSMs and the
reference values of the power simulator.  The **WSP** (wrong-state
prediction percentage) is computed by the simulator itself and exposed on
:class:`~repro.core.simulation.EstimationResult`.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from ..traces.power import PowerTrace

ArrayLike = Union[PowerTrace, np.ndarray, list]


def _as_array(values: ArrayLike) -> np.ndarray:
    if isinstance(values, PowerTrace):
        return values.values
    return np.asarray(values, dtype=np.float64)


def _paired(estimated: ArrayLike, reference: ArrayLike):
    est = _as_array(estimated)
    ref = _as_array(reference)
    if est.shape != ref.shape:
        raise ValueError(
            f"length mismatch: estimated {est.shape} vs reference {ref.shape}"
        )
    if est.size == 0:
        raise ValueError("cannot compute a metric over zero instants")
    return est, ref


def mre(estimated: ArrayLike, reference: ArrayLike) -> float:
    """Mean relative error, as a percentage.

    ``mean_t |est_t - ref_t| / ref_t * 100``.  Instants whose reference is
    (near) zero would make the ratio blow up on measurement noise, so the
    denominator is floored at 1% of the mean reference power; with the
    idle floors of our power models this floor is almost never active.
    """
    est, ref = _paired(estimated, reference)
    floor = 0.01 * float(np.mean(ref))
    if floor <= 0.0:
        floor = np.finfo(np.float64).tiny
    denominator = np.maximum(ref, floor)
    return float(np.mean(np.abs(est - ref) / denominator) * 100.0)


def mae(estimated: ArrayLike, reference: ArrayLike) -> float:
    """Mean absolute error in the power trace's units."""
    est, ref = _paired(estimated, reference)
    return float(np.mean(np.abs(est - ref)))


def rmse(estimated: ArrayLike, reference: ArrayLike) -> float:
    """Root-mean-square error in the power trace's units."""
    est, ref = _paired(estimated, reference)
    return float(np.sqrt(np.mean((est - ref) ** 2)))


def mean_power_error(estimated: ArrayLike, reference: ArrayLike) -> float:
    """Relative error of the *average* power, as a percentage.

    Complements the per-instant MRE: energy-oriented flows care about the
    mean consumption over a run.
    """
    est, ref = _paired(estimated, reference)
    mean_ref = float(np.mean(ref))
    if mean_ref == 0.0:
        return 0.0 if float(np.mean(est)) == 0.0 else float("inf")
    return float(abs(np.mean(est) - mean_ref) / mean_ref * 100.0)
