"""Quantifying the mergeability of power states (paper Sec. IV-A).

Two power states are *mergeable* when their power attributes are
statistically indistinguishable.  Three cases apply, keyed on the sample
counts ``n`` of the two states:

* **Case 1** — both states come from *next* patterns (``n_i = n_j = 1``):
  mergeable when ``|mu_i - mu_j| < eps`` for a designer-fixed tolerance.
* **Case 2** — both states come from *until* patterns (``n_i, n_j > 1``):
  Welch's t-test on the two samples; mergeable when the difference of the
  means is not significant at level ``alpha``.
* **Case 3** — an *until* state against a *next* state (``n_i > 1``,
  ``n_j = 1``): a single-observation t-test (prediction-interval form)
  checking whether the lone sample is compatible with the larger sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import special

from .attributes import PowerAttributes
from .psm import PowerState


def _sample_variance(attrs: PowerAttributes) -> float:
    """Unbiased sample variance from the stored population sigma."""
    if attrs.n < 2:
        raise ValueError("sample variance needs n >= 2")
    return attrs.variance * attrs.n / (attrs.n - 1)


def _student_t_two_tailed(t: float, df: float) -> float:
    """Two-tailed p-value of Student's t via the incomplete beta function.

    ``P(|T| >= t) = I_{df/(df+t^2)}(df/2, 1/2)`` — much cheaper than
    instantiating a scipy distribution, which matters because the merge
    procedures run the test thousands of times on long training traces.
    """
    if df <= 0:
        return 1.0
    x = df / (df + t * t)
    return float(special.betainc(df / 2.0, 0.5, x))


def variance_f_test(a: PowerAttributes, b: PowerAttributes) -> float:
    """Two-tailed p-value of the F-test for equal variances.

    Used as an additional merge gate: Welch's test compares means only,
    so a state with a huge standard deviation (a bimodal, data-dependent
    behaviour) would otherwise "absorb" states with very different power
    simply because the test loses power.  Requiring compatible variances
    operationalises the paper's condition that mergeable states have
    *low* (i.e. mutually consistent) standard deviations.
    """
    if a.n < 2 or b.n < 2:
        raise ValueError("the F-test needs n >= 2 on both sides")
    var_a = _sample_variance(a)
    var_b = _sample_variance(b)
    if var_a <= 0.0 and var_b <= 0.0:
        return 1.0
    if var_a <= 0.0 or var_b <= 0.0:
        return 0.0
    # Order so f >= 1; survival of F(d1, d2) via the incomplete beta.
    if var_a >= var_b:
        f, d1, d2 = var_a / var_b, a.n - 1, b.n - 1
    else:
        f, d1, d2 = var_b / var_a, b.n - 1, a.n - 1
    sf = float(special.betainc(d2 / 2.0, d1 / 2.0, d2 / (d2 + d1 * f)))
    return min(1.0, 2.0 * sf)


def welch_t_test(a: PowerAttributes, b: PowerAttributes) -> float:
    """Two-tailed p-value of Welch's t-test on two power-attribute sets.

    Returns 1.0 when the samples cannot be told apart at all (equal means
    with zero variance) and 0.0 for zero-variance samples with different
    means.
    """
    if a.n < 2 or b.n < 2:
        raise ValueError("Welch's test needs n >= 2 on both sides")
    var_a = _sample_variance(a)
    var_b = _sample_variance(b)
    se2 = var_a / a.n + var_b / b.n
    if se2 <= 0.0:
        return 1.0 if math.isclose(a.mu, b.mu, rel_tol=1e-12) else 0.0
    t = (a.mu - b.mu) / math.sqrt(se2)
    df_num = se2 ** 2
    df_den = (var_a / a.n) ** 2 / (a.n - 1) + (var_b / b.n) ** 2 / (b.n - 1)
    df = df_num / df_den if df_den > 0 else float(a.n + b.n - 2)
    return _student_t_two_tailed(abs(t), df)


def single_observation_t_test(value: float, sample: PowerAttributes) -> float:
    """Two-tailed p-value for one observation against a sample.

    Uses the prediction-interval statistic
    ``t = (x - mu) / (s * sqrt(1 + 1/n))`` with ``n - 1`` degrees of
    freedom — the Case 3 formulation for merging a next-based state into
    an until-based state.
    """
    if sample.n < 2:
        raise ValueError("the reference sample needs n >= 2")
    s = math.sqrt(_sample_variance(sample))
    if s <= 0.0:
        return 1.0 if math.isclose(value, sample.mu, rel_tol=1e-12) else 0.0
    t = (value - sample.mu) / (s * math.sqrt(1.0 + 1.0 / sample.n))
    return _student_t_two_tailed(abs(t), sample.n - 1)


@dataclass(frozen=True)
class MergePolicy:
    """Designer-fixed knobs of the merge decision.

    Attributes
    ----------
    epsilon:
        Absolute tolerance for Case 1 (``|mu_i - mu_j| < eps``).
    epsilon_rel:
        Relative tolerance for Case 1, as a fraction of the larger mean;
        the effective Case-1 threshold is the larger of the two.
    alpha:
        Significance level for the Case 2 / Case 3 t-tests; states merge
        when the test does *not* reject equality (p > alpha).
    max_cv:
        "Low sigma" requirement: an until-based state takes part in a
        merge only when its coefficient of variation ``sigma / mu`` is at
        most this value.  Protects high-variance (data-dependent) states
        from being merged merely because the t-test lacks power; set to
        ``None`` to disable.
    variance_alpha:
        Significance level of the equal-variance F-test applied before a
        Case 2 mean comparison; states whose variances are incompatible
        at this level never merge (the quantitative form of the paper's
        "low standard deviations" merge condition).  ``None`` disables
        the gate.
    """

    epsilon: float = 0.0
    epsilon_rel: float = 0.05
    alpha: float = 0.05
    max_cv: Optional[float] = 0.35
    variance_alpha: Optional[float] = 0.01

    def __post_init__(self) -> None:
        if self.epsilon < 0 or self.epsilon_rel < 0:
            raise ValueError("tolerances must be non-negative")
        if not 0 < self.alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        if self.max_cv is not None and self.max_cv <= 0:
            raise ValueError("max_cv must be positive when set")
        if self.variance_alpha is not None and not 0 < self.variance_alpha < 1:
            raise ValueError("variance_alpha must be in (0, 1) when set")

    # ------------------------------------------------------------------
    def case1_threshold(self, a: PowerAttributes, b: PowerAttributes) -> float:
        """Effective absolute tolerance for a Case-1 comparison."""
        return max(self.epsilon, self.epsilon_rel * max(abs(a.mu), abs(b.mu)))

    def _low_sigma(self, attrs: PowerAttributes) -> bool:
        if self.max_cv is None or attrs.n == 1:
            return True
        if attrs.mu == 0.0:
            return attrs.sigma == 0.0
        return attrs.sigma / abs(attrs.mu) <= self.max_cv

    def mergeable_attributes(
        self, a: PowerAttributes, b: PowerAttributes
    ) -> bool:
        """Apply the correct case to two power-attribute triplets."""
        if not (self._low_sigma(a) and self._low_sigma(b)):
            return False
        if a.n == 1 and b.n == 1:
            return abs(a.mu - b.mu) < self.case1_threshold(a, b)
        if a.n > 1 and b.n > 1:
            if (
                self.variance_alpha is not None
                and variance_f_test(a, b) <= self.variance_alpha
            ):
                return False
            return welch_t_test(a, b) > self.alpha
        if a.n > 1:
            return single_observation_t_test(b.mu, a) > self.alpha
        return single_observation_t_test(a.mu, b) > self.alpha

    def mergeable(self, s1: PowerState, s2: PowerState) -> bool:
        """Mergeability of two power states.

        Data-dependent states (regression output functions) are never
        merged: their power is a function, not a constant, so the
        constant-based tests do not apply.
        """
        if s1.is_data_dependent or s2.is_data_dependent:
            return False
        return self.mergeable_attributes(s1.attributes, s2.attributes)

    # ------------------------------------------------------------------
    def mergeability_lookup(
        self, attrs: Sequence[PowerAttributes]
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Compact pairwise-decision table for a state set.

        Returns ``(small, inverse)`` where ``small`` is the symmetric
        boolean decision matrix over the *deduplicated* ``(mu, sigma, n)``
        triplets and ``inverse[k]`` maps state ``k`` to its row, so that
        ``small[inverse[i], inverse[j]] ==
        self.mergeable_attributes(attrs[i], attrs[j])``.  On long tiled
        traces thousands of states collapse onto a few distinct triplets,
        shrinking the t-test matrices quadratically — and callers that
        only probe a subset of pairs (the clustering loop) never pay for
        the expanded ``len(attrs)^2`` matrix.
        """
        count = len(attrs)
        if count == 0:
            return (
                np.zeros((0, 0), dtype=bool),
                np.zeros(0, dtype=np.intp),
            )
        # First-seen dedup via a dict: cheaper than np.unique(axis=0)
        # (no row sort) at every scale this is called at.
        index_of: dict = {}
        inverse = np.zeros(count, dtype=np.intp)
        rows = []
        for k, a in enumerate(attrs):
            key = (a.mu, a.sigma, a.n)
            row = index_of.get(key)
            if row is None:
                row = index_of[key] = len(rows)
                rows.append(key)
            inverse[k] = row
        unique = np.array(rows, dtype=np.float64)
        return self._unique_mergeability_matrix(unique), inverse

    def mergeability_matrix(
        self, attrs: Sequence[PowerAttributes]
    ) -> np.ndarray:
        """All pairwise :meth:`mergeable_attributes` decisions at once.

        Returns a symmetric boolean matrix ``M`` with
        ``M[i, j] == self.mergeable_attributes(attrs[i], attrs[j])`` for
        every pair, including the diagonal.  The Case 1/2/3 statistics are
        evaluated as numpy vectors with the *same operation order* as the
        scalar functions above (including ``x ** 2`` via
        ``np.float_power``, which matches Python's ``**`` bit for bit
        where ``np.square`` does not), so each entry is decided on
        bit-identical intermediate values — the batched join engine is
        provably equivalent to the scalar one.
        """
        small, inverse = self.mergeability_lookup(attrs)
        if len(inverse) == 0:
            return small
        return small[np.ix_(inverse, inverse)]

    #: Unique-triplet count below which filling the table with scalar
    #: tests beats the fixed overhead of the vectorized lane kernel.
    _SCALAR_MAX_UNIQUE = 6

    def _unique_mergeability_matrix(self, unique: np.ndarray) -> np.ndarray:
        """Pairwise decisions over deduplicated ``(mu, sigma, n)`` rows.

        Every test is symmetric in its two operands (Welch's ``t`` only
        flips sign, the F statistic is max/min-ordered, Case 1/3 compare
        absolute gaps), so only the upper triangle is evaluated and each
        case's statistics run on the compressed index set of lanes that
        actually take that case — the expensive ``betainc`` evaluations
        drop from three full grids to exactly the lanes that need them.
        """
        count = len(unique)
        if count <= self._SCALAR_MAX_UNIQUE:
            out = np.zeros((count, count), dtype=bool)
            rows = [
                PowerAttributes(mu=row[0], sigma=row[1], n=int(row[2]))
                for row in unique
            ]
            for i in range(count):
                for j in range(i, count):
                    out[i, j] = out[j, i] = self.mergeable_attributes(
                        rows[i], rows[j]
                    )
            return out

        mu = unique[:, 0]
        sigma = unique[:, 1]
        nf = unique[:, 2]
        single = nf == 1.0

        # "Low sigma" requirement, elementwise per unique row.
        if self.max_cv is None:
            low = np.ones(count, dtype=bool)
        else:
            with np.errstate(divide="ignore", invalid="ignore"):
                ratio = sigma / np.abs(mu)
            low = np.where(
                single,
                True,
                np.where(mu == 0.0, sigma == 0.0, ratio <= self.max_cv),
            )

        # Unbiased sample variance, same op order as _sample_variance
        # (population variance via ** 2, times n, divided by n - 1).
        with np.errstate(divide="ignore", invalid="ignore"):
            var = np.float_power(sigma, 2.0) * nf / (nf - 1.0)

        # Upper-triangle lanes (diagonal included).
        iu, ju = np.triu_indices(count)
        mu_a, mu_b = mu[iu], mu[ju]
        n_a, n_b = nf[iu], nf[ju]
        var_a, var_b = var[iu], var[ju]
        single_a, single_b = single[iu], single[ju]
        diff = mu_a - mu_b
        merged = np.zeros(len(iu), dtype=bool)

        # Case 1: eps gap between two next-based (n == 1) states.
        c1 = np.nonzero(single_a & single_b)[0]
        if len(c1):
            abs_a, abs_b = np.abs(mu_a[c1]), np.abs(mu_b[c1])
            threshold = np.maximum(
                self.epsilon, self.epsilon_rel * np.maximum(abs_a, abs_b)
            )
            merged[c1] = np.abs(diff[c1]) < threshold

        # Case 2: both until-based — F-test gate, then Welch's t-test.
        bu = np.nonzero(~single_a & ~single_b)[0]
        if len(bu):
            va, vb = var_a[bu], var_b[bu]
            na, nb = n_a[bu], n_b[bu]
            d_bu = diff[bu]
            close_bu = np.abs(d_bu) <= 1e-12 * np.maximum(
                np.abs(mu_a[bu]), np.abs(mu_b[bu])
            )

            if self.variance_alpha is not None:
                # Same op order as variance_f_test; betainc only on the
                # lanes where both variances are positive.
                p_f = np.where((va <= 0.0) & (vb <= 0.0), 1.0, 0.0)
                gf = np.nonzero((va > 0.0) & (vb > 0.0))[0]
                if len(gf):
                    vaf, vbf = va[gf], vb[gf]
                    a_larger = vaf >= vbf
                    f = np.where(a_larger, vaf / vbf, vbf / vaf)
                    d1 = np.where(a_larger, na[gf], nb[gf]) - 1.0
                    d2 = np.where(a_larger, nb[gf], na[gf]) - 1.0
                    sf = special.betainc(
                        d2 / 2.0, d1 / 2.0, d2 / (d2 + d1 * f)
                    )
                    p_f[gf] = np.minimum(1.0, 2.0 * sf)
                variance_ok = p_f > self.variance_alpha
            else:
                variance_ok = np.ones(len(bu), dtype=bool)

            # Welch's t-test, same op order as welch_t_test; betainc only
            # where the standard error is positive (else the zero-variance
            # fallback compares the means directly).
            se2 = va / na + vb / nb
            p_welch = np.where(close_bu, 1.0, 0.0)
            gw = np.nonzero(se2 > 0.0)[0]
            if len(gw):
                se2g = se2[gw]
                vag, vbg = va[gw], vb[gw]
                nag, nbg = na[gw], nb[gw]
                t = d_bu[gw] / np.sqrt(se2g)
                df_num = np.float_power(se2g, 2.0)
                with np.errstate(divide="ignore", invalid="ignore"):
                    df_den = np.float_power(vag / nag, 2.0) / (
                        nag - 1.0
                    ) + np.float_power(vbg / nbg, 2.0) / (nbg - 1.0)
                den_ok = df_den > 0.0
                df = np.where(
                    den_ok,
                    df_num / np.where(den_ok, df_den, 1.0),
                    nag + nbg - 2.0,
                )
                df_s = np.where(df > 0.0, df, 1.0)
                p_welch[gw] = np.where(
                    df > 0.0,
                    special.betainc(
                        df_s / 2.0, 0.5, df_s / (df_s + t * t)
                    ),
                    1.0,
                )
            merged[bu] = variance_ok & (p_welch > self.alpha)

        # Case 3: one observation (the n == 1 side's mu) against the
        # until-based sample, same op order as single_observation_t_test.
        mx = np.nonzero(single_a ^ single_b)[0]
        if len(mx):
            sample_first = ~single_a[mx]
            s_var = np.where(sample_first, var_a[mx], var_b[mx])
            s_mu = np.where(sample_first, mu_a[mx], mu_b[mx])
            s_n = np.where(sample_first, n_a[mx], n_b[mx])
            value = np.where(sample_first, mu_b[mx], mu_a[mx])
            close_mx = np.abs(diff[mx]) <= 1e-12 * np.maximum(
                np.abs(mu_a[mx]), np.abs(mu_b[mx])
            )
            p3 = np.where(close_mx, 1.0, 0.0)
            g3 = np.nonzero(s_var > 0.0)[0]
            if len(g3):
                sn = s_n[g3]
                s = np.sqrt(s_var[g3])
                scale = s * np.sqrt(1.0 + 1.0 / sn)
                t3 = (value[g3] - s_mu[g3]) / scale
                df3 = sn - 1.0
                p3[g3] = special.betainc(
                    df3 / 2.0, 0.5, df3 / (df3 + t3 * t3)
                )
            merged[mx] = p3 > self.alpha

        merged &= low[iu] & low[ju]
        out = np.zeros((count, count), dtype=bool)
        out[iu, ju] = merged
        out[ju, iu] = merged
        return out
