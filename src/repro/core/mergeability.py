"""Quantifying the mergeability of power states (paper Sec. IV-A).

Two power states are *mergeable* when their power attributes are
statistically indistinguishable.  Three cases apply, keyed on the sample
counts ``n`` of the two states:

* **Case 1** — both states come from *next* patterns (``n_i = n_j = 1``):
  mergeable when ``|mu_i - mu_j| < eps`` for a designer-fixed tolerance.
* **Case 2** — both states come from *until* patterns (``n_i, n_j > 1``):
  Welch's t-test on the two samples; mergeable when the difference of the
  means is not significant at level ``alpha``.
* **Case 3** — an *until* state against a *next* state (``n_i > 1``,
  ``n_j = 1``): a single-observation t-test (prediction-interval form)
  checking whether the lone sample is compatible with the larger sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from scipy import special

from .attributes import PowerAttributes
from .psm import PowerState


def _sample_variance(attrs: PowerAttributes) -> float:
    """Unbiased sample variance from the stored population sigma."""
    if attrs.n < 2:
        raise ValueError("sample variance needs n >= 2")
    return attrs.variance * attrs.n / (attrs.n - 1)


def _student_t_two_tailed(t: float, df: float) -> float:
    """Two-tailed p-value of Student's t via the incomplete beta function.

    ``P(|T| >= t) = I_{df/(df+t^2)}(df/2, 1/2)`` — much cheaper than
    instantiating a scipy distribution, which matters because the merge
    procedures run the test thousands of times on long training traces.
    """
    if df <= 0:
        return 1.0
    x = df / (df + t * t)
    return float(special.betainc(df / 2.0, 0.5, x))


def variance_f_test(a: PowerAttributes, b: PowerAttributes) -> float:
    """Two-tailed p-value of the F-test for equal variances.

    Used as an additional merge gate: Welch's test compares means only,
    so a state with a huge standard deviation (a bimodal, data-dependent
    behaviour) would otherwise "absorb" states with very different power
    simply because the test loses power.  Requiring compatible variances
    operationalises the paper's condition that mergeable states have
    *low* (i.e. mutually consistent) standard deviations.
    """
    if a.n < 2 or b.n < 2:
        raise ValueError("the F-test needs n >= 2 on both sides")
    var_a = _sample_variance(a)
    var_b = _sample_variance(b)
    if var_a <= 0.0 and var_b <= 0.0:
        return 1.0
    if var_a <= 0.0 or var_b <= 0.0:
        return 0.0
    # Order so f >= 1; survival of F(d1, d2) via the incomplete beta.
    if var_a >= var_b:
        f, d1, d2 = var_a / var_b, a.n - 1, b.n - 1
    else:
        f, d1, d2 = var_b / var_a, b.n - 1, a.n - 1
    sf = float(special.betainc(d2 / 2.0, d1 / 2.0, d2 / (d2 + d1 * f)))
    return min(1.0, 2.0 * sf)


def welch_t_test(a: PowerAttributes, b: PowerAttributes) -> float:
    """Two-tailed p-value of Welch's t-test on two power-attribute sets.

    Returns 1.0 when the samples cannot be told apart at all (equal means
    with zero variance) and 0.0 for zero-variance samples with different
    means.
    """
    if a.n < 2 or b.n < 2:
        raise ValueError("Welch's test needs n >= 2 on both sides")
    var_a = _sample_variance(a)
    var_b = _sample_variance(b)
    se2 = var_a / a.n + var_b / b.n
    if se2 <= 0.0:
        return 1.0 if math.isclose(a.mu, b.mu, rel_tol=1e-12) else 0.0
    t = (a.mu - b.mu) / math.sqrt(se2)
    df_num = se2 ** 2
    df_den = (var_a / a.n) ** 2 / (a.n - 1) + (var_b / b.n) ** 2 / (b.n - 1)
    df = df_num / df_den if df_den > 0 else float(a.n + b.n - 2)
    return _student_t_two_tailed(abs(t), df)


def single_observation_t_test(value: float, sample: PowerAttributes) -> float:
    """Two-tailed p-value for one observation against a sample.

    Uses the prediction-interval statistic
    ``t = (x - mu) / (s * sqrt(1 + 1/n))`` with ``n - 1`` degrees of
    freedom — the Case 3 formulation for merging a next-based state into
    an until-based state.
    """
    if sample.n < 2:
        raise ValueError("the reference sample needs n >= 2")
    s = math.sqrt(_sample_variance(sample))
    if s <= 0.0:
        return 1.0 if math.isclose(value, sample.mu, rel_tol=1e-12) else 0.0
    t = (value - sample.mu) / (s * math.sqrt(1.0 + 1.0 / sample.n))
    return _student_t_two_tailed(abs(t), sample.n - 1)


@dataclass(frozen=True)
class MergePolicy:
    """Designer-fixed knobs of the merge decision.

    Attributes
    ----------
    epsilon:
        Absolute tolerance for Case 1 (``|mu_i - mu_j| < eps``).
    epsilon_rel:
        Relative tolerance for Case 1, as a fraction of the larger mean;
        the effective Case-1 threshold is the larger of the two.
    alpha:
        Significance level for the Case 2 / Case 3 t-tests; states merge
        when the test does *not* reject equality (p > alpha).
    max_cv:
        "Low sigma" requirement: an until-based state takes part in a
        merge only when its coefficient of variation ``sigma / mu`` is at
        most this value.  Protects high-variance (data-dependent) states
        from being merged merely because the t-test lacks power; set to
        ``None`` to disable.
    variance_alpha:
        Significance level of the equal-variance F-test applied before a
        Case 2 mean comparison; states whose variances are incompatible
        at this level never merge (the quantitative form of the paper's
        "low standard deviations" merge condition).  ``None`` disables
        the gate.
    """

    epsilon: float = 0.0
    epsilon_rel: float = 0.05
    alpha: float = 0.05
    max_cv: Optional[float] = 0.35
    variance_alpha: Optional[float] = 0.01

    def __post_init__(self) -> None:
        if self.epsilon < 0 or self.epsilon_rel < 0:
            raise ValueError("tolerances must be non-negative")
        if not 0 < self.alpha < 1:
            raise ValueError("alpha must be in (0, 1)")
        if self.max_cv is not None and self.max_cv <= 0:
            raise ValueError("max_cv must be positive when set")
        if self.variance_alpha is not None and not 0 < self.variance_alpha < 1:
            raise ValueError("variance_alpha must be in (0, 1) when set")

    # ------------------------------------------------------------------
    def case1_threshold(self, a: PowerAttributes, b: PowerAttributes) -> float:
        """Effective absolute tolerance for a Case-1 comparison."""
        return max(self.epsilon, self.epsilon_rel * max(abs(a.mu), abs(b.mu)))

    def _low_sigma(self, attrs: PowerAttributes) -> bool:
        if self.max_cv is None or attrs.n == 1:
            return True
        if attrs.mu == 0.0:
            return attrs.sigma == 0.0
        return attrs.sigma / abs(attrs.mu) <= self.max_cv

    def mergeable_attributes(
        self, a: PowerAttributes, b: PowerAttributes
    ) -> bool:
        """Apply the correct case to two power-attribute triplets."""
        if not (self._low_sigma(a) and self._low_sigma(b)):
            return False
        if a.n == 1 and b.n == 1:
            return abs(a.mu - b.mu) < self.case1_threshold(a, b)
        if a.n > 1 and b.n > 1:
            if (
                self.variance_alpha is not None
                and variance_f_test(a, b) <= self.variance_alpha
            ):
                return False
            return welch_t_test(a, b) > self.alpha
        if a.n > 1:
            return single_observation_t_test(b.mu, a) > self.alpha
        return single_observation_t_test(a.mu, b) > self.alpha

    def mergeable(self, s1: PowerState, s2: PowerState) -> bool:
        """Mergeability of two power states.

        Data-dependent states (regression output functions) are never
        merged: their power is a function, not a constant, so the
        constant-based tests do not apply.
        """
        if s1.is_data_dependent or s2.is_data_dependent:
            return False
        return self.mergeable_attributes(s1.attributes, s2.attributes)
