"""Hierarchical PSMs (the paper's stated future work, Sec. VII).

The paper closes by observing that Camellia's poor accuracy comes from
sub-components "whose power behaviours are low correlated to each other"
and proposes, as future work, "the automatic generation of a power model
based on hierarchical PSMs that distinguishes among IP subcomponents".

This module implements that extension on top of the flat flow:

* the training traces are recorded with the module's declared *probes* —
  sub-component boundary signals (e.g. the round counter) that a
  white-box characterisation may observe;
* the reference power is split per sub-component (the estimator's
  per-component traces);
* one :class:`~repro.core.pipeline.PsmFlow` is fitted **per component**
  against the shared (probe-extended) functional trace;
* estimation runs every component flow and sums the component estimates.

With internal boundaries visible, behaviours that the flat model lumps
into one high-variance state (Camellia's FL spikes, the per-round S-box
activity) split into distinct states with accurate constants — the
mitigation the paper anticipates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from ..hdl.module import Module
from ..hdl.simulator import Simulator
from ..power.estimator import PowerEstimator
from ..traces.functional import FunctionalTrace
from ..traces.power import PowerTrace
from .mining import MinerConfig
from .pipeline import FlowConfig, PsmFlow
from .simulation import EstimationResult


@dataclass
class ComponentPowerResult:
    """A hierarchical training pair: probe-extended trace + split power."""

    trace: FunctionalTrace
    total: PowerTrace
    components: Dict[str, PowerTrace]
    functional_time: float = 0.0
    power_time: float = 0.0


def run_hierarchical_power_simulation(
    module: Module,
    stimulus: Iterable[Mapping[str, int]],
    estimator: Optional[PowerEstimator] = None,
    name: Optional[str] = None,
) -> ComponentPowerResult:
    """Simulate with probes recorded and power split per sub-component."""
    estimator = estimator or PowerEstimator()
    result = Simulator(module, record_activity=True).run(
        stimulus, name=name, include_probes=True
    )
    start = time.perf_counter()
    total = estimator.estimate_module(module, result.activity, name=name)
    components = estimator.estimate_components(module, result.activity)
    power_time = time.perf_counter() - start
    return ComponentPowerResult(
        trace=result.trace,
        total=total,
        components=components,
        functional_time=result.wall_time,
        power_time=power_time,
    )


@dataclass
class HierarchicalEstimate:
    """Summed and per-component estimation output."""

    estimated: PowerTrace
    per_component: Dict[str, EstimationResult]

    @property
    def wrong_state_fraction(self) -> float:
        """Worst per-component wrong-state percentage."""
        if not self.per_component:
            return 0.0
        return max(
            r.wrong_state_fraction for r in self.per_component.values()
        )


def default_hierarchical_config() -> FlowConfig:
    """Flow configuration suited to probe-extended traces.

    Probe variables (round counters) take a few dozen distinct values, so
    the constant-equality mining limit is raised accordingly.
    """
    return FlowConfig(
        miner=MinerConfig(
            min_avg_run=1.0,
            max_chatter_fraction=1.0,
            max_distinct_for_const=40,
        )
    )


class HierarchicalPsmFlow:
    """One PSM flow per sub-component, summed at estimation time."""

    def __init__(self, config: Optional[FlowConfig] = None) -> None:
        self.config = config or default_hierarchical_config()
        self.flows: Dict[str, PsmFlow] = {}
        self.components: List[str] = []

    @property
    def fitted(self) -> bool:
        """True once :meth:`fit` has run."""
        return bool(self.flows)

    def fit(
        self, training: Sequence[ComponentPowerResult]
    ) -> "HierarchicalPsmFlow":
        """Fit a component flow per sub-component power trace."""
        if not training:
            raise ValueError("at least one training result is required")
        names = set(training[0].components)
        for result in training[1:]:
            if set(result.components) != names:
                raise ValueError(
                    "training results expose different component sets"
                )
        self.components = sorted(names)
        traces = [r.trace for r in training]
        for component in self.components:
            flow = PsmFlow(self.config)
            flow.fit(traces, [r.components[component] for r in training])
            self.flows[component] = flow
        return self

    def estimate(self, trace: FunctionalTrace) -> HierarchicalEstimate:
        """Estimate each component on ``trace`` and sum the results.

        ``trace`` must include the probe variables (record it with
        ``include_probes=True`` or via
        :func:`run_hierarchical_power_simulation`).
        """
        if not self.fitted:
            raise RuntimeError("call fit() before estimate()")
        per_component: Dict[str, EstimationResult] = {}
        total = np.zeros(len(trace))
        for component, flow in self.flows.items():
            result = flow.estimate(trace)
            per_component[component] = result
            total += result.estimated.values
        return HierarchicalEstimate(
            estimated=PowerTrace(total, name=f"{trace.name}.hier"),
            per_component=per_component,
        )

    def total_states(self) -> int:
        """State count summed over all component flows."""
        return sum(f.report.n_states for f in self.flows.values())
