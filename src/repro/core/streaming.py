"""Incremental training core: window operators over trace streams.

The batch flow consumes a whole training pair at once; this module
refactors the same mining pipeline into *window operators* sharing one
contract — ``fit_window(window)`` folds one window of instants in,
``merge(other)`` combines operators that consumed disjoint partitions,
and ``finalize()`` freezes the artifact — so
:meth:`~repro.core.pipeline.PsmFlow.fit_stream` can train from a
windowed replay of traces that never fit in memory at once.

Three operators reproduce the two-phase miner of
:mod:`~repro.core.mining` exactly:

* :class:`AtomDiscovery` — accumulates bounded per-variable distinct
  value sets and finalizes into the batch candidate alphabet
  (:func:`~repro.core.mining.candidate_atoms_from_values`);
* :class:`AtomStats` — per-window truth evaluation with cross-window
  run stitching, so support / average-run / chatter statistics equal
  the batch single-pass figures integer for integer;
* :class:`MintermStream` — AND-composition into minterm propositions in
  global first-appearance order, with the per-trace proposition trace
  kept run-length-encoded through a
  :class:`~repro.core.xu.RunLengthStitcher`.

:class:`StreamingMiner` schedules the three passes over *replayable*
window sources and emits a :class:`~repro.core.mining.MiningResult`
bit-identical to ``AssertionMiner.mine_many`` over the concatenated
traces.  A :class:`DriftDetector` watches the composition pass for new
propositions and shifted window power means; when it fires, the flow
re-runs ``simplify``/``join`` over the stream prefix and republishes a
versioned bundle through :class:`BundlePublisher` — the registry's
hot-reload path picks the refresh up with zero estimate downtime.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from ..traces.functional import ArrayTrace
from ..traces.io import BinaryTraceReader, window_bounds
from ..traces.power import PowerTrace
from .attributes import RunningAttributes
from .mining import (
    MinerConfig,
    MiningResult,
    PropositionLabeler,
    _row_codes,
    _trace_truth_matrix,
    atom_passes_filters,
    candidate_atoms_from_values,
    proposition_label,
)
from .propositions import AtomicProposition, Proposition, PropositionTrace
from .xu import RunLengthStitcher

#: Default window size of the streaming scheduler (instants).
DEFAULT_WINDOW = 4096


class StreamingError(RuntimeError):
    """Base error of the streaming training core."""


# ----------------------------------------------------------------------
# windows and window sources
# ----------------------------------------------------------------------


@dataclass
class TraceWindow:
    """One window of a training pair: functional slice + power slice.

    ``functional`` covers instants ``[start, start + len)`` of trace
    ``trace_id``; ``power`` is the matching raw float64 vector (``None``
    for power-less sources).
    """

    trace_id: int
    start: int
    functional: object
    power: Optional[np.ndarray]

    def __len__(self) -> int:
        return len(self.functional)


def _slice_trace(trace, start: int, count: int):
    """A window view of a trace-protocol object.

    :class:`FunctionalTrace` exposes an inclusive-bound ``slice``;
    :class:`ArrayTrace` (and other column-protocol views) are windowed
    by slicing each column, which keeps the zero-copy property.
    """
    slicer = getattr(trace, "slice", None)
    if slicer is not None:
        return slicer(start, start + count - 1)
    return ArrayTrace(
        trace.variables,
        {
            name: trace.column(name)[start : start + count]
            for name in trace.variable_names
        },
        name=getattr(trace, "name", "trace"),
    )


class MemoryWindowSource:
    """Replayable window source over an in-memory training pair."""

    def __init__(
        self,
        functional,
        power: Union[PowerTrace, np.ndarray, None],
        trace_id: int = 0,
    ) -> None:
        if power is not None and not isinstance(power, PowerTrace):
            power = PowerTrace(np.asarray(power, dtype=np.float64))
        if power is not None and len(functional) != len(power):
            raise ValueError(
                "functional and power traces must have equal lengths"
            )
        self._functional = functional
        self._power = power
        self.trace_id = trace_id
        self.name = getattr(functional, "name", f"trace{trace_id}")

    def __len__(self) -> int:
        return len(self._functional)

    @property
    def variables(self):
        return self._functional.variables

    def windows(self, size: int) -> Iterator[TraceWindow]:
        """Replay the pair in windows of ``size`` instants."""
        values = self._power.values if self._power is not None else None
        for start, count in window_bounds(len(self._functional), size):
            yield TraceWindow(
                trace_id=self.trace_id,
                start=start,
                functional=_slice_trace(self._functional, start, count),
                power=(
                    values[start : start + count]
                    if values is not None
                    else None
                ),
            )

    def functional(self):
        """The whole functional trace (for the finalize-time stages)."""
        return self._functional

    def power(self) -> PowerTrace:
        """The whole power trace."""
        if self._power is None:
            raise StreamingError(f"source {self.name!r} has no power data")
        return self._power


class ReaderWindowSource:
    """Replayable window source over a binary ``.npt`` training pair.

    The ingest substrate of ``psmgen mine --stream``: windows come from
    :meth:`~repro.traces.io.BinaryTraceReader.chunks`, the finalize-time
    functional view is the reader's zero-copy
    :class:`~repro.traces.functional.ArrayTrace`, and the power trace is
    read once on demand.
    """

    def __init__(
        self,
        reader: Union[BinaryTraceReader, str, Path],
        trace_id: int = 0,
    ) -> None:
        if not isinstance(reader, BinaryTraceReader):
            reader = BinaryTraceReader(reader)
        self.reader = reader
        self.trace_id = trace_id
        self.name = reader.name
        self._functional = None
        self._power: Optional[PowerTrace] = None

    def __len__(self) -> int:
        return self.reader.length

    @property
    def variables(self):
        return self.reader.variables

    def windows(self, size: int) -> Iterator[TraceWindow]:
        """Stream the container as ``TraceWindow``s of ``size`` instants."""
        for start, functional, power in self.reader.chunks(size):
            yield TraceWindow(
                trace_id=self.trace_id,
                start=start,
                functional=functional,
                power=power,
            )

    def functional(self):
        """The whole functional trace as a zero-copy buffer view."""
        if self._functional is None:
            self._functional = self.reader.view_functional()
        return self._functional

    def power(self) -> PowerTrace:
        """The whole power trace, read once on first access."""
        if self._power is None:
            if not self.reader.has_power:
                raise StreamingError(
                    f"source {self.name!r} has no power data"
                )
            self._power = PowerTrace(
                self.reader.read_power(), name=self.name
            )
        return self._power


def as_window_source(source, trace_id: int):
    """Coerce a source-ish object into a window source.

    Accepts an existing source, a ``(functional, power)`` pair, a
    :class:`BinaryTraceReader` or a path to a ``.npt`` container.
    """
    if hasattr(source, "windows") and hasattr(source, "functional"):
        source.trace_id = trace_id
        return source
    if isinstance(source, BinaryTraceReader):
        return ReaderWindowSource(source, trace_id)
    if isinstance(source, (str, Path)):
        return ReaderWindowSource(BinaryTraceReader(source), trace_id)
    if isinstance(source, tuple) and len(source) == 2:
        return MemoryWindowSource(source[0], source[1], trace_id)
    raise TypeError(
        f"cannot build a window source from {type(source).__name__}"
    )


# ----------------------------------------------------------------------
# the operator contract
# ----------------------------------------------------------------------


class WindowOperator:
    """Contract shared by the incremental training operators.

    ``fit_window`` folds one window in; windows of one trace must arrive
    in order (run stitching is inherently sequential), while whole
    traces are the parallel axis — ``merge`` combines operators that
    consumed *disjoint trace subsets*, mirroring the batch miner's
    per-trace fan-out.  ``finalize`` freezes the operator's artifact.
    """

    def fit_window(self, window: TraceWindow):
        """Fold one trace window into the operator state."""
        raise NotImplementedError

    def merge(self, other: "WindowOperator") -> "WindowOperator":
        """Combine with an operator that consumed disjoint traces."""
        raise NotImplementedError

    def finalize(self):
        """Freeze the accumulated state into the batch-identical artifact."""
        raise NotImplementedError


class AtomDiscovery(WindowOperator):
    """Pass 1 — bounded distinct-value collection per eligible variable.

    Value sets stop growing once they exceed ``max_distinct_for_const``
    (the batch miner's early break): past the cap only *that* fact
    matters, so the truncated set and the full union finalize into the
    same alphabet.
    """

    def __init__(self, config: MinerConfig) -> None:
        self.config = config
        self.variables = None
        self._values: Dict[str, Set[int]] = {}
        self._saturated: Set[str] = set()

    def fit_window(self, window: TraceWindow) -> None:
        trace = window.functional
        if self.variables is None:
            self.variables = list(trace.variables)
            for var in self.variables:
                if 1 < var.width <= self.config.max_const_width:
                    self._values[var.name] = set()
        for name, values in self._values.items():
            if name in self._saturated:
                continue
            values.update(int(v) for v in np.unique(trace.column(name)))
            if len(values) > self.config.max_distinct_for_const:
                self._saturated.add(name)

    def merge(self, other: "AtomDiscovery") -> "AtomDiscovery":
        if self.variables is None:
            self.variables = other.variables
            self._values = other._values
            self._saturated = other._saturated
            return self
        for name, values in other._values.items():
            if name in self._saturated:
                continue
            if name in other._saturated:
                self._saturated.add(name)
                continue
            mine = self._values[name]
            mine.update(values)
            if len(mine) > self.config.max_distinct_for_const:
                self._saturated.add(name)
        return self

    def finalize(self) -> List[AtomicProposition]:
        if self.variables is None:
            raise StreamingError("no windows were consumed")
        distinct: Dict[str, Optional[Set[int]]] = {
            name: (None if name in self._saturated else values)
            for name, values in self._values.items()
        }
        return candidate_atoms_from_values(
            self.variables, self.config, distinct
        )


class AtomStats(WindowOperator):
    """Pass 2 — per-atom stability statistics with run stitching.

    Per candidate atom the operator tracks the support count plus the
    run-length statistics of the truth signal — total runs and chatter
    instants — carrying the pending trailing run across window
    boundaries and flushing it at each trace boundary, exactly as the
    batch single-pass filter sees it (runs never span traces).
    """

    def __init__(
        self, atoms: Sequence[AtomicProposition], config: MinerConfig
    ) -> None:
        self.atoms = list(atoms)
        self.config = config
        k = len(self.atoms)
        self.total = 0
        self.holds = np.zeros(k, dtype=np.int64)
        self.total_runs = np.zeros(k, dtype=np.int64)
        self.chatter = np.zeros(k, dtype=np.int64)
        self._pending_len = np.zeros(k, dtype=np.int64)
        self._pending_val = np.zeros(k, dtype=bool)
        self._current_trace: Optional[int] = None

    def fit_window(self, window: TraceWindow) -> None:
        if (
            self._current_trace is not None
            and window.trace_id != self._current_trace
        ):
            self._flush_trace()
        self._current_trace = window.trace_id
        matrix = _trace_truth_matrix((self.atoms, window.functional))
        n = len(matrix)
        if n == 0:
            return
        self.total += n
        if not self.atoms:
            return
        self.holds += matrix.sum(axis=0, dtype=np.int64)
        min_stable = self.config.min_stable_run
        has_pending = self._pending_len > 0
        for j in range(len(self.atoms)):
            signal = matrix[:, j]
            changes = np.nonzero(signal[1:] != signal[:-1])[0]
            bounds = np.concatenate(([0], changes + 1, [n]))
            lengths = np.diff(bounds)
            if has_pending[j] and signal[0] == self._pending_val[j]:
                lengths[0] += self._pending_len[j]
            elif has_pending[j]:
                self._close_run(j, int(self._pending_len[j]), min_stable)
            for length in lengths[:-1].tolist():
                self._close_run(j, int(length), min_stable)
            self._pending_len[j] = int(lengths[-1])
            self._pending_val[j] = bool(signal[-1])

    def _close_run(self, j: int, length: int, min_stable: int) -> None:
        self.total_runs[j] += 1
        if length < min_stable:
            self.chatter[j] += length

    def _flush_trace(self) -> None:
        min_stable = self.config.min_stable_run
        for j in np.nonzero(self._pending_len > 0)[0].tolist():
            self._close_run(j, int(self._pending_len[j]), min_stable)
        self._pending_len[:] = 0

    def merge(self, other: "AtomStats") -> "AtomStats":
        other._flush_trace()
        self._flush_trace()
        self.total += other.total
        self.holds += other.holds
        self.total_runs += other.total_runs
        self.chatter += other.chatter
        return self

    def statistics(self, j: int) -> Tuple[float, float]:
        """``(avg_run, chatter_fraction)`` of atom ``j`` so far."""
        runs = int(self.total_runs[j])
        if runs == 0:
            return float("inf"), 0.0
        return self.total / runs, int(self.chatter[j]) / self.total

    def finalize(self) -> List[AtomicProposition]:
        """The surviving atoms, in candidate order."""
        self._flush_trace()
        kept: List[AtomicProposition] = []
        for j, atom in enumerate(self.atoms):
            avg_run, chatter = self.statistics(j)
            if atom_passes_filters(
                self.config, int(self.holds[j]), self.total, avg_run, chatter
            ):
                kept.append(atom)
        return kept


@dataclass
class WindowSummary:
    """Per-window progress record of the composition pass."""

    trace_id: int
    index: int
    start: int
    instants: int
    new_propositions: int
    new_instants: int
    universe_size: int

    @property
    def new_fraction(self) -> float:
        """Fraction of the window's instants under first-seen minterms."""
        if self.instants == 0:
            return 0.0
        return self.new_instants / self.instants


class MintermStream(WindowOperator):
    """Pass 3 — minterm composition with run-length stitching.

    Maintains the proposition universe as truth rows in global
    first-appearance order (windows of one trace in order, traces in id
    order — the same order the batch ``np.unique`` composition sees the
    concatenated matrices in) and the per-trace proposition trace as a
    stitched RLE, so the finalized result is bit-identical to the batch
    ``_compose`` while holding only ``O(runs)`` state between windows.

    Proposition *objects* (and their labels) are created lazily at
    :meth:`finalize`/:meth:`snapshot` time — positions are the identity
    during streaming, which is what makes :meth:`merge` a pure row
    remap.
    """

    def __init__(self, atoms: Sequence[AtomicProposition]) -> None:
        self.atoms = list(atoms)
        self._rows: List[bytes] = []
        self._positions: Dict[bytes, int] = {}
        self._stitchers: Dict[int, RunLengthStitcher] = {}
        self._order: List[int] = []

    @property
    def universe_size(self) -> int:
        """Distinct minterms observed so far."""
        return len(self._rows)

    def fit_window(self, window: TraceWindow) -> np.ndarray:
        """Fold one window in; returns its universe-position indices."""
        matrix = _trace_truth_matrix((self.atoms, window.functional))
        codes = _row_codes(matrix)
        _, first, inverse = np.unique(
            codes, return_index=True, return_inverse=True
        )
        order = np.argsort(first)
        rank = np.empty(len(order), dtype=np.int64)
        rank[order] = np.arange(len(order))
        mapping = np.empty(len(order), dtype=np.int32)
        for local, row_index in enumerate(first[order].tolist()):
            key = np.ascontiguousarray(matrix[row_index]).tobytes()
            position = self._positions.get(key)
            if position is None:
                position = self._positions[key] = len(self._rows)
                self._rows.append(key)
            mapping[local] = position
        indices = mapping[rank[inverse]]
        stitcher = self._stitchers.get(window.trace_id)
        if stitcher is None:
            stitcher = self._stitchers[window.trace_id] = RunLengthStitcher()
            self._order.append(window.trace_id)
        stitcher.extend(indices)
        return indices

    def merge(self, other: "MintermStream") -> "MintermStream":
        remap = np.empty(len(other._rows), dtype=np.int32)
        for position, key in enumerate(other._rows):
            mine = self._positions.get(key)
            if mine is None:
                mine = self._positions[key] = len(self._rows)
                self._rows.append(key)
            remap[position] = mine
        for trace_id in other._order:
            if trace_id in self._stitchers:
                raise StreamingError(
                    f"cannot merge: trace {trace_id} in both operators"
                )
            stitcher = RunLengthStitcher()
            stitcher.extend(remap[other._stitchers[trace_id].indices()])
            self._stitchers[trace_id] = stitcher
            self._order.append(trace_id)
        return self

    # ------------------------------------------------------------------
    def _build_propositions(
        self, count: Optional[int] = None
    ) -> Tuple[List[Proposition], Dict[bytes, Proposition]]:
        rows = self._rows if count is None else self._rows[:count]
        propositions: List[Proposition] = []
        universe: Dict[bytes, Proposition] = {}
        for key in rows:
            row = np.frombuffer(key, dtype=bool)
            positives = [a for a, v in zip(self.atoms, row) if v]
            negatives = [a for a, v in zip(self.atoms, row) if not v]
            prop = Proposition(
                proposition_label(len(propositions)), positives, negatives
            )
            universe[key] = prop
            propositions.append(prop)
        return propositions, universe

    def snapshot(self) -> "StreamSnapshot":
        """A consistent view of everything composed so far."""
        propositions, universe = self._build_propositions()
        traces: List[PropositionTrace] = []
        for trace_id in sorted(self._order):
            traces.append(
                PropositionTrace.from_indices(
                    self._stitchers[trace_id].indices(),
                    propositions,
                    trace_id,
                )
            )
        return StreamSnapshot(
            atoms=list(self.atoms),
            propositions=propositions,
            universe=universe,
            traces=traces,
        )

    def finalize(self) -> MiningResult:
        """The batch-equivalent mining result over all consumed windows."""
        snapshot = self.snapshot()
        row_matrix = (
            np.array(
                [np.frombuffer(key, dtype=bool) for key in self._rows],
                dtype=bool,
            )
            if self._rows
            else np.zeros((0, len(self.atoms)), dtype=bool)
        )
        matrices = [
            row_matrix[trace.indices]
            if len(self._rows)
            else np.zeros((len(trace), len(self.atoms)), dtype=bool)
            for trace in snapshot.traces
        ]
        return MiningResult(
            atoms=list(self.atoms),
            propositions=snapshot.propositions,
            traces=snapshot.traces,
            matrices=matrices,
            labeler=PropositionLabeler(self.atoms, snapshot.universe),
        )


@dataclass
class StreamSnapshot:
    """Prefix view of the composition pass (drift-refresh input).

    ``traces`` cover every instant consumed so far; the trailing (still
    open) run of each trace is present but — as in any batch run — the
    generator emits no state for a final run, so every state built from
    a snapshot is final.
    """

    atoms: List[AtomicProposition]
    propositions: List[Proposition]
    universe: Dict[bytes, Proposition]
    traces: List[PropositionTrace]

    @property
    def instants(self) -> int:
        return sum(len(t) for t in self.traces)


# ----------------------------------------------------------------------
# drift detection
# ----------------------------------------------------------------------


@dataclass
class DriftPolicy:
    """When the composition pass should trigger a model refresh.

    ``max_new_fraction`` — a window whose fraction of instants labelled
    by first-seen minterms exceeds this fires (0 disables).
    ``mean_shift_sigmas`` — a window whose power mean deviates from the
    running baseline by more than this many baseline sigmas fires
    (0 disables).  ``warmup_windows`` windows are always observed
    without firing (the first windows are trivially all-new), and after
    a firing at least ``min_windows_between`` windows must pass before
    the next one.
    """

    max_new_fraction: float = 0.0
    mean_shift_sigmas: float = 0.0
    warmup_windows: int = 1
    min_windows_between: int = 1

    @property
    def enabled(self) -> bool:
        return self.max_new_fraction > 0 or self.mean_shift_sigmas > 0


@dataclass
class DriftEvent:
    """One firing of the drift detector."""

    trace_id: int
    window_index: int
    start: int
    reason: str
    value: float


class DriftDetector:
    """Watches window summaries for new propositions / shifted means.

    The power baseline is a :class:`RunningAttributes` accumulator —
    Welford merges of the per-window statistics — so the detector's
    state is O(1) regardless of stream length.
    """

    def __init__(self, policy: Optional[DriftPolicy] = None) -> None:
        self.policy = policy or DriftPolicy()
        self.baseline = RunningAttributes()
        self.events: List[DriftEvent] = []
        self._windows_seen = 0
        self._last_fired = -(10 ** 9)

    def observe(
        self,
        summary: WindowSummary,
        power: Optional[np.ndarray],
    ) -> Optional[DriftEvent]:
        """Fold one window in; returns the event when drift fired."""
        policy = self.policy
        index = self._windows_seen
        self._windows_seen += 1
        event: Optional[DriftEvent] = None
        armed = (
            policy.enabled
            and index >= policy.warmup_windows
            and index - self._last_fired >= policy.min_windows_between
        )
        if armed and policy.max_new_fraction > 0:
            fraction = summary.new_fraction
            if fraction > policy.max_new_fraction:
                event = DriftEvent(
                    trace_id=summary.trace_id,
                    window_index=index,
                    start=summary.start,
                    reason="new_propositions",
                    value=fraction,
                )
        if (
            event is None
            and armed
            and policy.mean_shift_sigmas > 0
            and power is not None
            and len(power) > 0
            and self.baseline.n > 0
        ):
            mean = float(np.asarray(power, dtype=np.float64).mean())
            sigma = self.baseline.sigma
            shift = abs(mean - self.baseline.mean)
            if shift > policy.mean_shift_sigmas * max(sigma, 1e-12):
                event = DriftEvent(
                    trace_id=summary.trace_id,
                    window_index=index,
                    start=summary.start,
                    reason="mean_shift",
                    value=shift,
                )
        if power is not None and len(power) > 0:
            self.baseline.update_many(power)
        if event is not None:
            self._last_fired = index
            self.events.append(event)
        return event


# ----------------------------------------------------------------------
# versioned bundle publishing
# ----------------------------------------------------------------------


class BundlePublisher:
    """Atomic, versioned bundle publishes into a registry-watched path.

    Each :meth:`publish` serialises the PSM set with
    :func:`~repro.core.export.publish_psms` — write-to-temp plus
    ``os.replace``, so a running registry only ever observes complete
    files and its ``(mtime, size)`` hot-reload signature flips exactly
    once per refresh.  Versions (digest + reason) are recorded in
    publish order.
    """

    def __init__(self, path, variables: Sequence = ()) -> None:
        self.path = Path(path)
        self.variables = list(variables)
        self.versions: List[Tuple[str, str]] = []

    def publish(
        self, psms: Sequence, reason: str = "refresh", accuracy=None
    ) -> str:
        """Write one bundle version; returns its content digest.

        ``accuracy`` (optional) embeds refinement-trajectory metadata in
        the published bundle — the hot-swap path ``psmgen refine
        --publish`` uses so a serving registry picks up the refined
        model together with its accuracy record.
        """
        from .export import publish_psms

        digest = publish_psms(
            psms, self.path, variables=self.variables, accuracy=accuracy
        )
        self.versions.append((digest, reason))
        return digest

    @property
    def digest(self) -> Optional[str]:
        """The most recently published digest (None before the first)."""
        return self.versions[-1][0] if self.versions else None


# ----------------------------------------------------------------------
# the streaming miner
# ----------------------------------------------------------------------


@dataclass
class StreamMiningReport:
    """Outcome of one streaming mining run."""

    mining: MiningResult
    windows: int
    candidates: int
    drift_events: List[DriftEvent] = field(default_factory=list)
    refreshes: int = 0


class StreamingMiner:
    """Three-pass windowed scheduler over replayable sources.

    Pass 1 discovers the candidate alphabet, pass 2 filters it with
    stitched run statistics, pass 3 composes minterm propositions —
    each pass streams every source window-by-window through one
    operator, sources in trace-id order (the batch concatenation
    order).  The result is bit-identical to
    ``AssertionMiner(config).mine_many([...])`` over the full traces.

    ``drift`` (a :class:`DriftDetector`) observes pass 3; on a firing,
    ``on_drift`` is called with a :class:`StreamSnapshot` of the stream
    prefix — the hook :meth:`PsmFlow.fit_stream` uses to re-run
    ``simplify``/``join`` and republish mid-stream.
    """

    def __init__(
        self,
        config: Optional[MinerConfig] = None,
        window: int = DEFAULT_WINDOW,
        drift: Optional[DriftDetector] = None,
        progress: Optional[Callable[[WindowSummary], None]] = None,
        on_drift: Optional[Callable[[StreamSnapshot], None]] = None,
    ) -> None:
        if window < 1:
            raise ValueError("window size must be >= 1")
        self.config = config or MinerConfig()
        self.window = window
        self.drift = drift
        self.progress = progress
        self.on_drift = on_drift

    def _check_sources(self, sources: Sequence) -> None:
        if not sources:
            raise ValueError("at least one window source is required")
        names = [v.name for v in sources[0].variables]
        for source in sources[1:]:
            if [v.name for v in source.variables] != names:
                raise ValueError(
                    "all traces must observe the same variables"
                )
        if any(len(source) == 0 for source in sources):
            raise ValueError("cannot mine an empty trace")

    def mine_sources(self, sources: Sequence) -> StreamMiningReport:
        """Run all three passes; returns the mining result + counters."""
        self._check_sources(sources)

        discovery = AtomDiscovery(self.config)
        for source in sources:
            for win in source.windows(self.window):
                discovery.fit_window(win)
        candidates = discovery.finalize()

        stats = AtomStats(candidates, self.config)
        for source in sources:
            for win in source.windows(self.window):
                stats.fit_window(win)
        kept = stats.finalize()

        composer = MintermStream(kept)
        refreshes = 0
        windows = 0
        for source in sources:
            for win in source.windows(self.window):
                before = composer.universe_size
                indices = composer.fit_window(win)
                new_props = composer.universe_size - before
                summary = WindowSummary(
                    trace_id=win.trace_id,
                    index=windows,
                    start=win.start,
                    instants=len(indices),
                    new_propositions=new_props,
                    new_instants=(
                        int(np.count_nonzero(indices >= before))
                        if new_props
                        else 0
                    ),
                    universe_size=composer.universe_size,
                )
                windows += 1
                if self.progress is not None:
                    self.progress(summary)
                if self.drift is not None:
                    event = self.drift.observe(summary, win.power)
                    if event is not None and self.on_drift is not None:
                        self.on_drift(composer.snapshot())
                        refreshes += 1

        return StreamMiningReport(
            mining=composer.finalize(),
            windows=windows,
            candidates=len(candidates),
            drift_events=list(self.drift.events) if self.drift else [],
            refreshes=refreshes,
        )


def refresh_psms(
    snapshot: StreamSnapshot,
    power_traces: Dict[int, PowerTrace],
    merge_policy,
) -> List:
    """The delta-driven ``simplify`` + ``join`` re-run over a prefix.

    Generates chain PSMs from the snapshot's (complete-run) proposition
    traces, truncates each reference power trace to the consumed prefix,
    and re-optimises — the refresh body behind every mid-stream publish.
    Traces still too short to complete a pattern contribute no PSM.
    """
    from .generator import generate_psm
    from .join import join
    from .simplify import simplify_all

    psms = []
    prefix_powers: Dict[int, PowerTrace] = {}
    for trace in snapshot.traces:
        power = power_traces[trace.trace_id]
        prefix = PowerTrace(
            power.values[: len(trace)], name=getattr(power, "name", "power")
        )
        prefix_powers[trace.trace_id] = prefix
        psm = generate_psm(trace, prefix, name=f"psm_t{trace.trace_id}")
        if len(psm) > 0:
            psms.append(psm)
    if not psms:
        return []
    simplified = simplify_all(psms, prefix_powers, merge_policy)
    return join(simplified, prefix_powers, merge_policy)
