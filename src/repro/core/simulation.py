"""PSM simulation (paper Sec. III-C and Sec. V).

Two simulators are provided:

* :class:`SinglePsmSimulator` — the basic chain-PSM simulation of
  Sec. III-C: the PSM follows its (unique) outgoing transitions, and when
  an unexpected behaviour appears it stays put, losing synchronisation
  until the expected propositions reappear.

* :class:`MultiPsmSimulator` — the full HMM-driven concurrent simulation
  of Sec. V over the optimised PSM set: states may carry sequence or
  choice assertions, the machine may be non-deterministic, choices are
  resolved by HMM filtering, wrong predictions revert and ban the
  offending transition, and a resynchronisation procedure re-enters the
  model after unknown behaviours.

Both consume the *proposition view* of the simulated functional trace,
obtained by replaying the mined proposition universe through a
:class:`~repro.core.mining.PropositionLabeler`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..traces.functional import FunctionalTrace
from ..traces.power import PowerTrace
from .hmm import PsmHmm
from .mining import PropositionLabeler
from .propositions import Proposition
from .psm import PSM, ConstantPower, PowerState
from .temporal import (
    ChoiceAssertion,
    NextAssertion,
    SequenceAssertion,
    TemporalAssertion,
    UntilAssertion,
)

#: Tracker verdicts for one simulation instant.
STAY = "stay"
EXIT = "exit"
VIOLATION = "violation"


class _AlternativeTracker:
    """Progress through one simple/sequence assertion."""

    def __init__(self, assertion: TemporalAssertion) -> None:
        if isinstance(assertion, SequenceAssertion):
            self.parts: Tuple[TemporalAssertion, ...] = assertion.parts
        else:
            self.parts = (assertion,)
        self.assertion = assertion
        self.index = 0

    def can_enter(self, prop: Proposition) -> bool:
        """True when the first instant of the assertion may be ``prop``."""
        return self.parts[0].first_proposition() == prop

    def enter(self, prop: Proposition) -> bool:
        """Consume the entry instant."""
        if not self.can_enter(prop):
            return False
        self.index = 0
        return True

    def advance(self, prop: Optional[Proposition]) -> str:
        """Consume one further instant; returns STAY / EXIT / VIOLATION."""
        if prop is None:
            return VIOLATION
        part = self.parts[self.index]
        if isinstance(part, UntilAssertion):
            if prop == part.left:
                return STAY
            if prop == part.right:
                return self._cascade()
            return VIOLATION
        if isinstance(part, NextAssertion):
            if prop == part.right:
                return self._cascade()
            return VIOLATION
        raise TypeError(f"unexpected part type {type(part).__name__}")

    def _cascade(self) -> str:
        """The current part's exit proposition was observed.

        The instant belongs to the following part's body when one exists
        (the cascade of a sequence assertion), otherwise the state exits.
        """
        if self.index + 1 < len(self.parts):
            self.index += 1
            return STAY
        return EXIT


class StateTracker:
    """NFA-style tracking of a state's (possibly choice) assertion.

    A choice assertion may have several alternatives compatible with the
    observed propositions; all are tracked, violated ones are dropped, and
    the state exits when no alternative can stay but one exits.
    """

    def __init__(self, state: PowerState) -> None:
        self.state = state
        if isinstance(state.assertion, ChoiceAssertion):
            alternatives = state.assertion.alternatives()
        else:
            alternatives = (state.assertion,)
        self._alternatives = alternatives
        self._active: List[_AlternativeTracker] = []

    def can_enter(self, prop: Optional[Proposition]) -> bool:
        """True when the state's assertion may start with ``prop``."""
        if prop is None:
            return False
        return any(
            _AlternativeTracker(alt).can_enter(prop)
            for alt in self._alternatives
        )

    def enter(self, prop: Proposition) -> bool:
        """Begin tracking at the entry instant."""
        self._active = []
        for alt in self._alternatives:
            tracker = _AlternativeTracker(alt)
            if tracker.enter(prop):
                self._active.append(tracker)
        return bool(self._active)

    def can_enter_anywhere(self, prop: Optional[Proposition]) -> bool:
        """True when ``prop`` matches any internal part boundary.

        Used by resynchronisation: a sequence state may be re-entered in
        the middle of its cascade when the simulation lost track of where
        the IP is.
        """
        if prop is None:
            return False
        for alt in self._alternatives:
            for part in _AlternativeTracker(alt).parts:
                if part.first_proposition() == prop:
                    return True
        return False

    def enter_anywhere(self, prop: Proposition) -> bool:
        """Begin tracking at whichever part boundary matches ``prop``."""
        self._active = []
        for alt in self._alternatives:
            tracker = _AlternativeTracker(alt)
            for index, part in enumerate(tracker.parts):
                if part.first_proposition() == prop:
                    tracker.index = index
                    self._active.append(tracker)
                    break
        return bool(self._active)

    def stable_on(self, prop: Optional[Proposition]) -> bool:
        """True when a repeat of ``prop`` is guaranteed to STAY unchanged.

        Holds when every active alternative sits in an *until* part whose
        body is ``prop`` — the streaming monitor's fast path: the tracker
        state cannot change while the proposition repeats.
        """
        if prop is None or not self._active:
            return False
        for tracker in self._active:
            part = tracker.parts[tracker.index]
            if not isinstance(part, UntilAssertion) or part.left != prop:
                return False
        return True

    def advance(self, prop: Optional[Proposition]) -> Tuple[str, Optional[TemporalAssertion]]:
        """Consume one instant.

        Returns ``(verdict, satisfied_alternative)``; the alternative is
        the assertion whose satisfaction caused an EXIT verdict.
        """
        if not self._active:
            return VIOLATION, None
        stays: List[_AlternativeTracker] = []
        exited: Optional[_AlternativeTracker] = None
        for tracker in self._active:
            verdict = tracker.advance(prop)
            if verdict == STAY:
                stays.append(tracker)
            elif verdict == EXIT and exited is None:
                exited = tracker
        if stays:
            self._active = stays
            return STAY, None
        if exited is not None:
            return EXIT, exited.assertion
        return VIOLATION, None


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass
class EstimationResult:
    """Output of one PSM simulation over a functional trace."""

    estimated: PowerTrace
    reliable: np.ndarray
    predictions: int = 0
    wrong_predictions: int = 0
    desync_instants: int = 0
    unknown_instants: int = 0
    reverted_instants: int = 0
    state_sequence: List[Optional[int]] = field(default_factory=list)

    @property
    def wsp(self) -> float:
        """Wrong-state-prediction percentage (Table III column)."""
        if self.predictions == 0:
            return 0.0
        return 100.0 * self.wrong_predictions / self.predictions

    @property
    def energy(self) -> float:
        """Total estimated energy: the per-instant power values summed."""
        return float(np.sum(self.estimated.values))

    def to_json(self, include_trace: bool = True) -> dict:
        """JSON-compatible summary of the estimation.

        The payload of the serving layer's ``/v1/estimate`` responses;
        ``include_trace=False`` drops the per-instant power vector for
        callers that only want the aggregate figures.  Floats survive
        ``json`` round trips bit-for-bit (``repr`` serialisation), so a
        served estimate can be compared exactly against an offline one.
        """
        n = len(self.estimated)
        payload = {
            "instants": n,
            "energy": self.energy,
            "mean_power": float(self.estimated.values.mean()) if n else 0.0,
            "wsp": self.wsp,
            "wrong_state_fraction": self.wrong_state_fraction,
            "desync_instants": self.desync_instants,
            "unknown_instants": self.unknown_instants,
            "reverted_instants": self.reverted_instants,
            "predictions": self.predictions,
            "wrong_predictions": self.wrong_predictions,
            "reliable_fraction": (
                float(np.mean(self.reliable)) if n else 1.0
            ),
        }
        if include_trace:
            payload["estimated"] = [float(x) for x in self.estimated.values]
        return payload

    @property
    def desync_fraction(self) -> float:
        """Fraction of instants spent desynchronised."""
        total = len(self.estimated)
        return self.desync_instants / total if total else 0.0

    @property
    def wrong_state_fraction(self) -> float:
        """Percentage of instants with no valid state prediction.

        The per-instant reading of the paper's wrong-state-prediction
        figure: the fraction of simulation instants the model spent
        desynchronised (no state's assertion explained the observed
        behaviour), during which its power output is not reliable.
        Instants that were mispredicted but recovered by the revert
        machinery are re-attributed and tracked separately in
        ``reverted_instants``.
        """
        total = len(self.estimated)
        if not total:
            return 0.0
        return 100.0 * self.desync_instants / total


# ----------------------------------------------------------------------
# shared vectorised helpers
# ----------------------------------------------------------------------
def _fill_power(
    estimated: np.ndarray,
    start: int,
    stop: int,
    state: PowerState,
    distances: Optional[np.ndarray],
) -> None:
    """Vectorised ``estimated[t] = state.output(distances[t])`` over a run.

    Elementwise float64 arithmetic, so the result is bit-identical to the
    per-instant scalar path.
    """
    model = state.power_model
    if isinstance(model, ConstantPower) or distances is None:
        estimated[start:stop] = state.output(0.0)
    else:
        estimated[start:stop] = (
            model.intercept + model.slope * distances[start:stop]
        )


def _needs_distances(states) -> bool:
    """True when any state's output function reads the Hamming distance."""
    return any(state.is_data_dependent for state in states)


# ----------------------------------------------------------------------
# single-PSM simulation (Sec. III-C)
# ----------------------------------------------------------------------
class SinglePsmSimulator:
    """Basic simulation of one chain PSM against a functional trace.

    The default :meth:`run` consumes the run-length-encoded proposition
    view: a k-cycle stretch of a stable *until* body (or of a proposition
    the machine cannot resynchronise on) costs O(1) instead of O(k), with
    the power accumulation vectorised over the segment.  ``rle=False``
    selects the historical per-instant path; both produce the exact same
    :class:`EstimationResult`.
    """

    def __init__(self, psm: PSM, labeler: PropositionLabeler) -> None:
        if not psm.initial_states:
            raise ValueError("the PSM has no initial state")
        self.psm = psm
        self.labeler = labeler
        self._compiled_machine = None

    def _compiled(self):
        """The compiled (table-driven) form of this simulator, cached."""
        if self._compiled_machine is None:
            from .compiled import CompiledSingle

            self._compiled_machine = CompiledSingle(self)
        return self._compiled_machine

    def run(
        self,
        trace: FunctionalTrace,
        rle: bool = True,
        engine: str = "auto",
    ) -> EstimationResult:
        """Estimate the power of ``trace`` by stepping the PSM.

        ``engine`` selects the execution backend: ``"compiled"`` runs
        the lazily-compiled segment tables (DESIGN.md §3.5),
        ``"object"`` forces the interpreting simulator (the
        bit-exactness oracle), and ``"auto"`` (default) compiles when
        the RLE path is requested.  All backends produce the exact same
        :class:`EstimationResult`.
        """
        if engine not in ("auto", "compiled", "object"):
            raise ValueError(f"unknown engine: {engine!r}")
        if engine == "compiled" or (engine == "auto" and rle):
            return self._compiled().run(trace)
        if rle:
            return self._run_rle(trace)
        return self._run_instantwise(trace)

    def _run_rle(self, trace: FunctionalTrace) -> EstimationResult:
        """Segment-driven simulation (the RLE fast path)."""
        runs = self.labeler.label_segments(trace)
        n = runs.n
        distances = (
            trace.hamming_distances()
            if _needs_distances(self.psm.states)
            else None
        )
        estimated = np.zeros(n)
        reliable = np.ones(n, dtype=bool)
        sequence: List[Optional[int]] = []
        desync = 0
        unknown = runs.unknown_instants

        current = self.psm.initial_states[0]
        tracker = StateTracker(current)
        synced = bool(runs.props) and tracker.enter(runs.props[0]) if n else False
        for start, length, prop in runs:
            stop = start + length
            t = start
            while t < stop:
                was_synced = synced
                if t > 0 and synced:
                    verdict, _ = tracker.advance(prop)
                    if verdict == EXIT:
                        successors = [
                            tr
                            for tr in self.psm.successors(current.sid)
                            if tr.enabling == prop
                        ]
                        moved = False
                        for transition in successors:
                            nxt = self.psm.state(transition.dst)
                            candidate = StateTracker(nxt)
                            if candidate.enter(prop):
                                current = nxt
                                tracker = candidate
                                moved = True
                                break
                        if not moved:
                            synced = False
                    elif verdict == VIOLATION:
                        synced = False
                elif t > 0 and not synced:
                    # Try to regain the expected behaviour of the current
                    # state (the chain PSM cannot jump, Sec. III-C).
                    candidate = StateTracker(current)
                    if prop is not None and candidate.enter(prop):
                        tracker = candidate
                        synced = True
                if not synced:
                    desync += 1
                    reliable[t] = False
                estimated[t] = current.output(
                    distances[t] if distances is not None else 0.0
                )
                sequence.append(current.sid if synced else None)
                t += 1
                if t >= stop:
                    break
                if synced and tracker.stable_on(prop):
                    # Stable until body: the tracker cannot change while
                    # the proposition repeats — consume the whole segment.
                    _fill_power(estimated, t, stop, current, distances)
                    sequence.extend([current.sid] * (stop - t))
                    t = stop
                elif not synced and not was_synced:
                    # Re-entry depends only on (state, proposition) and
                    # just failed on this very proposition: the rest of
                    # the segment stays desynchronised.
                    desync += stop - t
                    reliable[t:stop] = False
                    _fill_power(estimated, t, stop, current, distances)
                    sequence.extend([None] * (stop - t))
                    t = stop
        return EstimationResult(
            estimated=PowerTrace(
                np.clip(estimated, 0.0, None), name=f"{trace.name}.psm"
            ),
            reliable=reliable,
            predictions=0,
            wrong_predictions=0,
            desync_instants=desync,
            unknown_instants=unknown,
            state_sequence=sequence,
        )

    def _run_instantwise(self, trace: FunctionalTrace) -> EstimationResult:
        """Reference per-instant simulation (semantics oracle for the RLE path)."""
        props = self.labeler.label(trace)
        distances = trace.hamming_distances()
        n = len(trace)
        estimated = np.zeros(n)
        reliable = np.ones(n, dtype=bool)
        sequence: List[Optional[int]] = []
        desync = 0
        unknown = sum(1 for p in props if p is None)

        current = self.psm.initial_states[0]
        tracker = StateTracker(current)
        synced = bool(props) and tracker.enter(props[0]) if n else False
        for t in range(n):
            prop = props[t]
            if t > 0 and synced:
                verdict, _ = tracker.advance(prop)
                if verdict == EXIT:
                    successors = [
                        tr
                        for tr in self.psm.successors(current.sid)
                        if tr.enabling == prop
                    ]
                    moved = False
                    for transition in successors:
                        nxt = self.psm.state(transition.dst)
                        candidate = StateTracker(nxt)
                        if candidate.enter(prop):
                            current = nxt
                            tracker = candidate
                            moved = True
                            break
                    if not moved:
                        synced = False
                elif verdict == VIOLATION:
                    synced = False
            elif t > 0 and not synced:
                # Try to regain the expected behaviour of the current
                # state (the chain PSM cannot jump, Sec. III-C).
                candidate = StateTracker(current)
                if prop is not None and candidate.enter(prop):
                    tracker = candidate
                    synced = True
            if not synced:
                desync += 1
                reliable[t] = False
            estimated[t] = current.output(distances[t])
            sequence.append(current.sid if synced else None)
        return EstimationResult(
            estimated=PowerTrace(
                np.clip(estimated, 0.0, None), name=f"{trace.name}.psm"
            ),
            reliable=reliable,
            predictions=0,
            wrong_predictions=0,
            desync_instants=desync,
            unknown_instants=unknown,
            state_sequence=sequence,
        )


# ----------------------------------------------------------------------
# multi-PSM simulation with HMM (Sec. V)
# ----------------------------------------------------------------------
class MultiPsmSimulator:
    """HMM-driven simulation of the optimised PSM set (paper Sec. V).

    The simulator walks the PSM set state by state:

    * inside a state, the :class:`StateTracker` checks that the observed
      propositions keep satisfying (one of) the state's assertion(s);
    * when the exit proposition is observed, the outgoing transitions with
      a matching enabling function are the candidate next states and the
      HMM filtering picks the most probable one;
    * a violation inside a state entered through a non-deterministic
      choice is a *wrong state prediction*: the corresponding ``A`` entry
      is zeroed, the simulation reverts to the choice point and replays
      the consumed propositions on the remaining candidates,
      re-attributing their power to the corrected state;
    * when no candidate works, the behaviour is unknown: the machine stays
      in the last valid state, flagging its estimates unreliable, until a
      proposition that can enter some known state resynchronises it.
    """

    def __init__(
        self,
        psms: Sequence[PSM],
        labeler: PropositionLabeler,
        hmm: Optional[PsmHmm] = None,
    ) -> None:
        self.psms = list(psms)
        self.labeler = labeler
        self.hmm = hmm or PsmHmm(psms)
        self._all_states: List[PowerState] = [
            self.hmm.state(sid) for sid in self.hmm.state_ids
        ]
        self._psm_by_sid = {}
        for psm in self.psms:
            for state in psm.states:
                self._psm_by_sid[state.sid] = psm
        # Entry candidates are recomputed often during resynchronisation;
        # cache them per proposition.
        self._entry_cache: dict = {}
        self._anywhere_cache: dict = {}
        self._compiled_machine = None

    def _compiled(self):
        """The compiled (table-driven) form of this simulator, cached."""
        if self._compiled_machine is None:
            from .compiled import CompiledMulti

            self._compiled_machine = CompiledMulti(self)
        return self._compiled_machine

    # ------------------------------------------------------------------
    def _entry_candidates(self, prop: Proposition) -> List[int]:
        """States whose assertion can start with ``prop``."""
        cached = self._entry_cache.get(prop)
        if cached is None:
            cached = [
                state.sid
                for state in self._all_states
                if StateTracker(state).can_enter(prop)
            ]
            self._entry_cache[prop] = cached
        return cached

    def _anywhere_candidates(self, prop: Proposition) -> List[int]:
        """States re-enterable at an internal part boundary on ``prop``."""
        cached = self._anywhere_cache.get(prop)
        if cached is None:
            cached = [
                state.sid
                for state in self._all_states
                if StateTracker(state).can_enter_anywhere(prop)
            ]
            self._anywhere_cache[prop] = cached
        return cached

    def _successor_candidates(
        self, sid: int, prop: Proposition, banned
    ) -> List[int]:
        """Viable next states from ``sid`` on exit proposition ``prop``.

        A successor is viable when its transition guard matches, the path
        has not been banned during this run (a previously-wrong
        prediction), and its assertion can start with the observed
        proposition.
        """
        hmm = self.hmm
        psm = self._psm_by_sid[sid]
        seen: List[int] = []
        for transition in psm.successors(sid):
            if transition.enabling != prop or transition.dst in seen:
                continue
            if (sid, transition.dst) in banned:
                continue  # banned as a wrong prediction this run
            if hmm.A[hmm.index_of(sid), hmm.index_of(transition.dst)] <= 0:
                continue
            if StateTracker(hmm.state(transition.dst)).can_enter(prop):
                seen.append(transition.dst)
        return seen

    # ------------------------------------------------------------------
    def run(
        self,
        trace: FunctionalTrace,
        rle: bool = True,
        engine: str = "auto",
    ) -> EstimationResult:
        """Estimate the power of ``trace`` with the full PSM set.

        The default path is driven by the run-length-encoded proposition
        view (stable until bodies and unresynchronisable stretches cost
        O(1) per segment); ``rle=False`` selects the historical
        per-instant path.  ``engine`` picks the backend: ``"compiled"``
        runs the lazily-compiled segment tables (DESIGN.md §3.5),
        ``"object"`` forces this interpreting simulator, and ``"auto"``
        (default) compiles when RLE is requested.  All paths produce the
        exact same result.
        """
        if engine not in ("auto", "compiled", "object"):
            raise ValueError(f"unknown engine: {engine!r}")
        if engine == "compiled" or (engine == "auto" and rle):
            return self._compiled().run(trace)
        if rle:
            return self._run_rle(trace)
        return self._run_instantwise(trace)

    def _run_rle(self, trace: FunctionalTrace) -> EstimationResult:
        """Segment-driven simulation (the RLE fast path)."""
        hmm = self.hmm
        runs = self.labeler.label_segments(trace)
        props = runs.instant_props()
        run_end = runs.run_ends()
        n = runs.n
        distances = (
            trace.hamming_distances()
            if _needs_distances(self._all_states)
            else np.zeros(n)
        )
        estimated = np.zeros(n)
        reliable = np.ones(n, dtype=bool)
        sequence: List[Optional[int]] = []
        predictions = 0
        wrong = 0
        desync = 0
        reverted = 0
        unknown = runs.unknown_instants

        current: Optional[PowerState] = None
        tracker: Optional[StateTracker] = None
        last_valid: Optional[PowerState] = None
        # Choice context for wrong-prediction revert: the entry instant,
        # the predecessor state (None for initial/resync entries), the
        # untried candidates, and whether the entry was an actual choice.
        entry_t = 0
        entry_prev: Optional[int] = None
        entry_remaining: List[int] = []
        entry_was_choice = False
        # Paths proven wrong during *this* run (the paper's per-simulation
        # zeroing of A entries); the shared HMM is never mutated, so
        # repeated estimates are independent and reproducible.
        banned: set = set()

        def enter(sid, t, prev, remaining, was_choice, anywhere=False):
            nonlocal current, tracker, entry_t, entry_prev
            nonlocal entry_remaining, entry_was_choice, last_valid
            nonlocal predictions
            current = hmm.state(sid)
            tracker = StateTracker(current)
            if anywhere:
                tracker.enter_anywhere(props[t])
            else:
                tracker.enter(props[t])
            entry_t = t
            entry_prev = prev
            entry_remaining = remaining
            entry_was_choice = was_choice
            last_valid = current
            if was_choice:
                predictions += 1

        t = 0
        while t < n:
            prop = props[t]
            # Process the instant against the current state; violations
            # can trigger a revert that re-processes the same instant.
            guard = 0
            while current is not None and t > entry_t:
                guard += 1
                if guard > len(self._all_states) + 2:
                    current = None
                    break
                verdict, _satisfied = tracker.advance(prop)
                if verdict == STAY:
                    break
                if verdict == EXIT:
                    candidates = self._successor_candidates(
                        current.sid, prop, banned
                    )
                    if candidates:
                        belief = hmm.belief_for_state(current.sid)
                        best = hmm.best_candidate(belief, candidates)
                        enter(
                            best,
                            t,
                            current.sid,
                            [c for c in candidates if c != best],
                            len(candidates) > 1,
                        )
                    else:
                        current = None
                    break
                # VIOLATION: the state predicted at the last choice point
                # was wrong (counted once per choice).
                if entry_was_choice:
                    wrong += 1
                    entry_was_choice = False
                recovered = self._revert(
                    t,
                    props,
                    distances,
                    estimated,
                    current.sid,
                    entry_t,
                    entry_prev,
                    entry_remaining,
                    banned,
                )
                if recovered is None:
                    current = None
                    break
                state, new_tracker, remaining = recovered
                reverted += t - entry_t  # instants re-attributed
                current = state
                tracker = new_tracker
                entry_remaining = remaining
                last_valid = current
                # Loop again: re-advance the corrected state on prop[t].
            if current is None:
                resynced = self._resync(prop, last_valid)
                if resynced is not None:
                    sid, anywhere = resynced
                    enter(sid, t, None, [], False, anywhere=anywhere)
                else:
                    # Resynchronisation depends only on (prop, last_valid)
                    # and neither changes while the proposition repeats:
                    # the whole remaining segment stays desynchronised.
                    stop = int(run_end[t])
                    desync += stop - t
                    reliable[t:stop] = False
                    if last_valid is not None:
                        _fill_power(
                            estimated, t, stop, last_valid, distances
                        )
                    else:
                        estimated[t:stop] = 0.0
                    sequence.extend([None] * (stop - t))
                    t = stop
                    continue
            estimated[t] = current.output(distances[t])
            sequence.append(current.sid)
            # Run-length fast path: an until body repeats its proposition
            # for long stretches; consume the rest of the segment (which
            # by the RLE invariant never spans a proposition change).
            if tracker.stable_on(prop):
                stop = int(run_end[t])
                if stop > t + 1:
                    _fill_power(estimated, t + 1, stop, current, distances)
                    sequence.extend([current.sid] * (stop - t - 1))
                    t = stop
                    continue
            t += 1
        return EstimationResult(
            estimated=PowerTrace(
                np.clip(estimated, 0.0, None), name=f"{trace.name}.psm"
            ),
            reliable=reliable,
            predictions=predictions,
            wrong_predictions=wrong,
            desync_instants=desync,
            unknown_instants=unknown,
            reverted_instants=reverted,
            state_sequence=sequence,
        )

    def _run_instantwise(self, trace: FunctionalTrace) -> EstimationResult:
        """Reference per-instant simulation (semantics oracle for the RLE path)."""
        hmm = self.hmm
        props = self.labeler.label(trace)
        distances = trace.hamming_distances()
        n = len(trace)
        estimated = np.zeros(n)
        reliable = np.ones(n, dtype=bool)
        sequence: List[Optional[int]] = []
        predictions = 0
        wrong = 0
        desync = 0
        reverted = 0
        unknown = sum(1 for p in props if p is None)

        current: Optional[PowerState] = None
        tracker: Optional[StateTracker] = None
        last_valid: Optional[PowerState] = None
        # Choice context for wrong-prediction revert: the entry instant,
        # the predecessor state (None for initial/resync entries), the
        # untried candidates, and whether the entry was an actual choice.
        entry_t = 0
        entry_prev: Optional[int] = None
        entry_remaining: List[int] = []
        entry_was_choice = False
        # Paths proven wrong during *this* run (the paper's per-simulation
        # zeroing of A entries); the shared HMM is never mutated, so
        # repeated estimates are independent and reproducible.
        banned: set = set()

        def enter(sid, t, prev, remaining, was_choice, anywhere=False):
            nonlocal current, tracker, entry_t, entry_prev
            nonlocal entry_remaining, entry_was_choice, last_valid
            nonlocal predictions
            current = hmm.state(sid)
            tracker = StateTracker(current)
            if anywhere:
                tracker.enter_anywhere(props[t])
            else:
                tracker.enter(props[t])
            entry_t = t
            entry_prev = prev
            entry_remaining = remaining
            entry_was_choice = was_choice
            last_valid = current
            if was_choice:
                predictions += 1

        t = 0
        while t < n:
            prop = props[t]
            # Process the instant against the current state; violations
            # can trigger a revert that re-processes the same instant.
            guard = 0
            while current is not None and t > entry_t:
                guard += 1
                if guard > len(self._all_states) + 2:
                    current = None
                    break
                verdict, _satisfied = tracker.advance(prop)
                if verdict == STAY:
                    break
                if verdict == EXIT:
                    candidates = self._successor_candidates(
                        current.sid, prop, banned
                    )
                    if candidates:
                        belief = hmm.belief_for_state(current.sid)
                        best = hmm.best_candidate(belief, candidates)
                        enter(
                            best,
                            t,
                            current.sid,
                            [c for c in candidates if c != best],
                            len(candidates) > 1,
                        )
                    else:
                        current = None
                    break
                # VIOLATION: the state predicted at the last choice point
                # was wrong (counted once per choice).
                if entry_was_choice:
                    wrong += 1
                    entry_was_choice = False
                recovered = self._revert(
                    t,
                    props,
                    distances,
                    estimated,
                    current.sid,
                    entry_t,
                    entry_prev,
                    entry_remaining,
                    banned,
                )
                if recovered is None:
                    current = None
                    break
                state, new_tracker, remaining = recovered
                reverted += t - entry_t  # instants re-attributed
                current = state
                tracker = new_tracker
                entry_remaining = remaining
                last_valid = current
                # Loop again: re-advance the corrected state on prop[t].
            if current is None:
                resynced = self._resync(prop, last_valid)
                if resynced is not None:
                    sid, anywhere = resynced
                    enter(sid, t, None, [], False, anywhere=anywhere)
                else:
                    desync += 1
                    reliable[t] = False
                    estimated[t] = (
                        last_valid.output(distances[t]) if last_valid else 0.0
                    )
                    sequence.append(None)
                    t += 1
                    continue
            estimated[t] = current.output(distances[t])
            sequence.append(current.sid)
            # Run-length fast path: an until body repeats its proposition
            # for long stretches; consume the whole run vectorised.
            if tracker.stable_on(prop):
                stop = t + 1
                while stop < n and props[stop] is prop:
                    stop += 1
                if stop > t + 1:
                    model = current.power_model
                    if isinstance(model, ConstantPower):
                        estimated[t + 1 : stop] = model.value
                    else:
                        estimated[t + 1 : stop] = (
                            model.intercept
                            + model.slope * distances[t + 1 : stop]
                        )
                    sequence.extend([current.sid] * (stop - t - 1))
                    t = stop
                    continue
            t += 1
        return EstimationResult(
            estimated=PowerTrace(
                np.clip(estimated, 0.0, None), name=f"{trace.name}.psm"
            ),
            reliable=reliable,
            predictions=predictions,
            wrong_predictions=wrong,
            desync_instants=desync,
            unknown_instants=unknown,
            reverted_instants=reverted,
            state_sequence=sequence,
        )

    # ------------------------------------------------------------------
    def _revert(
        self,
        t: int,
        props: Sequence[Optional[Proposition]],
        distances: np.ndarray,
        estimated: np.ndarray,
        wrong_sid: int,
        entry_t: int,
        entry_prev: Optional[int],
        entry_remaining: List[int],
        banned,
    ):
        """Wrong-state-prediction recovery (paper Sec. V).

        Bans the path that led to the wrong state (for the remainder of
        this run), then replays the propositions consumed since the
        choice point (``entry_t`` up to ``t - 1``) on each remaining
        candidate; the first candidate that accepts the replay becomes
        the corrected current state, the replayed instants' power is
        re-attributed to it, and the caller re-processes instant ``t``.
        Returns ``(state, tracker, remaining)`` or ``None`` when every
        alternative fails.
        """
        hmm = self.hmm
        if entry_prev is not None:
            banned.add((entry_prev, wrong_sid))
        remaining = list(entry_remaining)
        while remaining:
            belief = (
                hmm.belief_for_state(entry_prev)
                if entry_prev is not None
                else hmm.initial_belief()
            )
            sid = hmm.best_candidate(belief, remaining)
            remaining.remove(sid)
            state = hmm.state(sid)
            tracker = StateTracker(state)
            if props[entry_t] is None or not tracker.enter(props[entry_t]):
                continue
            ok = True
            for k in range(entry_t + 1, t):
                verdict, _ = tracker.advance(props[k])
                if verdict != STAY:
                    ok = False
                    break
            if not ok:
                continue
            for k in range(entry_t, t):
                estimated[k] = state.output(distances[k])
            return state, tracker, remaining
        return None

    def _resync(
        self, prop: Optional[Proposition], last_valid: Optional[PowerState]
    ):
        """Most probable re-entry ``(state id, anywhere)`` for ``prop``.

        Prefers states whose assertion starts with ``prop``; when none
        exists, falls back on re-entering a sequence state at an internal
        part boundary.  Returns ``None`` when the proposition is unknown
        to the whole model.
        """
        if prop is None:
            return None
        anywhere = False
        candidates = self._entry_candidates(prop)
        if not candidates:
            candidates = self._anywhere_candidates(prop)
            anywhere = True
        if not candidates:
            return None
        hmm = self.hmm
        if last_valid is not None:
            belief = hmm.belief_for_state(last_valid.sid)
            scores = hmm.score_candidates(belief, candidates)
        else:
            # Initial entry: the prior pi applies directly (no transition
            # has been taken yet, so no propagation through A).
            prior = hmm.initial_belief()
            scores = [
                (sid, float(prior[hmm.index_of(sid)])) for sid in candidates
            ]
        if all(score <= 0 for _, score in scores):
            # Dead-end local belief: fall back on the global prior, then
            # on state frequency (sample counts) as a final tie-breaker.
            prior = hmm.initial_belief()
            scores = [
                (sid, float(prior[hmm.index_of(sid)])) for sid in candidates
            ]
        if all(score <= 0 for _, score in scores):
            scores = [
                (sid, float(hmm.state(sid).n)) for sid in candidates
            ]
        best_sid, best_score = scores[0]
        for sid, score in scores[1:]:
            if score > best_score:
                best_sid, best_score = sid, score
        return best_sid, anywhere
