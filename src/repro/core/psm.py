"""Power state machines (paper Definition 3).

A PSM is the 7-tuple ``<I, O, S, S0, E, lambda, omega>``: ``I`` the input
alphabet (here, the mined propositions evaluated over the IP's PIs/POs),
``O`` the output alphabet (power values), ``S`` the states, ``S0`` the
initial states, ``E`` the enabling functions guarding transitions,
``lambda`` the transition function and ``omega`` the output function
producing the power consumption of each state.
"""

from __future__ import annotations

import copy
import dataclasses
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from .attributes import Interval, PowerAttributes
from .propositions import Proposition
from .temporal import TemporalAssertion

_state_ids = itertools.count()


def next_state_id() -> int:
    """Globally unique state identifier (unique across all PSMs).

    Global uniqueness is what lets ``join`` merge states of different PSMs
    and the HMM enumerate the states of a whole PSM set.
    """
    return next(_state_ids)


def reset_state_ids() -> None:
    """Restart the id sequence (test isolation only)."""
    global _state_ids
    _state_ids = itertools.count()


def ensure_state_ids_above(psms: Sequence["PSM"]) -> None:
    """Advance the id sequence past every sid present in ``psms``.

    Called after deserialising a PSM set (checkpoint resume): states
    created afterwards — e.g. states merged by ``simplify``/``join`` —
    must not collide with the restored ids, and a resumed run must hand
    out the same ids a live run would.
    """
    global _state_ids
    top = max((s.sid for p in psms for s in p.states), default=-1)
    current = next(_state_ids)
    _state_ids = itertools.count(max(current, top + 1))


class PowerModel:
    """Output function ``omega`` of one state."""

    def estimate(self, hamming_distance: float) -> float:
        """Power estimate given the current input Hamming distance."""
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantPower(PowerModel):
    """Constant output: the mean ``mu`` of the training samples."""

    value: float

    def estimate(self, hamming_distance: float) -> float:
        return self.value

    def __str__(self) -> str:
        return f"{self.value:.4g}"


@dataclass(frozen=True)
class RegressionPower(PowerModel):
    """Data-dependent output: linear regression on input Hamming distance.

    Installed by the optimisation step (paper Sec. IV) on states whose
    standard deviation is too high and whose power correlates linearly
    with the Hamming distance of consecutive input values.
    """

    slope: float
    intercept: float
    correlation: float

    def estimate(self, hamming_distance: float) -> float:
        return self.intercept + self.slope * float(hamming_distance)

    def __str__(self) -> str:
        return (
            f"{self.intercept:.4g} + {self.slope:.4g}*HD "
            f"(r={self.correlation:.2f})"
        )


@dataclass
class PowerState:
    """One state of a PSM.

    Characterised (paper Sec. III-B / IV) by a temporal assertion, the
    power attributes ``(mu, sigma, n)``, the training intervals the
    attributes were measured on, and the output function (constant by
    default, regression-based for data-dependent states).
    """

    assertion: TemporalAssertion
    attributes: PowerAttributes
    intervals: List[Interval] = field(default_factory=list)
    sid: int = field(default_factory=next_state_id)
    power_model: Optional[PowerModel] = None

    def __post_init__(self) -> None:
        if self.power_model is None:
            self.power_model = ConstantPower(self.attributes.mu)

    @property
    def mu(self) -> float:
        """Mean training power of the state."""
        return self.attributes.mu

    @property
    def sigma(self) -> float:
        """Standard deviation of the training power."""
        return self.attributes.sigma

    @property
    def n(self) -> int:
        """Number of training instants."""
        return self.attributes.n

    @property
    def is_data_dependent(self) -> bool:
        """True when a regression model replaced the constant output."""
        return isinstance(self.power_model, RegressionPower)

    def output(self, hamming_distance: float = 0.0) -> float:
        """The output function ``omega`` of Definition 3."""
        return self.power_model.estimate(hamming_distance)

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"s{self.sid}: {self.assertion} {self.attributes} "
            f"omega={self.power_model}"
        )

    def __hash__(self) -> int:
        return hash(self.sid)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PowerState) and other.sid == self.sid


@dataclass(frozen=True)
class Transition:
    """A guarded transition; the enabling function is a proposition."""

    src: int
    dst: int
    enabling: Proposition

    def __str__(self) -> str:
        return f"s{self.src} --[{self.enabling}]--> s{self.dst}"


class PSM:
    """A power state machine over globally-identified states."""

    def __init__(self, name: str = "psm") -> None:
        self.name = name
        self._states: Dict[int, PowerState] = {}
        self._transitions: List[Transition] = []
        self._transition_set: Set[Transition] = set()
        self._by_src: Dict[int, List[Transition]] = {}
        self._by_dst: Dict[int, List[Transition]] = {}
        self._initial: List[int] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_state(self, state: PowerState, initial: bool = False) -> PowerState:
        """Add a state (optionally marking it initial)."""
        if state.sid in self._states:
            raise ValueError(f"duplicate state id {state.sid}")
        self._states[state.sid] = state
        if initial:
            self._initial.append(state.sid)
        return state

    def add_transition(self, transition: Transition) -> Transition:
        """Add a transition between existing states (duplicates ignored)."""
        if transition.src not in self._states:
            raise ValueError(f"unknown source state {transition.src}")
        if transition.dst not in self._states:
            raise ValueError(f"unknown destination state {transition.dst}")
        if transition not in self._transition_set:
            self._transitions.append(transition)
            self._transition_set.add(transition)
            self._by_src.setdefault(transition.src, []).append(transition)
            self._by_dst.setdefault(transition.dst, []).append(transition)
        return transition

    def mark_initial(self, sid: int) -> None:
        """Add a state to the initial set ``S0``."""
        if sid not in self._states:
            raise ValueError(f"unknown state {sid}")
        if sid not in self._initial:
            self._initial.append(sid)

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    @property
    def states(self) -> List[PowerState]:
        """All states, in insertion order."""
        return list(self._states.values())

    @property
    def state_ids(self) -> List[int]:
        """All state ids, in insertion order."""
        return list(self._states)

    @property
    def transitions(self) -> List[Transition]:
        """All transitions."""
        return list(self._transitions)

    @property
    def initial_states(self) -> List[PowerState]:
        """The initial set ``S0``."""
        return [self._states[sid] for sid in self._initial]

    def state(self, sid: int) -> PowerState:
        """Look a state up by id."""
        return self._states[sid]

    def has_state(self, sid: int) -> bool:
        """True when ``sid`` belongs to this PSM."""
        return sid in self._states

    def __len__(self) -> int:
        return len(self._states)

    def successors(self, sid: int) -> List[Transition]:
        """Transitions leaving ``sid``."""
        return list(self._by_src.get(sid, ()))

    def predecessors(self, sid: int) -> List[Transition]:
        """Transitions entering ``sid``."""
        return list(self._by_dst.get(sid, ()))

    def is_chain(self) -> bool:
        """True for the generator's output shape: a linear chain."""
        for sid in self._states:
            if len(self.successors(sid)) > 1 or len(self.predecessors(sid)) > 1:
                return False
        return True

    def is_deterministic(self) -> bool:
        """False when some state has two transitions with equal guards
        toward different states (possible after ``join``)."""
        for sid in self._states:
            seen: Dict[Proposition, Set[int]] = {}
            for transition in self.successors(sid):
                seen.setdefault(transition.enabling, set()).add(transition.dst)
            if any(len(dsts) > 1 for dsts in seen.values()):
                return False
        return True

    # ------------------------------------------------------------------
    # bulk edits used by simplify / join
    # ------------------------------------------------------------------
    def replace_states(
        self,
        removed: Sequence[int],
        replacement: PowerState,
        initial: bool = False,
        internal: str = "drop",
    ) -> None:
        """Substitute ``removed`` states with ``replacement``.

        Transitions crossing the boundary are re-targeted at the
        replacement, preserving their enabling functions (paper Sec. IV).
        Transitions *among* removed states are dropped when
        ``internal == "drop"`` (``simplify``: the sequence assertion
        absorbs them) or turned into self-loops when
        ``internal == "selfloop"`` (``join``: one merged state may be its
        own predecessor/successor).
        """
        if internal not in ("drop", "selfloop"):
            raise ValueError(f"unknown internal mode {internal!r}")
        removed_set = set(removed)
        if not removed_set <= set(self._states):
            raise ValueError("cannot remove states not in this PSM")
        self._states = {
            sid: state
            for sid, state in self._states.items()
            if sid not in removed_set
        }
        self._states[replacement.sid] = replacement
        rewired: List[Transition] = []
        rewired_set: Set[Transition] = set()
        for transition in self._transitions:
            src_in = transition.src in removed_set
            dst_in = transition.dst in removed_set
            if src_in and dst_in and internal == "drop":
                continue
            src = replacement.sid if src_in else transition.src
            dst = replacement.sid if dst_in else transition.dst
            new_t = Transition(src, dst, transition.enabling)
            if new_t not in rewired_set:
                rewired.append(new_t)
                rewired_set.add(new_t)
        self._set_transitions(rewired, rewired_set)
        was_initial = any(sid in removed_set for sid in self._initial)
        self._initial = [s for s in self._initial if s not in removed_set]
        if (initial or was_initial) and replacement.sid not in self._initial:
            self._initial.append(replacement.sid)

    def _set_transitions(
        self, transitions: List[Transition], transition_set: Set[Transition]
    ) -> None:
        """Replace the transition collection and rebuild the indices."""
        self._transitions = transitions
        self._transition_set = transition_set
        self._by_src = {}
        self._by_dst = {}
        for transition in transitions:
            self._by_src.setdefault(transition.src, []).append(transition)
            self._by_dst.setdefault(transition.dst, []).append(transition)

    def validate(self) -> None:
        """Check structural invariants; raise ``ValueError`` on violation."""
        for transition in self._transitions:
            if transition.src not in self._states:
                raise ValueError(f"dangling source in {transition}")
            if transition.dst not in self._states:
                raise ValueError(f"dangling destination in {transition}")
        for sid in self._initial:
            if sid not in self._states:
                raise ValueError(f"initial state {sid} not in PSM")
        ids = [s.sid for s in self._states.values()]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate state ids")

    def describe(self) -> str:
        """Multi-line human-readable dump."""
        lines = [f"PSM {self.name}: {len(self)} states, "
                 f"{len(self._transitions)} transitions"]
        for state in self.states:
            marker = "*" if state.sid in self._initial else " "
            lines.append(f" {marker} {state.describe()}")
        for transition in self._transitions:
            lines.append(f"   {transition}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"PSM({self.name!r}, states={len(self)}, "
            f"transitions={len(self._transitions)})"
        )


def clone_psm(psm: PSM) -> PSM:
    """Structural deep copy of a PSM (keeping the global state ids).

    The optimisation stages rewrite the working PSM set — ``simplify`` /
    ``join`` replace states, and the regression refinement swaps state
    output functions — while the raw set must stay inspectable.  Each
    state is therefore duplicated together with everything a later stage
    could touch: a fresh ``PowerAttributes`` instance, a fresh interval
    list and a fresh ``power_model`` object, so no mutable slot is
    aliased between the copy and the source.  Assertions are shared:
    they are immutable (the stages always build new ones).
    """
    duplicate = PSM(name=psm.name)
    initials = {s.sid for s in psm.initial_states}
    for state in psm.states:
        duplicate.add_state(
            PowerState(
                assertion=state.assertion,
                attributes=dataclasses.replace(state.attributes),
                intervals=list(state.intervals),
                sid=state.sid,
                power_model=copy.copy(state.power_model),
            ),
            initial=state.sid in initials,
        )
    for transition in psm.transitions:
        duplicate.add_transition(transition)
    return duplicate


def total_states(psms: Sequence[PSM]) -> int:
    """Total state count over a PSM set (Table II column)."""
    return sum(len(p) for p in psms)


def total_transitions(psms: Sequence[PSM]) -> int:
    """Total transition count over a PSM set (Table II column)."""
    return sum(len(p.transitions) for p in psms)


def find_state(psms: Sequence[PSM], sid: int) -> Tuple[PSM, PowerState]:
    """Locate a state id inside a PSM set."""
    for psm in psms:
        if psm.has_state(sid):
            return psm, psm.state(sid)
    raise KeyError(f"state {sid} not found in PSM set")


def state_universe(psms: Sequence[PSM]) -> Mapping[int, PowerState]:
    """All states of a PSM set, by id (the HMM's hidden-state set Q)."""
    universe: Dict[int, PowerState] = {}
    for psm in psms:
        for state in psm.states:
            universe[state.sid] = state
    return universe
