"""The PSMGenerator procedure (paper Fig. 4).

Turns one proposition trace and its reference power trace into a chain
PSM: every pattern recognised by the XU automaton becomes a power state
annotated with its power attributes; consecutive states are connected by a
transition whose enabling function is the proposition that terminated the
previous pattern (the exit proposition, i.e. the FIFO's ``f[1]`` at
recognition time).

Two engines produce the same chain.  ``engine="rle"`` (the default)
derives the patterns from the run-length-encoded proposition trace and
computes all per-interval power attributes in one vectorized pass
(:func:`~repro.core.attributes.segment_attributes`); ``engine="scan"``
replays the per-instant automaton and per-interval ``numpy`` reductions.
The scan path is retained as the equivalence oracle — the test suite
proves both engines emit bit-identical PSMs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..traces.power import PowerTrace
from .attributes import Interval, PowerAttributes, segment_attributes
from .propositions import PropositionTrace
from .psm import PSM, PowerState, Transition
from .temporal import NextAssertion, UntilAssertion
from .xu import XUAutomaton


def _generate_psm_scan(
    proposition_trace: PropositionTrace,
    power_trace: PowerTrace,
    psm: PSM,
) -> PSM:
    """Per-instant oracle: two-slot automaton + per-interval reductions."""
    trace_id = proposition_trace.trace_id
    automaton = XUAutomaton(proposition_trace)
    previous: Optional[PowerState] = None
    while True:
        mined = automaton.get_assertion()
        if mined is None:
            break
        attributes = PowerAttributes.from_power_trace(
            power_trace, mined.start, mined.stop
        )
        state = PowerState(
            assertion=mined.assertion,
            attributes=attributes,
            intervals=[Interval(trace_id, mined.start, mined.stop)],
        )
        psm.add_state(state, initial=previous is None)
        if previous is not None:
            psm.add_transition(
                Transition(
                    previous.sid,
                    state.sid,
                    previous.assertion.exit_proposition(),
                )
            )
        previous = state
    return psm


def _generate_psm_rle(
    proposition_trace: PropositionTrace,
    power_trace: PowerTrace,
    psm: PSM,
) -> PSM:
    """RLE fast path: boundary arithmetic + vectorized attributes.

    The mined patterns are runs ``0 .. K-2`` of the RLE view (see
    :func:`~repro.core.xu.mine_patterns_rle`); their power attributes
    come from one vectorized :func:`segment_attributes` pass, and the
    transition enabling the scan oracle reads off the automaton FIFO
    (the previous pattern's exit proposition) is simply the next run's
    own proposition.
    """
    trace_id = proposition_trace.trace_id
    starts, lengths, codes = proposition_trace.rle()
    count = len(starts) - 1
    if count < 1:
        return psm
    alphabet = proposition_trace.alphabet
    mu, sigma = segment_attributes(
        power_trace.values, starts[:count], lengths[:count]
    )
    mu_list = mu.tolist()
    sigma_list = sigma.tolist()
    start_list = starts.tolist()
    length_list = lengths.tolist()
    code_list = codes.tolist()
    cache: dict = {}
    previous: Optional[PowerState] = None
    for k in range(count):
        body, follower = code_list[k], code_list[k + 1]
        length = length_list[k]
        is_next = length == 1
        key = (body, follower, is_next)
        assertion = cache.get(key)
        if assertion is None:
            factory = NextAssertion if is_next else UntilAssertion
            assertion = cache[key] = factory(
                alphabet[body], alphabet[follower]
            )
        start = start_list[k]
        state = PowerState(
            assertion=assertion,
            attributes=PowerAttributes(
                mu=mu_list[k], sigma=sigma_list[k], n=length
            ),
            intervals=[Interval(trace_id, start, start + length - 1)],
        )
        psm.add_state(state, initial=previous is None)
        if previous is not None:
            # previous.assertion.exit_proposition() == alphabet[body]
            psm.add_transition(
                Transition(previous.sid, state.sid, alphabet[body])
            )
        previous = state
    return psm


def generate_psm(
    proposition_trace: PropositionTrace,
    power_trace: PowerTrace,
    name: Optional[str] = None,
    engine: str = "rle",
) -> PSM:
    """Run PSMGenerator over one (proposition, power) trace pair.

    The first extracted state is marked initial (it is the state active at
    instant 0 of the training trace).  The result is always a chain: each
    state has a unique successor and a unique predecessor (paper
    Sec. III-C).  ``engine`` selects the RLE fast path (default) or the
    retained per-instant scan oracle; both emit bit-identical PSMs.
    """
    if len(proposition_trace) > len(power_trace):
        raise ValueError(
            "power trace is shorter than the proposition trace "
            f"({len(power_trace)} < {len(proposition_trace)})"
        )
    psm = PSM(name or f"psm_t{proposition_trace.trace_id}")
    if engine == "rle":
        return _generate_psm_rle(proposition_trace, power_trace, psm)
    if engine == "scan":
        return _generate_psm_scan(proposition_trace, power_trace, psm)
    raise ValueError(f"unknown engine {engine!r}; use 'rle' or 'scan'")


def generate_psms(
    proposition_traces: Sequence[PropositionTrace],
    power_traces: Sequence[PowerTrace],
    engine: str = "rle",
) -> List[PSM]:
    """Generate one chain PSM per training trace pair.

    ``proposition_traces[k]`` must carry ``trace_id == k`` so that merged
    states can later recompute their attributes from ``power_traces[k]``.
    """
    if len(proposition_traces) != len(power_traces):
        raise ValueError("need one power trace per proposition trace")
    psms: List[PSM] = []
    for k, (gamma, delta) in enumerate(
        zip(proposition_traces, power_traces)
    ):
        if gamma.trace_id != k:
            raise ValueError(
                f"proposition trace at index {k} has trace_id "
                f"{gamma.trace_id}; expected {k}"
            )
        psms.append(generate_psm(gamma, delta, engine=engine))
    return psms
