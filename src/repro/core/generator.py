"""The PSMGenerator procedure (paper Fig. 4).

Turns one proposition trace and its reference power trace into a chain
PSM: every pattern recognised by the XU automaton becomes a power state
annotated with its power attributes; consecutive states are connected by a
transition whose enabling function is the proposition that terminated the
previous pattern (the exit proposition, i.e. the FIFO's ``f[1]`` at
recognition time).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..traces.power import PowerTrace
from .attributes import Interval, PowerAttributes
from .propositions import PropositionTrace
from .psm import PSM, PowerState, Transition
from .xu import XUAutomaton


def generate_psm(
    proposition_trace: PropositionTrace,
    power_trace: PowerTrace,
    name: Optional[str] = None,
) -> PSM:
    """Run PSMGenerator over one (proposition, power) trace pair.

    The first extracted state is marked initial (it is the state active at
    instant 0 of the training trace).  The result is always a chain: each
    state has a unique successor and a unique predecessor (paper
    Sec. III-C).
    """
    if len(proposition_trace) > len(power_trace):
        raise ValueError(
            "power trace is shorter than the proposition trace "
            f"({len(power_trace)} < {len(proposition_trace)})"
        )
    trace_id = proposition_trace.trace_id
    psm = PSM(name or f"psm_t{trace_id}")
    automaton = XUAutomaton(proposition_trace)
    previous: Optional[PowerState] = None
    while True:
        mined = automaton.get_assertion()
        if mined is None:
            break
        attributes = PowerAttributes.from_power_trace(
            power_trace, mined.start, mined.stop
        )
        state = PowerState(
            assertion=mined.assertion,
            attributes=attributes,
            intervals=[Interval(trace_id, mined.start, mined.stop)],
        )
        psm.add_state(state, initial=previous is None)
        if previous is not None:
            psm.add_transition(
                Transition(
                    previous.sid,
                    state.sid,
                    previous.assertion.exit_proposition(),
                )
            )
        previous = state
    return psm


def generate_psms(
    proposition_traces: Sequence[PropositionTrace],
    power_traces: Sequence[PowerTrace],
) -> List[PSM]:
    """Generate one chain PSM per training trace pair.

    ``proposition_traces[k]`` must carry ``trace_id == k`` so that merged
    states can later recompute their attributes from ``power_traces[k]``.
    """
    if len(proposition_traces) != len(power_traces):
        raise ValueError("need one power trace per proposition trace")
    psms: List[PSM] = []
    for k, (gamma, delta) in enumerate(
        zip(proposition_traces, power_traces)
    ):
        if gamma.trace_id != k:
            raise ValueError(
                f"proposition trace at index {k} has trace_id "
                f"{gamma.trace_id}; expected {k}"
            )
        psms.append(generate_psm(gamma, delta))
    return psms
