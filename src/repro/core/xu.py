"""The XU automaton (paper Fig. 5, left).

The automaton scans a proposition trace through a two-slot FIFO
``f = [Gamma[i], Gamma[i+1]]`` and recognises the two temporal patterns the
methodology is built on:

* **until** — entered from ``X`` when ``f[1] == f[0]`` (at least two
  consecutive instants of the same proposition); left when ``f[1] != f[0]``,
  yielding ``f[0] U f[1]`` over the instants where ``f[0]`` held;
* **next** — recognised directly in ``X`` when ``f[1] != f[0]``, yielding
  ``f[0] X f[1]``.

Every recognised assertion is returned together with the inclusive instant
interval ``[start, stop]`` where its *body* proposition holds — the
interval the power attributes are measured on.  A *next* assertion's body
spans a single instant (``n = 1``), which is what makes the paper's merge
Case 1 (``n_i = n_j = 1``) apply to pairs of next-based states.

Incomplete trailing patterns (the trace ends before the exit proposition
is observed, i.e. *nil* is encountered) terminate the scan without
emitting a state, matching the paper's example where the final ``p_d``
instant produces no further state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

from .propositions import PropositionTrace, run_length_encode
from .temporal import NextAssertion, TemporalAssertion, UntilAssertion

#: Automaton state names (exported for introspection and tests).
STATE_X = "X"
STATE_U = "U"


@dataclass(frozen=True)
class MinedAssertion:
    """One recognised pattern: the triplet ``<p, start, stop>`` of Fig. 4."""

    assertion: TemporalAssertion
    start: int
    stop: int

    @property
    def n(self) -> int:
        """Number of instants the body holds (``stop - start + 1``)."""
        return self.stop - self.start + 1

    @property
    def is_next(self) -> bool:
        """True for a next-pattern assertion."""
        return isinstance(self.assertion, NextAssertion)

    def __str__(self) -> str:
        return f"<{self.assertion}, {self.start}, {self.stop}>"


class XUAutomaton:
    """Streaming recogniser of until / next patterns.

    Usage mirrors the paper's ``XU_initialize`` / ``XU_getAssertion``: build
    the automaton on a proposition trace, then call
    :meth:`get_assertion` until it returns ``None`` (the *nil* of Fig. 4).
    """

    def __init__(self, trace: PropositionTrace) -> None:
        self._trace = trace
        self._position = 0
        self._state = STATE_X
        self._until_start: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def state(self) -> str:
        """Current automaton state (``"X"`` or ``"U"``)."""
        return self._state

    @property
    def position(self) -> int:
        """Index of FIFO slot ``f[0]`` inside the proposition trace."""
        return self._position

    def _fifo(self):
        """The FIFO contents ``(f[0], f[1])`` at the current position."""
        return (
            self._trace.at(self._position),
            self._trace.at(self._position + 1),
        )

    def _scroll(self) -> None:
        """Advance the FIFO one position forward on the trace."""
        self._position += 1

    # ------------------------------------------------------------------
    def get_assertion(self) -> Optional[MinedAssertion]:
        """Traverse the automaton until the next pattern is recognised.

        Returns ``None`` when the trace is exhausted (including when an
        incomplete pattern is pending at end of trace).
        """
        while True:
            f0, f1 = self._fifo()
            if f0 is None:
                return None
            if self._state == STATE_X:
                if f1 is None:
                    # A single trailing proposition cannot complete any
                    # pattern: the scan terminates on nil.
                    return None
                if f1 == f0:
                    self._state = STATE_U
                    self._until_start = self._position
                    self._scroll()
                    continue
                mined = MinedAssertion(
                    NextAssertion(f0, f1),
                    start=self._position,
                    stop=self._position,
                )
                self._scroll()
                return mined
            # state U: extending an until run
            if f1 is not None and f1 == f0:
                self._scroll()
                continue
            if f1 is None:
                # Trace ended inside an until run: incomplete, no state.
                return None
            mined = MinedAssertion(
                UntilAssertion(f0, f1),
                start=self._until_start,
                stop=self._position,
            )
            self._state = STATE_X
            self._until_start = None
            self._scroll()
            return mined

    def __iter__(self) -> Iterator[MinedAssertion]:
        while True:
            mined = self.get_assertion()
            if mined is None:
                return
            yield mined


def mine_patterns_rle(trace: PropositionTrace) -> List[MinedAssertion]:
    """All until/next patterns, derived from the trace's run lengths.

    The automaton's two recognitions map one-to-one onto the runs of the
    integer-coded trace: a run of length 1 followed by another run is the
    *next* pattern, a run of length >= 2 followed by another run is the
    *until* pattern, and the final run (the one *nil* terminates) emits
    nothing.  The whole scan therefore reduces to boundary arithmetic on
    :func:`~repro.core.propositions.run_length_encode` output; assertion
    objects are memoised per ``(body, exit)`` code pair, so a long trace
    cycling through few behaviours allocates each assertion once.

    Equivalent to :func:`mine_patterns` with ``engine="scan"`` — the
    retained oracle — assertion for assertion, interval for interval.
    """
    starts, lengths, codes = trace.rle()
    alphabet = trace.alphabet
    start_list = starts.tolist()
    length_list = lengths.tolist()
    code_list = codes.tolist()
    cache: Dict[Tuple[int, int, bool], TemporalAssertion] = {}
    mined: List[MinedAssertion] = []
    for k in range(len(start_list) - 1):
        body, follower = code_list[k], code_list[k + 1]
        is_next = length_list[k] == 1
        key = (body, follower, is_next)
        assertion = cache.get(key)
        if assertion is None:
            factory = NextAssertion if is_next else UntilAssertion
            assertion = cache[key] = factory(
                alphabet[body], alphabet[follower]
            )
        start = start_list[k]
        mined.append(
            MinedAssertion(
                assertion, start=start, stop=start + length_list[k] - 1
            )
        )
    return mined


class RunLengthStitcher:
    """Incremental run-length encoding across window boundaries.

    The streaming counterpart of
    :func:`~repro.core.propositions.run_length_encode`: windows of an
    index-coded trace arrive one at a time via :meth:`extend`, and a run
    that spans a window boundary is *stitched* — the window's leading run
    is folded into the pending trailing run of the previous window when
    their codes match — so :meth:`rle` over any prefix of windows equals
    a batch ``run_length_encode`` over the concatenation of those
    windows, run for run.

    This is the substrate of per-window XU pattern mining: the automaton
    recognises one until/next pattern per *closed* run
    (:func:`mine_patterns_rle`), and a run only closes once a window
    reveals a different follower code, so the pending trailing run is
    exactly the automaton's incomplete (*nil*-terminated) pattern at
    every window boundary.
    """

    def __init__(self) -> None:
        self._pieces: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self._offset = 0
        self._tail_start = 0
        self._tail_length = 0
        self._tail_value: Optional[object] = None

    def __len__(self) -> int:
        """Instants consumed so far."""
        return self._offset

    @property
    def runs(self) -> int:
        """Runs so far, counting the pending (still extendable) tail."""
        closed = sum(len(starts) for starts, _, _ in self._pieces)
        return closed + (1 if self._tail_value is not None else 0)

    def extend(self, values: np.ndarray) -> None:
        """Append one window of codes, stitching at the boundary."""
        values = np.asarray(values)
        if len(values) == 0:
            return
        starts, lengths, codes = run_length_encode(values)
        starts = starts + self._offset
        self._offset += len(values)
        first = 0
        if self._tail_value is not None and codes[0] == self._tail_value:
            # The window opens on the pending run's code: stitch.
            self._tail_length += int(lengths[0])
            first = 1
        if first >= len(codes):
            return
        if self._tail_value is not None:
            self._pieces.append(
                (
                    np.array([self._tail_start], dtype=np.int64),
                    np.array([self._tail_length], dtype=np.int64),
                    np.array([self._tail_value], dtype=codes.dtype),
                )
            )
        if len(codes) - first > 1:
            self._pieces.append(
                (starts[first:-1], lengths[first:-1], codes[first:-1])
            )
        self._tail_start = int(starts[-1])
        self._tail_length = int(lengths[-1])
        self._tail_value = codes[-1]

    def rle(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(starts, lengths, codes)`` over everything consumed so far.

        Includes the pending tail as the final run, so the result is
        identical to ``run_length_encode`` of the concatenated windows.
        """
        if self._tail_value is None:
            empty = np.zeros(0, dtype=np.int64)
            return empty, empty, np.zeros(0, dtype=np.int64)
        pieces = list(self._pieces)
        pieces.append(
            (
                np.array([self._tail_start], dtype=np.int64),
                np.array([self._tail_length], dtype=np.int64),
                np.array([self._tail_value]),
            )
        )
        starts = np.concatenate([p[0] for p in pieces])
        lengths = np.concatenate([p[1] for p in pieces])
        codes = np.concatenate([p[2] for p in pieces])
        return starts, lengths, codes

    def indices(self, dtype=np.int32) -> np.ndarray:
        """The consumed trace expanded back to one code per instant."""
        _, lengths, codes = self.rle()
        if len(codes) == 0:
            return np.zeros(0, dtype=dtype)
        return np.repeat(codes.astype(dtype), lengths)


def mine_patterns(
    trace: PropositionTrace, engine: str = "rle"
) -> List[MinedAssertion]:
    """All until/next patterns of a proposition trace, in order.

    ``engine="rle"`` (the default) derives the patterns from the
    run-length-encoded trace; ``engine="scan"`` replays the per-instant
    two-slot automaton — kept as the equivalence oracle the fast path is
    tested against.
    """
    if engine == "rle":
        return mine_patterns_rle(trace)
    if engine == "scan":
        return list(XUAutomaton(trace))
    raise ValueError(f"unknown engine {engine!r}; use 'rle' or 'scan'")
