"""Model-coverage diagnostics for fitted PSM sets.

The paper warns that the quality of the training traces bounds the
quality of the PSMs ("if the functional traces were unable to cover all
the functional behaviours of the IP, the PSMs would be incomplete").
This module gives that warning teeth: replay any trace through a fitted
model and report *which* states and transitions it exercised, how much
of the trace fell outside the model, and which propositions of the
universe were never observed — the diagnostics a user needs before
trusting a PSM for sign-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..traces.functional import FunctionalTrace
from .pipeline import PsmFlow
from .psm import PSM
from .simulation import EstimationResult


@dataclass
class CoverageReport:
    """What a replayed trace exercised in the model."""

    total_instants: int
    visited_states: Set[int]
    unvisited_states: Set[int]
    taken_transitions: Set[Tuple[int, int]]
    untaken_transitions: Set[Tuple[int, int]]
    state_occupancy: Dict[int, int]
    unknown_instants: int
    desync_instants: int
    unseen_propositions: List[str]

    @property
    def state_coverage(self) -> float:
        """Fraction of model states the trace visited."""
        total = len(self.visited_states) + len(self.unvisited_states)
        return len(self.visited_states) / total if total else 1.0

    @property
    def transition_coverage(self) -> float:
        """Fraction of model transitions the trace took."""
        total = len(self.taken_transitions) + len(self.untaken_transitions)
        return len(self.taken_transitions) / total if total else 1.0

    @property
    def trace_coverage(self) -> float:
        """Fraction of trace instants the model explained."""
        if not self.total_instants:
            return 1.0
        return 1.0 - self.desync_instants / self.total_instants

    def summary(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"trace instants      : {self.total_instants}",
            f"explained by model  : {100 * self.trace_coverage:.1f}%"
            f" ({self.desync_instants} desynchronised,"
            f" {self.unknown_instants} unknown behaviours)",
            f"state coverage      : {100 * self.state_coverage:.1f}%"
            f" ({len(self.visited_states)}/"
            f"{len(self.visited_states) + len(self.unvisited_states)})",
            f"transition coverage : {100 * self.transition_coverage:.1f}%"
            f" ({len(self.taken_transitions)}/"
            f"{len(self.taken_transitions) + len(self.untaken_transitions)})",
        ]
        if self.unvisited_states:
            lines.append(
                "states never visited: "
                + ", ".join(f"s{s}" for s in sorted(self.unvisited_states))
            )
        if self.unseen_propositions:
            lines.append(
                "propositions never observed: "
                + ", ".join(self.unseen_propositions)
            )
        return "\n".join(lines)


def coverage_report(
    flow: PsmFlow,
    trace: FunctionalTrace,
    result: Optional[EstimationResult] = None,
) -> CoverageReport:
    """Replay ``trace`` through ``flow`` and measure what it exercised."""
    if not flow.fitted:
        raise RuntimeError("the flow must be fitted first")
    if result is None:
        result = flow.estimate(trace)
    all_states: Set[int] = set()
    all_transitions: Set[Tuple[int, int]] = set()
    for psm in flow.psms:
        all_states.update(psm.state_ids)
        for transition in psm.transitions:
            all_transitions.add((transition.src, transition.dst))

    occupancy: Dict[int, int] = {}
    taken: Set[Tuple[int, int]] = set()
    previous: Optional[int] = None
    for sid in result.state_sequence:
        if sid is not None:
            occupancy[sid] = occupancy.get(sid, 0) + 1
            if previous is not None and previous != sid:
                if (previous, sid) in all_transitions:
                    taken.add((previous, sid))
        previous = sid

    labeler = flow.mining.labeler
    observed = {prop for prop in labeler.label(trace) if prop is not None}
    unseen = [
        prop.label
        for prop in labeler.propositions
        if prop not in observed
    ]
    visited = set(occupancy)
    return CoverageReport(
        total_instants=len(trace),
        visited_states=visited,
        unvisited_states=all_states - visited,
        taken_transitions=taken,
        untaken_transitions=all_transitions - taken,
        state_occupancy=occupancy,
        unknown_instants=result.unknown_instants,
        desync_instants=result.desync_instants,
        unseen_propositions=sorted(unseen),
    )
