"""Export of PSM sets: DOT graphs, JSON round-trip, SystemC code.

The paper's tool emits a SystemC model of the extracted PSMs so they can
be co-simulated with the IP's functional model; :func:`to_systemc`
reproduces that artefact as generated C++ source text.  DOT export feeds
graph viewers; JSON export/import gives a durable on-disk format.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from ..traces.variables import VariableSpec
from .attributes import Interval, PowerAttributes
from .propositions import (
    AtomicProposition,
    Proposition,
    VarCompare,
    VarEqualsConst,
)
from .psm import (
    PSM,
    ConstantPower,
    PowerState,
    RegressionPower,
    Transition,
)
from .temporal import (
    ChoiceAssertion,
    NextAssertion,
    SequenceAssertion,
    TemporalAssertion,
    UntilAssertion,
)

PathLike = Union[str, Path]

#: Identifier of the bundle layout written by :func:`psms_to_json`
#: (bump on breaking changes; readers reject other versions).
BUNDLE_SCHEMA = "psmgen-psms/v1"


class ExportSchemaError(ValueError):
    """A PSM bundle is malformed or uses an unsupported schema version.

    Raised instead of raw ``KeyError``/``TypeError`` so consumers (the
    serving registry in particular) can quarantine a bad bundle instead
    of crashing.  ``found`` and ``expected`` carry the offending vs
    supported schema identifier (or a structural description when the
    problem is not the version marker).
    """

    def __init__(self, message: str, found: object = None,
                 expected: object = BUNDLE_SCHEMA) -> None:
        super().__init__(
            f"{message} (found: {found!r}, expected: {expected!r})"
        )
        self.found = found
        self.expected = expected


# ----------------------------------------------------------------------
# DOT
# ----------------------------------------------------------------------
def to_dot(psms: Sequence[PSM], title: str = "psms") -> str:
    """Graphviz DOT rendering of a PSM set (one cluster per PSM)."""
    lines = [f"digraph {_dot_id(title)} {{", "  rankdir=LR;"]
    for index, psm in enumerate(psms):
        lines.append(f"  subgraph cluster_{index} {{")
        lines.append(f'    label="{psm.name}";')
        initials = {s.sid for s in psm.initial_states}
        for state in psm.states:
            shape = "doublecircle" if state.sid in initials else "circle"
            label = (
                f"s{state.sid}\\n{state.assertion}\\n"
                f"mu={state.mu:.3g} sigma={state.sigma:.3g} n={state.n}"
            )
            lines.append(
                f'    s{state.sid} [shape={shape}, label="{label}"];'
            )
        for transition in psm.transitions:
            lines.append(
                f"    s{transition.src} -> s{transition.dst} "
                f'[label="{transition.enabling}"];'
            )
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def _dot_id(name: str) -> str:
    return "".join(c if c.isalnum() else "_" for c in name)


# ----------------------------------------------------------------------
# JSON
# ----------------------------------------------------------------------
def _atom_to_json(atom: AtomicProposition) -> dict:
    if isinstance(atom, VarEqualsConst):
        return {
            "type": "eq_const",
            "var": atom.var,
            "value": atom.value,
            "is_bool": atom.is_bool,
        }
    if isinstance(atom, VarCompare):
        return {
            "type": "compare",
            "left": atom.left,
            "op": atom.op,
            "right": atom.right,
        }
    raise TypeError(f"unknown atom type {type(atom).__name__}")


def _atom_from_json(data: dict) -> AtomicProposition:
    if data["type"] == "eq_const":
        return VarEqualsConst(data["var"], data["value"], data["is_bool"])
    if data["type"] == "compare":
        return VarCompare(data["left"], data["op"], data["right"])
    raise ValueError(f"unknown atom type {data['type']!r}")


def _proposition_to_json(prop: Proposition) -> dict:
    return {
        "label": prop.label,
        "positives": [_atom_to_json(a) for a in sorted(prop.positives, key=str)],
        "negatives": [_atom_to_json(a) for a in sorted(prop.negatives, key=str)],
    }


def _proposition_from_json(data: dict) -> Proposition:
    return Proposition(
        data["label"],
        [_atom_from_json(a) for a in data["positives"]],
        [_atom_from_json(a) for a in data["negatives"]],
    )


def _assertion_to_json(
    assertion: TemporalAssertion, prop_ids: Dict[Proposition, int]
) -> dict:
    if isinstance(assertion, UntilAssertion):
        return {
            "kind": "until",
            "left": prop_ids[assertion.left],
            "right": prop_ids[assertion.right],
        }
    if isinstance(assertion, NextAssertion):
        return {
            "kind": "next",
            "left": prop_ids[assertion.left],
            "right": prop_ids[assertion.right],
        }
    if isinstance(assertion, SequenceAssertion):
        return {
            "kind": "sequence",
            "parts": [_assertion_to_json(p, prop_ids) for p in assertion.parts],
        }
    if isinstance(assertion, ChoiceAssertion):
        return {
            "kind": "choice",
            "parts": [_assertion_to_json(p, prop_ids) for p in assertion.parts],
        }
    raise TypeError(f"unknown assertion type {type(assertion).__name__}")


def _assertion_from_json(
    data: dict, props: List[Proposition]
) -> TemporalAssertion:
    kind = data["kind"]
    if kind == "until":
        return UntilAssertion(props[data["left"]], props[data["right"]])
    if kind == "next":
        return NextAssertion(props[data["left"]], props[data["right"]])
    if kind == "sequence":
        return SequenceAssertion(
            [_assertion_from_json(p, props) for p in data["parts"]]
        )
    if kind == "choice":
        return ChoiceAssertion(
            [_assertion_from_json(p, props) for p in data["parts"]]
        )
    raise ValueError(f"unknown assertion kind {kind!r}")


def _power_model_to_json(state: PowerState) -> dict:
    model = state.power_model
    if isinstance(model, RegressionPower):
        return {
            "type": "regression",
            "slope": model.slope,
            "intercept": model.intercept,
            "correlation": model.correlation,
        }
    if isinstance(model, ConstantPower):
        return {"type": "constant", "value": model.value}
    raise TypeError(f"unknown power model {type(model).__name__}")


def _power_model_from_json(data: dict):
    if data["type"] == "constant":
        return ConstantPower(data["value"])
    if data["type"] == "regression":
        return RegressionPower(
            data["slope"], data["intercept"], data["correlation"]
        )
    raise ValueError(f"unknown power model {data['type']!r}")


def psms_to_json(
    psms: Sequence[PSM],
    stage_reports: Sequence = (),
    variables: Sequence[VariableSpec] = (),
    accuracy: Optional[Mapping] = None,
) -> dict:
    """Serialise a PSM set into a JSON-compatible dictionary.

    When ``stage_reports`` is given (the
    :class:`~repro.core.stages.StageReport` list of the generating flow)
    the per-stage wall times and counters are embedded alongside the
    model under ``"stage_reports"``, so an exported model records how
    long each phase of its generation took.  When ``variables`` is given
    (the :class:`~repro.traces.variables.VariableSpec` list of the
    training traces) the PI/PO declarations are embedded under
    ``"variables"``, which lets the serving layer rebuild a functional
    trace from raw value vectors without a sidecar file.  When
    ``accuracy`` is given (the metadata of a ``psmgen refine`` run —
    MRE before/after, iteration and counterexample counts) it is
    embedded under ``"accuracy"`` so a refined bundle documents its own
    trajectory; readers unaware of the key ignore it.
    """
    propositions: List[Proposition] = []
    prop_ids: Dict[Proposition, int] = {}
    for psm in psms:
        for state in psm.states:
            for prop in state.assertion.propositions():
                if prop not in prop_ids:
                    prop_ids[prop] = len(propositions)
                    propositions.append(prop)
        for transition in psm.transitions:
            if transition.enabling not in prop_ids:
                prop_ids[transition.enabling] = len(propositions)
                propositions.append(transition.enabling)
    payload = {
        "schema": BUNDLE_SCHEMA,
        "propositions": [_proposition_to_json(p) for p in propositions],
        "psms": [],
    }
    if variables:
        payload["variables"] = [
            {
                "name": v.name,
                "width": v.width,
                "direction": v.direction,
                "kind": v.kind,
            }
            for v in variables
        ]
    for psm in psms:
        initials = [s.sid for s in psm.initial_states]
        payload["psms"].append(
            {
                "name": psm.name,
                "initial": initials,
                "states": [
                    {
                        "sid": state.sid,
                        "assertion": _assertion_to_json(
                            state.assertion, prop_ids
                        ),
                        "mu": state.mu,
                        "sigma": state.sigma,
                        "n": state.n,
                        "intervals": [
                            [iv.trace_id, iv.start, iv.stop]
                            for iv in state.intervals
                        ],
                        "power_model": _power_model_to_json(state),
                    }
                    for state in psm.states
                ],
                "transitions": [
                    {
                        "src": t.src,
                        "dst": t.dst,
                        "enabling": prop_ids[t.enabling],
                    }
                    for t in psm.transitions
                ],
            }
        )
    if stage_reports:
        payload["stage_reports"] = [r.to_json() for r in stage_reports]
    if accuracy:
        payload["accuracy"] = dict(accuracy)
    return payload


def _validate_bundle(payload: object) -> dict:
    """Structural/version checks shared by every bundle reader.

    Returns the payload when it looks like a supported bundle; raises
    :class:`ExportSchemaError` otherwise.  Bundles written before the
    schema marker existed (no ``"schema"`` key) are accepted as v1.
    """
    if not isinstance(payload, dict):
        raise ExportSchemaError(
            "bundle is not a JSON object", found=type(payload).__name__
        )
    schema = payload.get("schema", BUNDLE_SCHEMA)
    if schema != BUNDLE_SCHEMA:
        raise ExportSchemaError(
            "unsupported bundle schema version", found=schema
        )
    for key, kind in (("propositions", list), ("psms", list)):
        if not isinstance(payload.get(key), kind):
            raise ExportSchemaError(
                f"bundle is missing the {key!r} list",
                found=type(payload.get(key)).__name__,
                expected=kind.__name__,
            )
    return payload


def psms_from_json(payload: dict) -> List[PSM]:
    """Rebuild a PSM set from :func:`psms_to_json` output.

    Raises
    ------
    ExportSchemaError
        When the payload is structurally malformed or declares a schema
        version this reader does not understand.
    """
    _validate_bundle(payload)
    try:
        return _psms_from_json_unchecked(payload)
    except ExportSchemaError:
        raise
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise ExportSchemaError(
            f"malformed bundle: {exc!r}",
            found=type(exc).__name__,
            expected="a well-formed psm/proposition structure",
        ) from exc


def _psms_from_json_unchecked(payload: dict) -> List[PSM]:
    props = [_proposition_from_json(p) for p in payload["propositions"]]
    psms: List[PSM] = []
    for psm_data in payload["psms"]:
        psm = PSM(name=psm_data["name"])
        initials = set(psm_data["initial"])
        for state_data in psm_data["states"]:
            state = PowerState(
                assertion=_assertion_from_json(
                    state_data["assertion"], props
                ),
                attributes=PowerAttributes(
                    mu=state_data["mu"],
                    sigma=state_data["sigma"],
                    n=state_data["n"],
                ),
                intervals=[
                    Interval(tid, start, stop)
                    for tid, start, stop in state_data["intervals"]
                ],
                sid=state_data["sid"],
                power_model=_power_model_from_json(
                    state_data["power_model"]
                ),
            )
            psm.add_state(state, initial=state.sid in initials)
        for t_data in psm_data["transitions"]:
            psm.add_transition(
                Transition(
                    t_data["src"], t_data["dst"], props[t_data["enabling"]]
                )
            )
        psms.append(psm)
    return psms


def save_psms(
    psms: Sequence[PSM],
    path: PathLike,
    stage_reports: Sequence = (),
    variables: Sequence[VariableSpec] = (),
    accuracy: Optional[Mapping] = None,
) -> None:
    """Write a PSM set to a JSON file.

    ``stage_reports`` (optional) embeds the generating flow's per-stage
    timings in the file; :func:`load_psms` ignores them, and
    :func:`load_stage_reports` reads them back.  ``variables``
    (optional) embeds the PI/PO declarations of the training traces so
    the serving layer can accept raw value vectors.  ``accuracy``
    (optional) embeds the refinement trajectory metadata — see
    :func:`psms_to_json`.
    """
    Path(path).write_text(
        json.dumps(
            psms_to_json(psms, stage_reports, variables, accuracy),
            indent=2,
        )
    )


def publish_psms(
    psms: Sequence[PSM],
    path: PathLike,
    stage_reports: Sequence = (),
    variables: Sequence[VariableSpec] = (),
    accuracy: Optional[Mapping] = None,
) -> str:
    """Atomically replace a bundle file; returns the new content digest.

    The streaming refresh publisher: the payload is written to a
    temporary sibling and moved into place with ``os.replace``, so a
    registry watching ``path`` only ever observes complete bundle
    versions — its ``(mtime, size)`` hot-reload signature flips exactly
    once per publish.  The bytes are identical to :func:`save_psms`
    output, so the returned digest matches :func:`load_bundle` on either
    writer's file.
    """
    path = Path(path)
    payload = json.dumps(
        psms_to_json(psms, stage_reports, variables, accuracy), indent=2
    ).encode("utf-8")
    tmp = path.with_name(f".{path.name}.tmp{os.getpid()}")
    tmp.write_bytes(payload)
    os.replace(tmp, path)
    return bundle_digest(payload)


def _read_bundle_payload(path: PathLike) -> dict:
    """Parse a bundle file into its raw JSON payload (validated)."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ExportSchemaError(
            f"bundle {path} is not valid JSON: {exc}",
            found="invalid JSON",
            expected="a JSON object",
        ) from exc
    return _validate_bundle(payload)


def load_psms(path: PathLike) -> List[PSM]:
    """Read a PSM set from a JSON file.

    Raises :class:`ExportSchemaError` on malformed or future-version
    bundles (never a raw ``KeyError``/``TypeError``), so callers can
    quarantine a bad file and keep serving the good ones.
    """
    return psms_from_json(_read_bundle_payload(path))


@dataclass
class Bundle:
    """A fully-loaded PSM bundle plus its serving metadata.

    ``digest`` is a short content hash of the file bytes — the version
    identifier the model registry and ``psmgen describe`` both report,
    so operators can check that an inspected file is exactly what the
    server is running.
    """

    path: Path
    psms: List[PSM]
    schema: str
    digest: str
    variables: List[VariableSpec] = field(default_factory=list)
    stage_reports: list = field(default_factory=list)
    accuracy: Optional[dict] = None


def bundle_digest(data: bytes) -> str:
    """Short content hash identifying one bundle version."""
    return hashlib.sha256(data).hexdigest()[:12]


def load_bundle(path: PathLike) -> Bundle:
    """Read a bundle file with all its embedded metadata.

    The one-stop loader for the serving registry: PSMs, optional
    variable declarations, optional stage reports, schema identifier and
    the content digest — validated up front via the same
    :class:`ExportSchemaError` contract as :func:`load_psms`.
    """
    from .stages.base import stage_reports_from_json

    raw = Path(path).read_bytes()
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ExportSchemaError(
            f"bundle {path} is not valid JSON: {exc}",
            found="invalid JSON",
            expected="a JSON object",
        ) from exc
    _validate_bundle(payload)
    psms = psms_from_json(payload)
    try:
        variables = [
            VariableSpec(**spec) for spec in payload.get("variables", ())
        ]
        reports = stage_reports_from_json(payload.get("stage_reports", ()))
    except (KeyError, TypeError, ValueError) as exc:
        raise ExportSchemaError(
            f"malformed bundle metadata: {exc!r}",
            found=type(exc).__name__,
            expected="well-formed variables/stage_reports",
        ) from exc
    accuracy = payload.get("accuracy")
    if accuracy is not None and not isinstance(accuracy, dict):
        raise ExportSchemaError(
            "malformed bundle metadata: accuracy must be an object",
            found=type(accuracy).__name__,
            expected="dict",
        )
    return Bundle(
        path=Path(path),
        psms=psms,
        schema=payload.get("schema", BUNDLE_SCHEMA),
        digest=bundle_digest(raw),
        variables=variables,
        stage_reports=reports,
        accuracy=accuracy,
    )


def load_stage_reports(path: PathLike) -> list:
    """Read the per-stage timing reports embedded in a saved model.

    Returns an empty list when the model predates the staged pipeline or
    was saved without reports.
    """
    from .stages.base import stage_reports_from_json

    payload = json.loads(Path(path).read_text())
    return stage_reports_from_json(payload.get("stage_reports", ()))


def labeler_from_psms(psms: Sequence[PSM]):
    """Rebuild a :class:`~repro.core.mining.PropositionLabeler` from PSMs.

    A PSM set serialised to JSON carries its propositions as full
    minterms (positive and negative atoms), which is enough to
    reconstruct the atom alphabet and the row-to-proposition universe the
    simulators need — so a saved model can be reloaded and simulated
    without the original training traces.
    """
    from .mining import PropositionLabeler

    propositions: List[Proposition] = []
    for psm in psms:
        for state in psm.states:
            for prop in state.assertion.propositions():
                if prop not in propositions:
                    propositions.append(prop)
        for transition in psm.transitions:
            if transition.enabling not in propositions:
                propositions.append(transition.enabling)
    atoms: List = []
    for prop in propositions:
        for atom in sorted(prop.positives | prop.negatives, key=str):
            if atom not in atoms:
                atoms.append(atom)
    import numpy as np

    universe = {}
    for prop in propositions:
        row = np.array(
            [atom in prop.positives for atom in atoms], dtype=bool
        )
        universe[row.tobytes()] = prop
    return PropositionLabeler(atoms, universe)


# ----------------------------------------------------------------------
# SystemC code generation
# ----------------------------------------------------------------------
def _atom_to_cpp(atom: AtomicProposition) -> str:
    if isinstance(atom, VarEqualsConst):
        return f"({atom.var}.read() == {atom.value})"
    if isinstance(atom, VarCompare):
        return f"({atom.left}.read() {atom.op} {atom.right}.read())"
    raise TypeError(f"unknown atom type {type(atom).__name__}")


def _proposition_to_cpp(prop: Proposition) -> str:
    positives = [_atom_to_cpp(a) for a in sorted(prop.positives, key=str)]
    negatives = [f"!{_atom_to_cpp(a)}" for a in sorted(prop.negatives, key=str)]
    terms = positives + negatives
    return " && ".join(terms) if terms else "true"


def to_systemc(
    psms: Sequence[PSM],
    module_name: str = "psm_power_monitor",
    variables: Sequence[str] = (),
) -> str:
    """Generate the SystemC monitor module for a PSM set.

    The generated module mirrors the paper's implementation: one clocked
    process evaluates the mined propositions on the IP's PIs/POs each
    cycle, walks the PSM states and drives a ``power`` output with the
    active state's consumption (constant or regression-based).
    """
    propositions: List[Proposition] = []
    for psm in psms:
        for state in psm.states:
            for prop in state.assertion.propositions():
                if prop not in propositions:
                    propositions.append(prop)
    if not variables:
        names: List[str] = []
        for prop in propositions:
            for atom in sorted(prop.positives | prop.negatives, key=str):
                for var in atom.variables():
                    if var not in names:
                        names.append(var)
        variables = names

    lines: List[str] = []
    emit = lines.append
    emit("// Auto-generated PSM power monitor (SystemC).")
    emit("// Generated by the repro PSM flow; do not edit by hand.")
    emit("#include <systemc.h>")
    emit("")
    emit(f"SC_MODULE({module_name}) {{")
    emit("  sc_in<bool> clk;")
    for var in variables:
        emit(f"  sc_in<sc_uint<64> > {var};")
    emit("  sc_out<double> power;")
    emit("")
    emit("  // Mined propositions (minterms over PIs and POs).")
    for index, prop in enumerate(propositions):
        emit(f"  bool prop_{index}() const {{  // {prop.label}: {prop.formula()}")
        emit(f"    return {_proposition_to_cpp(prop)};")
        emit("  }")
    emit("")
    emit("  int state;")
    emit("  void step() {")
    emit("    switch (state) {")
    prop_index = {prop: i for i, prop in enumerate(propositions)}
    for psm in psms:
        for state in psm.states:
            emit(f"      case {state.sid}: {{  // {state.assertion}")
            if isinstance(state.power_model, RegressionPower):
                model = state.power_model
                emit(
                    f"        power.write({model.intercept!r} + "
                    f"{model.slope!r} * hamming_distance());"
                )
            else:
                emit(f"        power.write({state.mu!r});")
            for transition in psm.successors(state.sid):
                cond = f"prop_{prop_index[transition.enabling]}()"
                emit(f"        if ({cond}) {{ state = {transition.dst}; }}")
            emit("        break;")
            emit("      }")
    emit("      default: break;")
    emit("    }")
    emit("  }")
    emit("")
    emit("  double hamming_distance();  // HD of consecutive input values")
    emit("")
    emit(f"  SC_CTOR({module_name}) : state({_first_initial(psms)}) {{")
    emit("    SC_METHOD(step);")
    emit("    sensitive << clk.pos();")
    emit("  }")
    emit("};")
    return "\n".join(lines) + "\n"


def _first_initial(psms: Sequence[PSM]) -> int:
    for psm in psms:
        if psm.initial_states:
            return psm.initial_states[0].sid
    return -1
