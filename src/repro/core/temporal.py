"""Temporal assertions over propositions (paper Sec. III).

The methodology mines assertions built from the LTL operators **next** and
**until**:

* the *next* pattern ``p X q`` — ``(state = p) -> next (state = q)``;
* the *until* pattern ``p U q`` — ``(state = p) until (state = q)``.

The optimisation procedures introduce two composite forms:

* :class:`SequenceAssertion` ``{a1; a2; ...}`` (from ``simplify``): the
  member assertions are satisfied one after the other in cascade;
* :class:`ChoiceAssertion` ``{a1 || a2 || ...}`` (from ``join``): exactly
  one of the member assertions is satisfied each time the state is entered.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from .propositions import Proposition, PropositionTrace


class TemporalAssertion:
    """Base class for the assertions characterising PSM states."""

    def propositions(self) -> Tuple[Proposition, ...]:
        """All propositions mentioned by the assertion."""
        raise NotImplementedError

    def first_proposition(self) -> Proposition:
        """The proposition expected when the assertion starts holding."""
        raise NotImplementedError

    def exit_proposition(self) -> Proposition:
        """The proposition whose activation terminates the assertion."""
        raise NotImplementedError

    def match(self, trace: PropositionTrace, start: int) -> Optional[int]:
        """Check the assertion against ``trace`` starting at ``start``.

        Returns the last instant (inclusive) where the assertion's *body*
        holds — i.e. the instant after which the exit proposition is
        observed — or ``None`` when the assertion is violated.
        """
        raise NotImplementedError


class UntilAssertion(TemporalAssertion):
    """``left U right``: ``left`` holds until ``right`` becomes true."""

    __slots__ = ("left", "right")

    def __init__(self, left: Proposition, right: Proposition) -> None:
        self.left = left
        self.right = right

    def propositions(self) -> Tuple[Proposition, ...]:
        return (self.left, self.right)

    def first_proposition(self) -> Proposition:
        return self.left

    def exit_proposition(self) -> Proposition:
        return self.right

    def match(self, trace: PropositionTrace, start: int) -> Optional[int]:
        if trace.at(start) != self.left:
            return None
        instant = start
        while trace.at(instant + 1) == self.left:
            instant += 1
        if trace.at(instant + 1) == self.right:
            return instant
        return None

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, UntilAssertion)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("U", self.left, self.right))

    def __str__(self) -> str:
        return f"{self.left} U {self.right}"

    def __repr__(self) -> str:
        return f"UntilAssertion({self.left!r}, {self.right!r})"


class NextAssertion(TemporalAssertion):
    """``left X right``: after ``left``, at the next instant, ``right``."""

    __slots__ = ("left", "right")

    def __init__(self, left: Proposition, right: Proposition) -> None:
        self.left = left
        self.right = right

    def propositions(self) -> Tuple[Proposition, ...]:
        return (self.left, self.right)

    def first_proposition(self) -> Proposition:
        return self.left

    def exit_proposition(self) -> Proposition:
        return self.right

    def match(self, trace: PropositionTrace, start: int) -> Optional[int]:
        if trace.at(start) != self.left:
            return None
        if trace.at(start + 1) == self.right:
            return start
        return None

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, NextAssertion)
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("X", self.left, self.right))

    def __str__(self) -> str:
        return f"{self.left} X {self.right}"

    def __repr__(self) -> str:
        return f"NextAssertion({self.left!r}, {self.right!r})"


class SequenceAssertion(TemporalAssertion):
    """``{a1; a2; ...}``: member assertions satisfied in cascade.

    Produced by ``simplify`` when adjacent mergeable states are collapsed
    into a single power state (paper Sec. IV).
    """

    __slots__ = ("parts",)

    def __init__(self, parts: Sequence[TemporalAssertion]) -> None:
        flattened: List[TemporalAssertion] = []
        for part in parts:
            if isinstance(part, SequenceAssertion):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        if len(flattened) < 2:
            raise ValueError("a sequence assertion needs at least two parts")
        if any(isinstance(p, ChoiceAssertion) for p in flattened):
            raise ValueError("sequence parts must be simple assertions")
        self.parts: Tuple[TemporalAssertion, ...] = tuple(flattened)

    def propositions(self) -> Tuple[Proposition, ...]:
        props: List[Proposition] = []
        for part in self.parts:
            for prop in part.propositions():
                if prop not in props:
                    props.append(prop)
        return tuple(props)

    def first_proposition(self) -> Proposition:
        return self.parts[0].first_proposition()

    def exit_proposition(self) -> Proposition:
        return self.parts[-1].exit_proposition()

    def match(self, trace: PropositionTrace, start: int) -> Optional[int]:
        instant = start
        for part in self.parts:
            stop = part.match(trace, instant)
            if stop is None:
                return None
            instant = stop + 1
        return instant - 1

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SequenceAssertion) and self.parts == other.parts
        )

    def __hash__(self) -> int:
        return hash(("SEQ", self.parts))

    def __str__(self) -> str:
        return "{" + "; ".join(str(p) for p in self.parts) + "}"

    def __repr__(self) -> str:
        return f"SequenceAssertion({list(self.parts)!r})"


class ChoiceAssertion(TemporalAssertion):
    """``{a1 || a2 || ...}``: one member is satisfied per state entry.

    Produced by ``join`` when non-adjacent mergeable states are collapsed
    (paper Sec. IV).  Members may repeat: multiplicities feed the HMM's
    observation matrix ``B`` (Sec. V).
    """

    __slots__ = ("parts", "_alternatives")

    def __init__(self, parts: Sequence[TemporalAssertion]) -> None:
        flattened: List[TemporalAssertion] = []
        for part in parts:
            if isinstance(part, ChoiceAssertion):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        if len(flattened) < 2:
            raise ValueError("a choice assertion needs at least two parts")
        self.parts: Tuple[TemporalAssertion, ...] = tuple(flattened)
        self._alternatives: Optional[Tuple[TemporalAssertion, ...]] = None

    def alternatives(self) -> Tuple[TemporalAssertion, ...]:
        """Distinct member assertions, preserving first-seen order.

        Memoised: simulators rebuild state trackers every entry and the
        dedup is quadratic in the (immutable) member list.
        """
        if self._alternatives is None:
            seen: List[TemporalAssertion] = []
            for part in self.parts:
                if part not in seen:
                    seen.append(part)
            self._alternatives = tuple(seen)
        return self._alternatives

    def multiplicity(self, assertion: TemporalAssertion) -> int:
        """How many merged states carried ``assertion``."""
        return sum(1 for part in self.parts if part == assertion)

    def propositions(self) -> Tuple[Proposition, ...]:
        props: List[Proposition] = []
        for part in self.parts:
            for prop in part.propositions():
                if prop not in props:
                    props.append(prop)
        return tuple(props)

    def first_proposition(self) -> Proposition:
        raise ValueError("a choice assertion has no unique first proposition")

    def exit_proposition(self) -> Proposition:
        raise ValueError("a choice assertion has no unique exit proposition")

    def match(self, trace: PropositionTrace, start: int) -> Optional[int]:
        for part in self.alternatives():
            stop = part.match(trace, start)
            if stop is not None:
                return stop
        return None

    def matching_alternative(
        self, trace: PropositionTrace, start: int
    ) -> Optional[TemporalAssertion]:
        """The member assertion satisfied at ``start``, if any."""
        for part in self.alternatives():
            if part.match(trace, start) is not None:
                return part
        return None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ChoiceAssertion) and sorted(
            map(str, self.parts)
        ) == sorted(map(str, other.parts))

    def __hash__(self) -> int:
        return hash(("CHOICE", tuple(sorted(map(str, self.parts)))))

    def __str__(self) -> str:
        return "{" + " || ".join(str(p) for p in self.parts) + "}"

    def __repr__(self) -> str:
        return f"ChoiceAssertion({list(self.parts)!r})"


def base_assertions(assertion: TemporalAssertion) -> Tuple[TemporalAssertion, ...]:
    """The observable assertion symbols carried by a state's assertion.

    A plain or sequence assertion observes itself; a choice assertion
    observes each of its member assertions (with multiplicity).
    """
    if isinstance(assertion, ChoiceAssertion):
        return tuple(assertion.parts)
    return (assertion,)
