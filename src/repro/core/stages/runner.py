"""Ordered execution of a stage list with per-stage instrumentation.

The runner is deliberately dumb: it validates the stage sequence's
artifact dependencies, times each stage into a
:class:`~repro.core.stages.base.StageReport`, persists checkpoints when a
checkpoint directory is configured, and — when asked to ``skip_to`` a
stage — restores every earlier stage from its checkpoint instead of
re-running it.  All flow semantics live in the stages themselves.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from .base import (
    CheckpointError,
    MissingArtifactError,
    PipelineContext,
    PipelineError,
    Stage,
    StageReport,
)


class PipelineRunner:
    """Executes an ordered list of stages over a shared artifact store."""

    def __init__(self, stages: Sequence[Stage]) -> None:
        names = [stage.name for stage in stages]
        if len(set(names)) != len(names):
            raise PipelineError(f"duplicate stage names in {names}")
        if not stages:
            raise PipelineError("a pipeline needs at least one stage")
        self.stages: List[Stage] = list(stages)

    @property
    def stage_names(self) -> List[str]:
        """The names of the configured stages, in execution order."""
        return [stage.name for stage in self.stages]

    def run(
        self,
        ctx: PipelineContext,
        skip_to: Optional[str] = None,
    ) -> List[StageReport]:
        """Execute (or resume) the pipeline; returns one report per stage.

        When ``skip_to`` names a stage, every stage *before* it is
        restored from its checkpoint in ``ctx.checkpoint_dir`` (raising
        :class:`CheckpointError` when a checkpoint is missing) and only
        the stages from ``skip_to`` onward execute.  When
        ``ctx.checkpoint_dir`` is set, each executed stage persists its
        checkpoint right after running.
        """
        first_live = 0
        if skip_to is not None:
            names = self.stage_names
            if skip_to not in names:
                raise PipelineError(
                    f"cannot skip to unknown stage {skip_to!r}; "
                    f"pipeline stages: {names}"
                )
            if ctx.checkpoint_dir is None:
                raise CheckpointError(
                    "skip_to requires a checkpoint directory"
                )
            first_live = names.index(skip_to)

        reports: List[StageReport] = []
        for index, stage in enumerate(self.stages):
            self._check_requirements(ctx, stage)
            start = time.perf_counter()
            if index < first_live:
                counters = stage.load_checkpoint(ctx)
                if counters is None:
                    raise CheckpointError(
                        f"stage {stage.name!r} does not support "
                        f"checkpoint resume"
                    )
                status = "resumed"
            else:
                counters = stage.run(ctx)
                if ctx.checkpoint_dir is not None:
                    stage.save_checkpoint(ctx)
                status = "executed"
            reports.append(
                StageReport(
                    name=stage.name,
                    wall_time=time.perf_counter() - start,
                    status=status,
                    counters=counters or {},
                )
            )
            self._check_provides(ctx, stage)
        return reports

    @staticmethod
    def _check_requirements(ctx: PipelineContext, stage: Stage) -> None:
        """Fail fast when a declared input artifact is absent."""
        missing = [key for key in stage.requires if not ctx.store.has(key)]
        if missing:
            raise MissingArtifactError(
                f"stage {stage.name!r} requires artifact(s) {missing} "
                f"not present in the store (available: {ctx.store.keys()})"
            )

    @staticmethod
    def _check_provides(ctx: PipelineContext, stage: Stage) -> None:
        """Fail fast when a stage forgot to publish a declared output."""
        absent = [key for key in stage.provides if not ctx.store.has(key)]
        if absent:
            raise PipelineError(
                f"stage {stage.name!r} declared but did not publish "
                f"artifact(s) {absent}"
            )
