"""Staged pipeline subsystem of the PSM flow (paper Fig. 1).

The flow's five conceptual phases — assertion mining, PSM generation,
``simplify``/``join`` optimisation, data-dependent regression refinement
and HMM construction — are first-class :class:`Stage` objects here
instead of one imperative block.  A :class:`PipelineRunner` executes an
ordered stage list over an :class:`ArtifactStore` of typed intermediate
results, timing every stage into a :class:`StageReport` and optionally
writing JSON checkpoints so a run can resume from the mining output
(mining dominates generation time on the long-TS sweeps) instead of
re-mining.

:class:`~repro.core.pipeline.PsmFlow` is a thin facade over this package;
ablation studies drive it directly by omitting stages from the list.
"""

from .adapters import (
    GenerationStage,
    HmmStage,
    JoinStage,
    MiningStage,
    RefineStage,
    SimplifyStage,
    build_stages,
)
from .base import (
    MANDATORY_STAGES,
    OPTIONAL_STAGES,
    STAGE_ORDER,
    CheckpointError,
    MissingArtifactError,
    PipelineContext,
    PipelineError,
    Stage,
    StageReport,
    stage_reports_from_json,
)
from .checkpoint import mining_from_json, mining_to_json
from .runner import PipelineRunner
from .store import (
    FUNCTIONAL_TRACES,
    HMM,
    MINING,
    N_REFINED,
    POWER_TRACES,
    RAW_PSMS,
    SIMULATOR,
    WINDOW_SOURCES,
    WORKING_PSMS,
    ArtifactStore,
)
from .streaming import (
    StreamingStage,
    StreamMiningStage,
    build_streaming_stages,
)

__all__ = [
    # contracts
    "Stage",
    "StageReport",
    "PipelineContext",
    "PipelineError",
    "CheckpointError",
    "MissingArtifactError",
    "STAGE_ORDER",
    "MANDATORY_STAGES",
    "OPTIONAL_STAGES",
    "stage_reports_from_json",
    # artifact store
    "ArtifactStore",
    "FUNCTIONAL_TRACES",
    "POWER_TRACES",
    "MINING",
    "RAW_PSMS",
    "WORKING_PSMS",
    "N_REFINED",
    "HMM",
    "SIMULATOR",
    "WINDOW_SOURCES",
    # stages
    "MiningStage",
    "GenerationStage",
    "SimplifyStage",
    "JoinStage",
    "RefineStage",
    "HmmStage",
    "build_stages",
    # streaming stages
    "StreamingStage",
    "StreamMiningStage",
    "build_streaming_stages",
    # runner & checkpoints
    "PipelineRunner",
    "mining_to_json",
    "mining_from_json",
]
