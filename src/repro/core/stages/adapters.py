"""Stage adapters wrapping the flow's existing phase implementations.

Each adapter re-wraps one of the original modules (``mining.py``,
``generator.py``, ``simplify.py``, ``join.py``, ``regression.py``,
``hmm.py``) behind the :class:`~repro.core.stages.base.Stage` contract
without changing their numerics: the adapters only move values between
the artifact store and the phase functions, count what the phase
produced, and (where it pays) persist/restore the phase output as JSON.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from ..export import psms_from_json, psms_to_json
from ..generator import generate_psms
from ..hmm import PsmHmm
from ..join import join as join_psms
from ..mining import AssertionMiner, MiningResult
from ..psm import (
    PSM,
    clone_psm,
    ensure_state_ids_above,
    total_states,
    total_transitions,
)
from ..regression import refine_data_dependent
from ..simplify import simplify_all
from ..simulation import MultiPsmSimulator
from .base import PipelineContext, PipelineError, Stage
from .checkpoint import mining_from_json, mining_to_json
from .store import (
    FUNCTIONAL_TRACES,
    HMM,
    MINING,
    N_REFINED,
    POWER_TRACES,
    RAW_PSMS,
    SIMULATOR,
    WORKING_PSMS,
)


def _ordered(traces: Mapping[int, object]) -> List[object]:
    """Values of an id-keyed trace mapping in trace-id order."""
    return [traces[k] for k in sorted(traces)]


def _psm_counters(psms: Sequence[PSM]) -> Dict[str, int]:
    """The standard size counters of a PSM set."""
    return {
        "psms": len(psms),
        "states": total_states(psms),
        "transitions": total_transitions(psms),
    }


class MiningStage(Stage):
    """Phase 1 — dynamic assertion mining over the functional traces.

    Checkpointable: the mined propositions and proposition traces are
    saved as JSON so later runs can resume downstream of mining.
    """

    name = "mine"
    requires = (FUNCTIONAL_TRACES,)
    provides = (MINING,)

    def run(self, ctx: PipelineContext) -> Dict[str, int]:
        """Mine the shared proposition universe from the training traces."""
        traces = ctx.store.get(FUNCTIONAL_TRACES)
        miner = AssertionMiner(
            ctx.config.miner, jobs=getattr(ctx.config, "jobs", 1)
        )
        mining = miner.mine_many(_ordered(traces))
        ctx.store.put(MINING, mining)
        return self._counters(mining)

    @staticmethod
    def _counters(mining: MiningResult) -> Dict[str, int]:
        return {
            "atoms": len(mining.atoms),
            "propositions": len(mining.propositions),
            "instants": sum(len(t) for t in mining.traces),
        }

    def save_checkpoint(self, ctx: PipelineContext) -> None:
        """Write the mining artifacts to ``mine.json``."""
        self._write_json(ctx, mining_to_json(ctx.store.get(MINING)))

    def load_checkpoint(self, ctx: PipelineContext) -> Dict[str, int]:
        """Restore the mining artifacts from ``mine.json``."""
        mining = mining_from_json(self._read_json(ctx))
        ctx.store.put(MINING, mining)
        return self._counters(mining)


class GenerationStage(Stage):
    """Phase 2 — PSMGenerator: one chain PSM per training trace.

    Publishes both the untouched raw set and a structural deep copy as
    the working set the optimisation stages may rewrite.
    """

    name = "generate"
    requires = (MINING, POWER_TRACES)
    provides = (RAW_PSMS, WORKING_PSMS)

    def run(self, ctx: PipelineContext) -> Dict[str, int]:
        """Generate the chain PSMs from the mined proposition traces."""
        mining = ctx.store.get(MINING)
        power = ctx.store.get(POWER_TRACES)
        raw = generate_psms(mining.traces, _ordered(power))
        self._publish(ctx, raw)
        return _psm_counters(raw)

    @staticmethod
    def _publish(ctx: PipelineContext, raw: List[PSM]) -> None:
        ctx.store.put(RAW_PSMS, raw)
        ctx.store.put(WORKING_PSMS, [clone_psm(p) for p in raw])

    def save_checkpoint(self, ctx: PipelineContext) -> None:
        """Write the raw chain PSMs to ``generate.json``."""
        self._write_json(ctx, psms_to_json(ctx.store.get(RAW_PSMS)))

    def load_checkpoint(self, ctx: PipelineContext) -> Dict[str, int]:
        """Restore the raw PSMs (and a fresh working copy) from JSON."""
        raw = psms_from_json(self._read_json(ctx))
        ensure_state_ids_above(raw)
        self._publish(ctx, raw)
        return _psm_counters(raw)


class _PsmRewriteStage(Stage):
    """Shared behaviour of stages that rewrite the working PSM set."""

    def save_checkpoint(self, ctx: PipelineContext) -> None:
        """Write the rewritten working PSM set to ``<name>.json``."""
        self._write_json(ctx, psms_to_json(ctx.store.get(WORKING_PSMS)))

    def load_checkpoint(self, ctx: PipelineContext) -> Dict[str, int]:
        """Restore the rewritten working PSM set from ``<name>.json``."""
        psms = psms_from_json(self._read_json(ctx))
        ensure_state_ids_above(psms)
        ctx.store.put(WORKING_PSMS, psms)
        return _psm_counters(psms)


class SimplifyStage(_PsmRewriteStage):
    """Phase 3a — ``simplify``: merge adjacent mergeable chain states."""

    name = "simplify"
    requires = (WORKING_PSMS, POWER_TRACES)
    provides = (WORKING_PSMS,)

    def run(self, ctx: PipelineContext) -> Dict[str, int]:
        """Collapse each chain PSM to its simplification fixpoint."""
        simplified = simplify_all(
            ctx.store.get(WORKING_PSMS),
            ctx.store.get(POWER_TRACES),
            ctx.config.merge,
        )
        ctx.store.put(WORKING_PSMS, simplified)
        return _psm_counters(simplified)


class JoinStage(_PsmRewriteStage):
    """Phase 3b — ``join``: merge mergeable states across the set."""

    name = "join"
    requires = (WORKING_PSMS, POWER_TRACES)
    provides = (WORKING_PSMS,)

    def run(self, ctx: PipelineContext) -> Dict[str, int]:
        """Join the PSM set into the reduced set ``P'``."""
        joined = join_psms(
            ctx.store.get(WORKING_PSMS),
            ctx.store.get(POWER_TRACES),
            ctx.config.merge,
        )
        ctx.store.put(WORKING_PSMS, joined)
        return _psm_counters(joined)


class RefineStage(_PsmRewriteStage):
    """Phase 4 — data-dependent regression refinement (in place)."""

    name = "refine"
    requires = (WORKING_PSMS, FUNCTIONAL_TRACES, POWER_TRACES)
    provides = (WORKING_PSMS, N_REFINED)

    def run(self, ctx: PipelineContext) -> Dict[str, int]:
        """Install regression output functions on data-dependent states."""
        psms = ctx.store.get(WORKING_PSMS)
        refined = refine_data_dependent(
            psms,
            ctx.store.get(FUNCTIONAL_TRACES),
            ctx.store.get(POWER_TRACES),
            ctx.config.refine,
        )
        ctx.store.put(N_REFINED, refined)
        counters = _psm_counters(psms)
        counters["refined_states"] = refined
        return counters

    def save_checkpoint(self, ctx: PipelineContext) -> None:
        """Write the refined PSM set plus the refinement count."""
        payload = psms_to_json(ctx.store.get(WORKING_PSMS))
        payload["n_refined"] = ctx.store.get(N_REFINED)
        self._write_json(ctx, payload)

    def load_checkpoint(self, ctx: PipelineContext) -> Dict[str, int]:
        """Restore the refined PSM set plus the refinement count."""
        payload = self._read_json(ctx)
        psms = psms_from_json(payload)
        ensure_state_ids_above(psms)
        refined = int(payload.get("n_refined", 0))
        ctx.store.put(WORKING_PSMS, psms)
        ctx.store.put(N_REFINED, refined)
        counters = _psm_counters(psms)
        counters["refined_states"] = refined
        return counters


class HmmStage(Stage):
    """Phase 5 — HMM construction and simulator assembly.

    Cheap and terminal, so it is never checkpointed; a resumed run
    always rebuilds the HMM from the restored PSM set.
    """

    name = "hmm"
    requires = (WORKING_PSMS, MINING)
    provides = (HMM, SIMULATOR)

    def run(self, ctx: PipelineContext) -> Dict[str, int]:
        """Build the HMM and the HMM-driven multi-PSM simulator."""
        psms = ctx.store.get(WORKING_PSMS)
        mining = ctx.store.get(MINING)
        hmm = PsmHmm(psms)
        ctx.store.put(HMM, hmm)
        ctx.store.put(
            SIMULATOR, MultiPsmSimulator(psms, mining.labeler, hmm)
        )
        return {
            "hidden_states": len(hmm.state_ids),
            "observations": len(hmm.observations),
        }


#: Stage classes by canonical name.
STAGE_CLASSES = {
    MiningStage.name: MiningStage,
    GenerationStage.name: GenerationStage,
    SimplifyStage.name: SimplifyStage,
    JoinStage.name: JoinStage,
    RefineStage.name: RefineStage,
    HmmStage.name: HmmStage,
}


def build_stages(names: Sequence[str]) -> List[Stage]:
    """Instantiate the stage list for an ordered sequence of names."""
    unknown = [n for n in names if n not in STAGE_CLASSES]
    if unknown:
        raise PipelineError(
            f"unknown stage name(s) {unknown}; "
            f"known stages: {sorted(STAGE_CLASSES)}"
        )
    return [STAGE_CLASSES[name]() for name in names]
