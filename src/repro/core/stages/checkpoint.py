"""JSON round-trip of the mining artifacts.

Mining dominates the flow's generation time on the Table II long-TS
sweeps, so it is the artifact most worth checkpointing: this module
serialises a :class:`~repro.core.mining.MiningResult` — the atom
alphabet, the minterm propositions and the per-trace proposition
sequences — compactly enough to rebuild the truth matrices, the
proposition universe and the :class:`~repro.core.mining.PropositionLabeler`
bit-for-bit, without storing the functional traces themselves.

A proposition is stored as its truth row over the atom alphabet (the
minterm), so positives/negatives need not be listed separately; a
proposition trace is stored as a sequence of proposition indices.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..export import _atom_from_json, _atom_to_json
from ..mining import MiningResult, PropositionLabeler
from ..propositions import Proposition, PropositionTrace

#: Schema tag guarding against stale checkpoints after format changes.
MINING_CHECKPOINT_VERSION = 1


def mining_to_json(result: MiningResult) -> dict:
    """Serialise a mining result into a JSON-compatible dictionary."""
    prop_index: Dict[Proposition, int] = {
        prop: k for k, prop in enumerate(result.propositions)
    }
    rows = []
    for prop in result.propositions:
        rows.append([1 if atom in prop.positives else 0 for atom in result.atoms])
    return {
        "version": MINING_CHECKPOINT_VERSION,
        "atoms": [_atom_to_json(a) for a in result.atoms],
        "propositions": [
            {"label": prop.label, "row": row}
            for prop, row in zip(result.propositions, rows)
        ],
        "traces": [
            [prop_index[prop] for prop in trace] for trace in result.traces
        ],
    }


def mining_from_json(payload: dict) -> MiningResult:
    """Rebuild a :class:`MiningResult` from :func:`mining_to_json` output.

    The reconstructed atoms, propositions and labeler are value-equal to
    the originals (atoms and propositions compare structurally), so the
    downstream generation/optimisation stages produce an identical PSM
    set when resumed from the checkpoint.
    """
    version = payload.get("version")
    if version != MINING_CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported mining checkpoint version {version!r} "
            f"(expected {MINING_CHECKPOINT_VERSION})"
        )
    atoms = [_atom_from_json(a) for a in payload["atoms"]]
    propositions: List[Proposition] = []
    rows: List[np.ndarray] = []
    universe: Dict[bytes, Proposition] = {}
    for data in payload["propositions"]:
        row = np.asarray(data["row"], dtype=bool)
        if len(row) != len(atoms):
            raise ValueError("proposition row width does not match alphabet")
        positives = [a for a, v in zip(atoms, row) if v]
        negatives = [a for a, v in zip(atoms, row) if not v]
        prop = Proposition(data["label"], positives, negatives)
        propositions.append(prop)
        rows.append(row)
        universe[row.tobytes()] = prop
    traces: List[PropositionTrace] = []
    matrices: List[np.ndarray] = []
    for trace_id, indices in enumerate(payload["traces"]):
        sequence = [propositions[i] for i in indices]
        matrix = np.zeros((len(indices), len(atoms)), dtype=bool)
        for i, prop_idx in enumerate(indices):
            matrix[i] = rows[prop_idx]
        traces.append(PropositionTrace(sequence, trace_id=trace_id))
        matrices.append(matrix)
    return MiningResult(
        atoms=atoms,
        propositions=propositions,
        traces=traces,
        matrices=matrices,
        labeler=PropositionLabeler(atoms, universe),
    )
