"""Typed store of the pipeline's intermediate artifacts.

Each artifact is identified by one of the module-level key constants and
carries a declared Python type that :meth:`ArtifactStore.put` validates,
so a mis-wired stage fails loudly at the boundary instead of deep inside
a downstream stage.  The working PSM set is deliberately a *separate*
artifact from the raw PSM set: the optimisation stages rewrite the
former while the latter stays untouched for inspection and ablation.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

from ..hmm import PsmHmm
from ..mining import MiningResult
from ..simulation import MultiPsmSimulator
from .base import MissingArtifactError

#: ``Dict[int, FunctionalTrace]`` — the training functional traces by id.
FUNCTIONAL_TRACES = "functional_traces"
#: ``Dict[int, PowerTrace]`` — the reference power traces by id.
POWER_TRACES = "power_traces"
#: :class:`~repro.core.mining.MiningResult` — mined propositions/labeler.
MINING = "mining"
#: ``List[PSM]`` — the generator's untouched chain PSMs.
RAW_PSMS = "raw_psms"
#: ``List[PSM]`` — the working set the optimisation stages rewrite.
WORKING_PSMS = "psms"
#: ``int`` — number of states the regression refinement made data-dependent.
N_REFINED = "n_refined"
#: :class:`~repro.core.hmm.PsmHmm` — the HMM over the final PSM set.
HMM = "hmm"
#: :class:`~repro.core.simulation.MultiPsmSimulator` — the fitted simulator.
SIMULATOR = "simulator"
#: ``List`` of window sources — the streaming flow's replayable inputs.
WINDOW_SOURCES = "window_sources"

#: Declared Python type of each artifact key.
ARTIFACT_TYPES: Dict[str, Tuple[type, ...]] = {
    FUNCTIONAL_TRACES: (dict,),
    POWER_TRACES: (dict,),
    MINING: (MiningResult,),
    RAW_PSMS: (list,),
    WORKING_PSMS: (list,),
    N_REFINED: (int,),
    HMM: (PsmHmm,),
    SIMULATOR: (MultiPsmSimulator,),
    WINDOW_SOURCES: (list,),
}


class ArtifactStore:
    """Keyed, type-checked container of pipeline intermediates.

    Stages communicate exclusively through the store: a stage reads its
    declared inputs with :meth:`get` and publishes its outputs with
    :meth:`put`.  Unknown keys are allowed (extensions may add
    artifacts) but the known keys are validated against
    :data:`ARTIFACT_TYPES`.
    """

    def __init__(self) -> None:
        self._artifacts: Dict[str, Any] = {}

    def put(self, key: str, value: Any) -> None:
        """Publish (or overwrite) an artifact, validating known types."""
        expected = ARTIFACT_TYPES.get(key)
        if expected is not None and not isinstance(value, expected):
            names = " | ".join(t.__name__ for t in expected)
            raise TypeError(
                f"artifact {key!r} must be {names}, "
                f"got {type(value).__name__}"
            )
        self._artifacts[key] = value

    def get(self, key: str) -> Any:
        """Fetch an artifact; raises MissingArtifactError when absent."""
        try:
            return self._artifacts[key]
        except KeyError:
            raise MissingArtifactError(
                f"artifact {key!r} has not been produced; "
                f"available: {sorted(self._artifacts) or 'none'}"
            ) from None

    def get_or(self, key: str, default: Any = None) -> Any:
        """Fetch an artifact or return ``default`` when absent."""
        return self._artifacts.get(key, default)

    def has(self, key: str) -> bool:
        """True when the artifact exists in the store."""
        return key in self._artifacts

    def keys(self) -> List[str]:
        """The keys of all published artifacts, in publication order."""
        return list(self._artifacts)

    def __contains__(self, key: str) -> bool:
        return key in self._artifacts

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"ArtifactStore({sorted(self._artifacts)})"
