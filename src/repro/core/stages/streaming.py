"""Streaming variants of the pipeline stages.

:class:`StreamingStage` specialises the :class:`Stage` contract for
operators that consume their input window-by-window instead of all at
once; :class:`StreamMiningStage` is the mining phase rebuilt on
:class:`~repro.core.streaming.StreamingMiner` — same artifact
(``MINING``), same checkpoint file (``mine.json``, so a streamed run can
be resumed by the batch runner and vice versa), but driven from the
``WINDOW_SOURCES`` artifact and instrumented with window / drift
counters.  When a drift detector fires mid-stream, the stage re-runs the
delta ``simplify`` + ``join`` over the stream prefix and republishes the
refreshed bundle through its :class:`~repro.core.streaming.BundlePublisher`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..streaming import (
    DEFAULT_WINDOW,
    BundlePublisher,
    DriftDetector,
    StreamSnapshot,
    StreamingMiner,
    WindowSummary,
    refresh_psms,
)
from .adapters import STAGE_CLASSES, MiningStage
from .base import PipelineContext, PipelineError, Stage
from .store import MINING, POWER_TRACES, WINDOW_SOURCES


class StreamingStage(Stage):
    """A stage that folds its input in windows.

    Adds the window size and an optional per-window progress callback to
    the base contract; subclasses report a ``windows`` counter so the
    :class:`StageReport` records how many windows the stage consumed.
    Checkpointing behaviour is inherited unchanged — a streaming stage
    produces the same artifacts as its batch twin, so the runner can mix
    the two freely when resuming.
    """

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        progress: Optional[Callable[[WindowSummary], None]] = None,
    ) -> None:
        if window < 1:
            raise PipelineError("window size must be >= 1")
        self.window = window
        self.progress = progress


class StreamMiningStage(StreamingStage, MiningStage):
    """Phase 1, incremental — windowed mining with drift-aware refresh.

    Requires ``WINDOW_SOURCES`` (replayable window sources in trace-id
    order) and provides the same ``MINING`` artifact as the batch
    :class:`MiningStage`, whose checkpoint format it inherits.  With a
    drift detector and a publisher attached, each drift firing triggers
    a prefix ``simplify``/``join`` re-run and an atomic versioned bundle
    publish — the zero-downtime refresh loop.
    """

    name = "mine"
    requires = (WINDOW_SOURCES,)
    provides = (MINING,)

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        progress: Optional[Callable[[WindowSummary], None]] = None,
        drift: Optional[DriftDetector] = None,
        publisher: Optional[BundlePublisher] = None,
    ) -> None:
        StreamingStage.__init__(self, window=window, progress=progress)
        self.drift = drift
        self.publisher = publisher

    def run(self, ctx: PipelineContext) -> Dict[str, int]:
        """Stream every source through the three-pass windowed miner."""
        sources = ctx.store.get(WINDOW_SOURCES)

        on_drift = None
        if self.drift is not None and self.publisher is not None:
            def on_drift(snapshot: StreamSnapshot) -> None:
                self._refresh(ctx, snapshot)

        miner = StreamingMiner(
            config=ctx.config.miner,
            window=self.window,
            drift=self.drift,
            progress=self.progress,
            on_drift=on_drift,
        )
        report = miner.mine_sources(sources)
        ctx.store.put(MINING, report.mining)
        counters = self._counters(report.mining)
        counters["windows"] = report.windows
        counters["candidate_atoms"] = report.candidates
        if self.drift is not None:
            counters["drift_events"] = len(report.drift_events)
            counters["refreshes"] = report.refreshes
        return counters

    def _refresh(self, ctx: PipelineContext, snapshot: StreamSnapshot):
        """Drift fired: re-optimise the prefix and publish a version."""
        psms = refresh_psms(
            snapshot, ctx.store.get(POWER_TRACES), ctx.config.merge
        )
        if psms:
            self.publisher.publish(psms, reason="drift")


def build_streaming_stages(
    names: Sequence[str],
    window: int = DEFAULT_WINDOW,
    progress: Optional[Callable[[WindowSummary], None]] = None,
    drift: Optional[DriftDetector] = None,
    publisher: Optional[BundlePublisher] = None,
) -> List[Stage]:
    """The stage list of a streaming run.

    The mining stage is swapped for :class:`StreamMiningStage`; every
    other requested stage keeps its batch implementation (they operate
    on finalized artifacts, which are identical between the two paths).
    """
    stages: List[Stage] = []
    for name in names:
        if name == StreamMiningStage.name:
            stages.append(
                StreamMiningStage(
                    window=window,
                    progress=progress,
                    drift=drift,
                    publisher=publisher,
                )
            )
        elif name in STAGE_CLASSES:
            stages.append(STAGE_CLASSES[name]())
        else:
            raise PipelineError(
                f"unknown stage name(s) [{name!r}]; "
                f"known stages: {sorted(STAGE_CLASSES)}"
            )
    return stages
