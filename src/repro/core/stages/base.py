"""Stage contract of the staged PSM pipeline.

A :class:`Stage` wraps one phase of the paper's flow behind a uniform
interface: a ``name``, the artifact keys it ``requires`` and ``provides``
(validated by the runner before execution), a ``run`` method doing the
work against a :class:`PipelineContext`, and optional JSON checkpointing
hooks so the runner can persist the stage's output and later resume from
it without re-executing the upstream stages.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Canonical execution order of the flow's stages (paper Fig. 1).
STAGE_ORDER: Tuple[str, ...] = (
    "mine",
    "generate",
    "simplify",
    "join",
    "refine",
    "hmm",
)

#: Stages every run must execute (the flow is meaningless without them).
MANDATORY_STAGES: Tuple[str, ...] = ("mine", "generate", "hmm")

#: Stages an ablation may omit (the paper's optimisation knobs).
OPTIONAL_STAGES: Tuple[str, ...] = ("simplify", "join", "refine")


class PipelineError(RuntimeError):
    """Base error of the staged pipeline (sequencing, artifacts, resume)."""


class CheckpointError(PipelineError):
    """A checkpoint needed to resume a run is missing or unreadable."""


class MissingArtifactError(PipelineError):
    """A stage's declared input artifact is absent from the store."""


@dataclass
class StageReport:
    """Instrumentation record of one executed (or resumed) stage.

    Replaces the flow's old single ``generation_time`` scalar: every
    stage reports its own wall time plus a dictionary of counters
    (states, transitions, atoms, ... — whatever the stage finds worth
    counting).  ``status`` is ``"executed"`` for a live run and
    ``"resumed"`` when the stage's artifacts were restored from a
    checkpoint instead of recomputed.
    """

    name: str
    wall_time: float = 0.0
    status: str = "executed"
    counters: Dict[str, int] = field(default_factory=dict)

    @property
    def resumed(self) -> bool:
        """True when the stage was restored from a checkpoint."""
        return self.status == "resumed"

    def to_json(self) -> dict:
        """JSON-compatible rendering (used by model export)."""
        return {
            "name": self.name,
            "wall_time": self.wall_time,
            "status": self.status,
            "counters": dict(self.counters),
        }

    @classmethod
    def from_json(cls, data: dict) -> "StageReport":
        """Rebuild a report from :meth:`to_json` output."""
        return cls(
            name=data["name"],
            wall_time=float(data["wall_time"]),
            status=data.get("status", "executed"),
            counters=dict(data.get("counters", {})),
        )

    def __str__(self) -> str:
        marker = "*" if self.resumed else ""
        return f"{self.name}{marker} {self.wall_time:.3f}s"


def stage_reports_from_json(payload: Sequence[dict]) -> List[StageReport]:
    """Rebuild a stage-report list from serialised form (model JSON)."""
    return [StageReport.from_json(item) for item in payload]


@dataclass
class PipelineContext:
    """Everything a stage may touch while running.

    ``config`` is the flow configuration (duck-typed to avoid a circular
    import with :mod:`repro.core.pipeline`); ``store`` holds the typed
    intermediate artifacts; ``checkpoint_dir``, when set, is where stages
    persist/load their JSON checkpoints.
    """

    config: Any
    store: Any
    checkpoint_dir: Optional[Path] = None

    def checkpoint_path(self, stage_name: str) -> Optional[Path]:
        """The checkpoint file of ``stage_name`` (None when disabled)."""
        if self.checkpoint_dir is None:
            return None
        return Path(self.checkpoint_dir) / f"{stage_name}.json"


class Stage:
    """One phase of the PSM flow.

    Subclasses set :attr:`name`, :attr:`requires` and :attr:`provides`
    and implement :meth:`run`; stages whose output is worth persisting
    additionally implement :meth:`save_checkpoint` /
    :meth:`load_checkpoint`.
    """

    #: Unique stage name (one of :data:`STAGE_ORDER`).
    name: str = ""
    #: Artifact keys that must be in the store before :meth:`run`.
    requires: Tuple[str, ...] = ()
    #: Artifact keys :meth:`run` puts into the store.
    provides: Tuple[str, ...] = ()

    def run(self, ctx: PipelineContext) -> Dict[str, int]:
        """Execute the stage; returns the counters for its report."""
        raise NotImplementedError

    def save_checkpoint(self, ctx: PipelineContext) -> None:
        """Persist the stage's artifacts (no-op by default)."""

    def load_checkpoint(self, ctx: PipelineContext) -> Optional[Dict[str, int]]:
        """Restore the stage's artifacts from its checkpoint.

        Returns the counter dictionary for the resumed report, or
        ``None`` when the stage does not support checkpointing.  Raises
        :class:`CheckpointError` when the checkpoint should exist but is
        missing or unreadable.
        """
        return None

    # ------------------------------------------------------------------
    # shared JSON helpers for checkpointing stages
    # ------------------------------------------------------------------
    def _write_json(self, ctx: PipelineContext, payload: dict) -> None:
        """Write this stage's checkpoint file."""
        path = ctx.checkpoint_path(self.name)
        if path is None:
            return
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload))

    def _read_json(self, ctx: PipelineContext) -> dict:
        """Read this stage's checkpoint file or raise CheckpointError."""
        path = ctx.checkpoint_path(self.name)
        if path is None:
            raise CheckpointError(
                f"stage {self.name!r}: no checkpoint directory configured"
            )
        if not path.exists():
            raise CheckpointError(
                f"stage {self.name!r}: checkpoint {path} not found"
            )
        try:
            return json.loads(path.read_text())
        except (OSError, ValueError) as exc:
            raise CheckpointError(
                f"stage {self.name!r}: unreadable checkpoint {path}: {exc}"
            ) from exc

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"{type(self).__name__}({self.name!r})"
