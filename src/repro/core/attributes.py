"""Power attributes of PSM states (paper Sec. III-B).

Each mined assertion is annotated with the triplet ``(mu, sigma, n)``:
``n`` is the number of instants where the assertion holds, ``mu`` the mean
of the reference power values over those instants and ``sigma`` their
standard deviation.  After ``simplify``/``join`` merges, attributes are
recomputed over all the intervals of the merged states — implemented here
as exact pooling of population statistics, which is equivalent to
re-reading the reference power traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence, Tuple

import numpy as np

from ..traces.power import PowerTrace


def segment_attributes(
    values: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-segment ``(mu, sigma)`` over many inclusive intervals at once.

    ``values`` is the power trace, ``starts[k]``/``lengths[k]`` delimit
    segment ``k``.  Segments are grouped by length and reduced as rows of
    one 2-D gather per distinct length, so the result is bit-identical to
    calling ``np.mean``/``np.std`` on each ``values[s : s + l]`` slice
    (numpy applies the same pairwise reduction to a contiguous row of a
    2-D array as to a 1-D slice) while doing only ``O(distinct lengths)``
    numpy calls instead of two per segment — the per-interval kernel the
    RLE-driven generator feeds every run boundary through.
    """
    values = np.asarray(values, dtype=np.float64)
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    count = len(starts)
    mu = np.empty(count, dtype=np.float64)
    sigma = np.empty(count, dtype=np.float64)
    for length in np.unique(lengths).tolist():
        members = np.nonzero(lengths == length)[0]
        gather = starts[members][:, None] + np.arange(
            length, dtype=np.int64
        )[None, :]
        block = values[gather]
        mu[members] = block.mean(axis=1)
        sigma[members] = block.std(axis=1)
    return mu, sigma


@dataclass(frozen=True)
class Interval:
    """An inclusive instant interval inside one training trace."""

    trace_id: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ValueError(f"bad interval [{self.start}, {self.stop}]")

    @property
    def length(self) -> int:
        """Number of instants covered (``stop - start + 1``)."""
        return self.stop - self.start + 1

    def __str__(self) -> str:
        return f"T{self.trace_id}[{self.start},{self.stop}]"


@dataclass(frozen=True)
class PowerAttributes:
    """The ``(mu, sigma, n)`` triplet of a power state."""

    mu: float
    sigma: float
    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("power attributes need at least one sample")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    @property
    def variance(self) -> float:
        """Population variance."""
        return self.sigma ** 2

    @classmethod
    def from_power_trace(
        cls, power: PowerTrace, start: int, stop: int
    ) -> "PowerAttributes":
        """Attributes over the inclusive interval ``[start, stop]``."""
        mu, sigma, n = power.attributes(start, stop)
        return cls(mu=mu, sigma=sigma, n=n)

    @classmethod
    def from_intervals(
        cls,
        intervals: Sequence[Interval],
        power_traces: Mapping[int, PowerTrace],
    ) -> "PowerAttributes":
        """Attributes over several intervals of several power traces."""
        parts = [
            cls.from_power_trace(power_traces[iv.trace_id], iv.start, iv.stop)
            for iv in intervals
        ]
        return cls.pooled(parts)

    @classmethod
    def pooled(cls, parts: Sequence["PowerAttributes"]) -> "PowerAttributes":
        """Exact pooled mean / population standard deviation.

        Matches recomputing the statistics over the concatenation of the
        merged states' power samples, as the paper's ``simplify``/``join``
        prescribe.
        """
        if not parts:
            raise ValueError("cannot pool zero attribute sets")
        total_n = sum(p.n for p in parts)
        mean = sum(p.n * p.mu for p in parts) / total_n
        second_moment = sum(p.n * (p.variance + p.mu ** 2) for p in parts)
        variance = max(second_moment / total_n - mean ** 2, 0.0)
        return cls(mu=mean, sigma=math.sqrt(variance), n=total_n)

    def merge(self, other: "PowerAttributes") -> "PowerAttributes":
        """Welford/Chan parallel merge of two ``(mu, sigma, n)`` triplets.

        Unlike :meth:`pooled`, which recombines raw second moments, this
        uses Chan's update ``M2 = M2_a + M2_b + delta^2 * n_a n_b / n``,
        which stays numerically stable when ``mu`` is large relative to
        ``sigma`` — the regime streaming window merges live in.  Both
        formulations are algebraically identical to a single pass over
        the concatenated samples.
        """
        n = self.n + other.n
        delta = other.mu - self.mu
        mean = self.mu + delta * other.n / n
        m2 = (
            self.n * self.variance
            + other.n * other.variance
            + delta * delta * self.n * other.n / n
        )
        return PowerAttributes(
            mu=mean, sigma=math.sqrt(max(m2 / n, 0.0)), n=n
        )

    def __str__(self) -> str:
        return f"(mu={self.mu:.4g}, sigma={self.sigma:.4g}, n={self.n})"


class RunningAttributes:
    """Mergeable single-pass accumulator of power statistics.

    The streaming operators' counterpart of :class:`PowerAttributes`:
    windows feed samples in with :meth:`update_many`, partitions combine
    with :meth:`merge` (Chan's parallel variance update, the same
    formula as :meth:`PowerAttributes.merge`), and :meth:`finalize`
    freezes the triplet.  An empty accumulator (``n == 0``) is valid —
    it is the identity element of :meth:`merge`.
    """

    __slots__ = ("n", "mean", "m2")

    def __init__(self) -> None:
        self.n = 0
        self.mean = 0.0
        self.m2 = 0.0

    def update(self, value: float) -> None:
        """Fold one sample in (classic Welford update)."""
        self.n += 1
        delta = value - self.mean
        self.mean += delta / self.n
        self.m2 += delta * (value - self.mean)

    def update_many(self, values: np.ndarray) -> None:
        """Fold a whole window in: one vectorised reduce, one Chan merge."""
        values = np.asarray(values, dtype=np.float64)
        count = len(values)
        if count == 0:
            return
        mean = float(values.mean())
        m2 = float(((values - mean) ** 2).sum())
        self._combine(count, mean, m2)

    def merge(self, other: "RunningAttributes") -> "RunningAttributes":
        """Fold another accumulator in (returns ``self`` for chaining)."""
        self._combine(other.n, other.mean, other.m2)
        return self

    def _combine(self, n: int, mean: float, m2: float) -> None:
        if n == 0:
            return
        if self.n == 0:
            self.n, self.mean, self.m2 = n, mean, m2
            return
        total = self.n + n
        delta = mean - self.mean
        self.mean += delta * n / total
        self.m2 += m2 + delta * delta * self.n * n / total
        self.n = total

    @property
    def sigma(self) -> float:
        """Population standard deviation of the samples seen so far."""
        if self.n == 0:
            return 0.0
        return math.sqrt(max(self.m2 / self.n, 0.0))

    def finalize(self) -> PowerAttributes:
        """The frozen ``(mu, sigma, n)`` triplet (requires ``n >= 1``)."""
        if self.n < 1:
            raise ValueError("no samples accumulated")
        return PowerAttributes(mu=self.mean, sigma=self.sigma, n=self.n)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"RunningAttributes(n={self.n}, mean={self.mean:.4g}, "
            f"sigma={self.sigma:.4g})"
        )
