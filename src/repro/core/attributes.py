"""Power attributes of PSM states (paper Sec. III-B).

Each mined assertion is annotated with the triplet ``(mu, sigma, n)``:
``n`` is the number of instants where the assertion holds, ``mu`` the mean
of the reference power values over those instants and ``sigma`` their
standard deviation.  After ``simplify``/``join`` merges, attributes are
recomputed over all the intervals of the merged states — implemented here
as exact pooling of population statistics, which is equivalent to
re-reading the reference power traces.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence, Tuple

import numpy as np

from ..traces.power import PowerTrace


def segment_attributes(
    values: np.ndarray, starts: np.ndarray, lengths: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-segment ``(mu, sigma)`` over many inclusive intervals at once.

    ``values`` is the power trace, ``starts[k]``/``lengths[k]`` delimit
    segment ``k``.  Segments are grouped by length and reduced as rows of
    one 2-D gather per distinct length, so the result is bit-identical to
    calling ``np.mean``/``np.std`` on each ``values[s : s + l]`` slice
    (numpy applies the same pairwise reduction to a contiguous row of a
    2-D array as to a 1-D slice) while doing only ``O(distinct lengths)``
    numpy calls instead of two per segment — the per-interval kernel the
    RLE-driven generator feeds every run boundary through.
    """
    values = np.asarray(values, dtype=np.float64)
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    count = len(starts)
    mu = np.empty(count, dtype=np.float64)
    sigma = np.empty(count, dtype=np.float64)
    for length in np.unique(lengths).tolist():
        members = np.nonzero(lengths == length)[0]
        gather = starts[members][:, None] + np.arange(
            length, dtype=np.int64
        )[None, :]
        block = values[gather]
        mu[members] = block.mean(axis=1)
        sigma[members] = block.std(axis=1)
    return mu, sigma


@dataclass(frozen=True)
class Interval:
    """An inclusive instant interval inside one training trace."""

    trace_id: int
    start: int
    stop: int

    def __post_init__(self) -> None:
        if self.start < 0 or self.stop < self.start:
            raise ValueError(f"bad interval [{self.start}, {self.stop}]")

    @property
    def length(self) -> int:
        """Number of instants covered (``stop - start + 1``)."""
        return self.stop - self.start + 1

    def __str__(self) -> str:
        return f"T{self.trace_id}[{self.start},{self.stop}]"


@dataclass(frozen=True)
class PowerAttributes:
    """The ``(mu, sigma, n)`` triplet of a power state."""

    mu: float
    sigma: float
    n: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("power attributes need at least one sample")
        if self.sigma < 0:
            raise ValueError("sigma must be non-negative")

    @property
    def variance(self) -> float:
        """Population variance."""
        return self.sigma ** 2

    @classmethod
    def from_power_trace(
        cls, power: PowerTrace, start: int, stop: int
    ) -> "PowerAttributes":
        """Attributes over the inclusive interval ``[start, stop]``."""
        mu, sigma, n = power.attributes(start, stop)
        return cls(mu=mu, sigma=sigma, n=n)

    @classmethod
    def from_intervals(
        cls,
        intervals: Sequence[Interval],
        power_traces: Mapping[int, PowerTrace],
    ) -> "PowerAttributes":
        """Attributes over several intervals of several power traces."""
        parts = [
            cls.from_power_trace(power_traces[iv.trace_id], iv.start, iv.stop)
            for iv in intervals
        ]
        return cls.pooled(parts)

    @classmethod
    def pooled(cls, parts: Sequence["PowerAttributes"]) -> "PowerAttributes":
        """Exact pooled mean / population standard deviation.

        Matches recomputing the statistics over the concatenation of the
        merged states' power samples, as the paper's ``simplify``/``join``
        prescribe.
        """
        if not parts:
            raise ValueError("cannot pool zero attribute sets")
        total_n = sum(p.n for p in parts)
        mean = sum(p.n * p.mu for p in parts) / total_n
        second_moment = sum(p.n * (p.variance + p.mu ** 2) for p in parts)
        variance = max(second_moment / total_n - mean ** 2, 0.0)
        return cls(mu=mean, sigma=math.sqrt(variance), n=total_n)

    def __str__(self) -> str:
        return f"(mu={self.mu:.4g}, sigma={self.sigma:.4g}, n={self.n})"
