"""The paper's primary contribution: automatic PSM generation and simulation."""

from .attributes import Interval, PowerAttributes
from .coverage import CoverageReport, coverage_report
from .export import (
    load_psms,
    load_stage_reports,
    psms_from_json,
    psms_to_json,
    save_psms,
    to_dot,
    to_systemc,
)
from .generator import generate_psm, generate_psms
from .hierarchy import (
    ComponentPowerResult,
    HierarchicalEstimate,
    HierarchicalPsmFlow,
    default_hierarchical_config,
    run_hierarchical_power_simulation,
)
from .hmm import PsmHmm
from .join import join, merge_states
from .mergeability import (
    MergePolicy,
    single_observation_t_test,
    welch_t_test,
)
from .metrics import mae, mean_power_error, mre, rmse
from .mining import (
    AssertionMiner,
    MinerConfig,
    MiningResult,
    PropositionLabeler,
    proposition_label,
)
from .pipeline import FlowConfig, FlowReport, PsmFlow, fit_flow
from .stages import (
    MANDATORY_STAGES,
    OPTIONAL_STAGES,
    STAGE_ORDER,
    ArtifactStore,
    CheckpointError,
    MissingArtifactError,
    PipelineContext,
    PipelineError,
    PipelineRunner,
    Stage,
    StageReport,
    build_stages,
)
from .propositions import (
    AtomicProposition,
    Proposition,
    PropositionTrace,
    VarCompare,
    VarEqualsConst,
)
from .psm import (
    PSM,
    ConstantPower,
    PowerModel,
    PowerState,
    RegressionPower,
    Transition,
    clone_psm,
    find_state,
    next_state_id,
    reset_state_ids,
    state_universe,
    total_states,
    total_transitions,
)
from .regression import RefinePolicy, fit_regression, refine_data_dependent
from .simplify import merge_adjacent, simplify, simplify_all
from .simulation import (
    EstimationResult,
    MultiPsmSimulator,
    SinglePsmSimulator,
    StateTracker,
)
from .temporal import (
    ChoiceAssertion,
    NextAssertion,
    SequenceAssertion,
    TemporalAssertion,
    UntilAssertion,
    base_assertions,
)
from .xu import MinedAssertion, XUAutomaton, mine_patterns

__all__ = [
    # propositions & mining
    "AtomicProposition",
    "VarEqualsConst",
    "VarCompare",
    "Proposition",
    "PropositionTrace",
    "AssertionMiner",
    "MinerConfig",
    "MiningResult",
    "PropositionLabeler",
    "proposition_label",
    # temporal layer
    "TemporalAssertion",
    "UntilAssertion",
    "NextAssertion",
    "SequenceAssertion",
    "ChoiceAssertion",
    "base_assertions",
    "XUAutomaton",
    "MinedAssertion",
    "mine_patterns",
    # PSM structures
    "PSM",
    "PowerState",
    "Transition",
    "PowerModel",
    "ConstantPower",
    "RegressionPower",
    "PowerAttributes",
    "Interval",
    "next_state_id",
    "reset_state_ids",
    "total_states",
    "total_transitions",
    "find_state",
    "state_universe",
    # generation & optimisation
    "generate_psm",
    "generate_psms",
    "MergePolicy",
    "welch_t_test",
    "single_observation_t_test",
    "simplify",
    "simplify_all",
    "merge_adjacent",
    "join",
    "merge_states",
    "RefinePolicy",
    "refine_data_dependent",
    "fit_regression",
    # simulation
    "PsmHmm",
    "SinglePsmSimulator",
    "MultiPsmSimulator",
    "StateTracker",
    "EstimationResult",
    # diagnostics
    "CoverageReport",
    "coverage_report",
    # hierarchy extension
    "HierarchicalPsmFlow",
    "HierarchicalEstimate",
    "ComponentPowerResult",
    "run_hierarchical_power_simulation",
    "default_hierarchical_config",
    # metrics & pipeline
    "mre",
    "mae",
    "rmse",
    "mean_power_error",
    "PsmFlow",
    "FlowConfig",
    "FlowReport",
    "fit_flow",
    # staged pipeline
    "Stage",
    "StageReport",
    "ArtifactStore",
    "PipelineContext",
    "PipelineRunner",
    "PipelineError",
    "CheckpointError",
    "MissingArtifactError",
    "STAGE_ORDER",
    "MANDATORY_STAGES",
    "OPTIONAL_STAGES",
    "build_stages",
    "clone_psm",
    # export
    "to_dot",
    "to_systemc",
    "psms_to_json",
    "psms_from_json",
    "save_psms",
    "load_psms",
    "load_stage_reports",
]
