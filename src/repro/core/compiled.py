"""Compiled estimation path: dense-array PSM kernels (DESIGN.md §3.5).

The object simulators in :mod:`repro.core.simulation` interpret the PSM
graph per instant: every simulated cycle crosses several Python objects
(``StateTracker`` dispatch, HMM belief propagation, successor scans).
This module lowers a PSM bundle *once* into integer tables and runs the
estimation as a segment-level table walk plus a handful of vectorised
gathers:

* the proposition alphabet becomes a dense integer code space
  (``0..P-1`` for the mined universe, ``P`` for *unknown*);
* the complete simulator state — current state id, tracker progress,
  revert shadows, banned paths — is interned into *configurations*; the
  machine is the deterministic automaton over ``(config, code)``;
* per-configuration transition rows are resolved lazily by running the
  **object oracle's own step logic** exactly once per distinct
  ``(config, code)`` pair, so the tables are bit-exact by construction
  (the HMM argmax, the successor ordering, the resynchronisation
  scoring are all baked in at resolution time);
* resolved rows compose whole run-length segments: when the first
  instant of a segment lands in a configuration that self-loops on the
  segment's code with no side effects, the remaining ``k - 1`` instants
  cost nothing — the hot loop is one list gather per segment;
* per-instant outputs (power state, desync flag, state id) depend only
  on the *end* configuration of an instant, so emission is a single
  ``np.repeat`` over per-run gathers of the per-configuration output
  arrays.

Rare event-bearing steps (wrong predictions, reverts) and
non-convergent segments fall back to memoised per-instant stepping, so
every counter and re-attribution matches the oracle exactly.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..traces.power import PowerTrace
from .mining import _DENSE_MAX_BITS, PropositionLabeler
from .propositions import run_length_encode
from .psm import PSM, ConstantPower, PowerState
from .simulation import (
    EXIT,
    STAY,
    VIOLATION,
    EstimationResult,
    MultiPsmSimulator,
    SinglePsmSimulator,
    StateTracker,
    _AlternativeTracker,
    _needs_distances,
)
from .temporal import ChoiceAssertion

#: Segment-table sentinels: not yet resolved / needs per-instant stepping.
_UNRESOLVED = -1
_SLOW = -2

#: The no-event step outcome (entered, predictions, wrong, reverts, rev sid).
_EV0 = (0, 0, 0, 0, -1)

#: Start-configuration sentinel of the single-PSM machine (its first
#: instant *enters* the initial state instead of advancing a tracker).
_START = ("start",)


class LazyStateSequence:
    """Run-length view of ``state_sequence``, materialised on demand.

    Building the per-instant Python list eagerly costs more than the
    whole compiled simulation of a long trace; most consumers
    (``to_json``, the serving layer) never read it.  Compares equal to
    the eager list the object simulators produce.
    """

    __slots__ = ("_sids", "_lengths", "_list")

    def __init__(self, sids: np.ndarray, lengths: np.ndarray) -> None:
        self._sids = sids
        self._lengths = lengths
        self._list: Optional[list] = None

    def _materialize(self) -> list:
        if self._list is None:
            table = np.empty(len(self._sids) + 1, dtype=object)
            table[: len(self._sids)] = [
                sid if sid >= 0 else None for sid in self._sids.tolist()
            ]
            self._list = table.take(
                np.repeat(np.arange(len(self._sids)), self._lengths)
            ).tolist()
        return self._list

    def __len__(self) -> int:
        if self._list is not None:
            return len(self._list)
        return int(self._lengths.sum())

    def __iter__(self):
        return iter(self._materialize())

    def __getitem__(self, index):
        return self._materialize()[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, LazyStateSequence):
            return self._materialize() == other._materialize()
        if isinstance(other, (list, tuple)):
            return self._materialize() == list(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"LazyStateSequence(instants={len(self)})"


class _CompiledMachine:
    """Shared lazy-DFA machinery of the compiled simulators.

    Subclasses provide ``_start_cfg`` (the initial configuration tuple),
    ``_step`` (the oracle-mirrored one-instant transition) and
    ``_outputs`` (per-configuration power row / state id / desync flag).
    """

    def __init__(
        self,
        labeler: PropositionLabeler,
        states: Sequence[PowerState],
        needs_distances: bool,
    ) -> None:
        self._labeler = labeler
        props = labeler.propositions
        self._prop_by_code: list = props + [None]
        self._nsym = len(props) + 1
        self._code_index = {prop: k for k, prop in enumerate(props)}
        # Power lowering: one row per state plus a trailing null row
        # (the "no state" output of fully desynchronised instants).
        rows: Dict[int, int] = {}
        base: List[float] = []
        slope: List[float] = []
        isreg: List[bool] = []
        for k, state in enumerate(states):
            rows[state.sid] = k
            model = state.power_model
            if isinstance(model, ConstantPower):
                base.append(float(model.value))
                slope.append(0.0)
                isreg.append(False)
            else:
                base.append(float(model.intercept))
                slope.append(float(model.slope))
                isreg.append(True)
        base.append(0.0)
        slope.append(0.0)
        isreg.append(False)
        self._row_of = rows
        self._null_row = len(states)
        self._base = np.asarray(base)
        self._slope = np.asarray(slope)
        self._isreg = np.asarray(isreg, dtype=bool)
        # The fused ``base + slope * hd`` emission turns a -0.0 constant
        # into +0.0; fall back on the masked path when one exists.
        self._fused_ok = not bool(np.signbit(self._base).any())
        self._needs = needs_distances
        # Tracker-state interning helpers (per state id).
        self._alt_tuples: Dict[int, tuple] = {}
        self._alt_pos: Dict[int, Dict[int, int]] = {}
        # Configuration tables.
        self._cfg_ids: Dict[tuple, int] = {}
        self._cfg_list: List[tuple] = []
        self._seg: List[List[int]] = []
        self._inext: List[List[Optional[tuple]]] = []
        self._out_prow: List[int] = []
        self._out_seq: List[int] = []
        self._out_desync: List[bool] = []
        self._out_dirty = True
        self._np_prow = self._np_seq = self._np_desync = None
        self._start = self._intern(self._start_cfg())

    # -- subclass hooks -------------------------------------------------
    def _start_cfg(self) -> tuple:
        raise NotImplementedError

    def _step(self, cfg: tuple, code: int) -> Tuple[tuple, tuple]:
        raise NotImplementedError

    def _outputs(self, cfg: tuple) -> Tuple[int, int, bool]:
        raise NotImplementedError

    # -- tracker (de)serialisation --------------------------------------
    def _state_alts(self, state: PowerState) -> tuple:
        alts = self._alt_tuples.get(state.sid)
        if alts is None:
            if isinstance(state.assertion, ChoiceAssertion):
                alts = state.assertion.alternatives()
            else:
                alts = (state.assertion,)
            self._alt_tuples[state.sid] = alts
            self._alt_pos[state.sid] = {
                id(alt): k for k, alt in enumerate(alts)
            }
        return alts

    def _tracker_key(self, state: PowerState, tracker: StateTracker) -> tuple:
        """Interned image of a tracker: ``(alternative, part)`` pairs in
        ``_active`` order — everything ``advance`` branches on."""
        self._state_alts(state)
        pos = self._alt_pos[state.sid]
        key = []
        for alt_tracker in tracker._active:
            p = pos.get(id(alt_tracker.assertion))
            if p is None:  # equality fallback (never hit for memoised alts)
                p = self._alt_tuples[state.sid].index(alt_tracker.assertion)
            key.append((p, alt_tracker.index))
        return tuple(key)

    def _tracker_from_key(self, state: PowerState, key: tuple) -> StateTracker:
        alts = self._state_alts(state)
        tracker = StateTracker(state)
        active = []
        for p, index in key:
            alt_tracker = _AlternativeTracker(alts[p])
            alt_tracker.index = index
            active.append(alt_tracker)
        tracker._active = active
        return tracker

    # -- configuration interning ----------------------------------------
    def _intern(self, cfg: tuple) -> int:
        cid = self._cfg_ids.get(cfg)
        if cid is None:
            cid = len(self._cfg_list)
            self._cfg_ids[cfg] = cid
            self._cfg_list.append(cfg)
            self._seg.append([_UNRESOLVED] * self._nsym)
            self._inext.append([None] * self._nsym)
            prow, seq, desync = self._outputs(cfg)
            self._out_prow.append(prow)
            self._out_seq.append(seq)
            self._out_desync.append(desync)
            self._out_dirty = True
        return cid

    def _instant(self, cfg: int, code: int) -> tuple:
        """Memoised one-instant step: ``(next config id, events)``."""
        row = self._inext[cfg]
        hit = row[code]
        if hit is None:
            ncfg, ev = self._step(self._cfg_list[cfg], code)
            hit = (self._intern(ncfg), ev)
            row[code] = hit
        return hit

    def _resolve_seg(self, cfg: int, code: int) -> int:
        """Compose a whole-segment entry of the fast table.

        A segment is *fast* when its first instant carries at most
        entry/prediction events and lands in a configuration that
        self-loops on the same code with no events at all; the packed
        value is ``(end config << 2) | event bits``.  Everything else is
        marked ``_SLOW`` and stepped per instant.
        """
        c1, ev1 = self._instant(cfg, code)
        value = _SLOW
        if not (ev1[2] or ev1[3]):  # no wrong prediction, no revert
            c2, ev2 = self._instant(c1, code)
            if c2 == c1 and ev2 is _EV0:
                value = (c1 << 2) | (ev1[0] | (ev1[1] << 1))
        self._seg[cfg][code] = value
        return value

    def _sync_out(self) -> None:
        if self._out_dirty:
            self._np_prow = np.asarray(self._out_prow, dtype=np.intp)
            self._np_seq = np.asarray(self._out_seq, dtype=np.int64)
            self._np_desync = np.asarray(self._out_desync, dtype=bool)
            self._out_dirty = False

    # -- trace coding ----------------------------------------------------
    def _coded(self, trace):
        """Integer-coded segment view of ``trace`` (memoised on it)."""
        cache_key = ("compiled_segments", id(self._labeler))
        cache_get = getattr(trace, "cache_get", None)
        if cache_get is not None:
            cached = cache_get(cache_key)
            if cached is not None:
                return cached
        indices, lut = self._labeler.label_indices(trace)
        _starts, lengths, seg_vals = run_length_encode(indices)
        unknown_code = self._nsym - 1
        remap = [
            self._code_index.get(prop, unknown_code) for prop in lut
        ]
        codes = [remap[v] for v in seg_vals.tolist()]
        lens = lengths.tolist()
        unknown = 0
        for code, length in zip(codes, lens):
            if code == unknown_code:
                unknown += length
        data = (len(indices), codes, lens, lengths, unknown)
        cache_set = getattr(trace, "cache_set", None)
        if cache_set is not None:
            cache_set(cache_key, data)
        return data

    # -- the kernel ------------------------------------------------------
    def run(self, trace) -> EstimationResult:
        """Estimate ``trace``; bit-identical to the object oracle."""
        n, codes, lens, lens_np, unknown = self._coded(trace)
        if n == 0:
            return EstimationResult(
                estimated=PowerTrace(
                    np.zeros(0), name=f"{trace.name}.psm"
                ),
                reliable=np.ones(0, dtype=bool),
                state_sequence=[],
            )
        # The walk is a pure function of the coded segments, so it is
        # interned on the (immutable-while-cached) trace just like the
        # labelling: repeat estimation is emission-only.
        walk_key = ("compiled_walk", id(self))
        cache_get = getattr(trace, "cache_get", None)
        walk = cache_get(walk_key) if cache_get is not None else None
        if walk is None:
            walk = self._walk(codes, lens, lens_np)
            cache_set = getattr(trace, "cache_set", None)
            if cache_set is not None:
                cache_set(walk_key, walk)
        runs, run_lens, predictions, wrong, reverted, patches = walk
        return self._materialize(
            trace,
            runs,
            run_lens,
            predictions,
            wrong,
            reverted,
            patches,
            unknown,
        )

    def _walk(self, codes, lens, lens_np):
        """Table walk over the coded segments: per-run end configs plus
        the event totals (predictions/wrong/reverted/patches)."""
        seg = self._seg
        cfg = self._start
        run_cfgs: List[int] = []
        append = run_cfgs.append
        predictions = 0
        entry_t = 0
        t = 0
        tail = None
        i = 0
        for code, length in zip(codes, lens):
            v = seg[cfg][code]
            if v < 0:
                if v == _UNRESOLVED:
                    v = self._resolve_seg(cfg, code)
                if v == _SLOW:
                    tail = self._run_general(
                        codes, lens, i, cfg, t, entry_t, run_cfgs
                    )
                    break
            b = v & 3
            if b:
                if b & 1:
                    entry_t = t
                if b & 2:
                    predictions += 1
            cfg = v >> 2
            append(cfg)
            t += length
            i += 1
        if tail is None:
            run_lens = lens_np
            wrong = reverted = 0
            patches: Sequence[tuple] = ()
        else:
            run_lens_list, extra_pred, wrong, reverted, patches = tail
            predictions += extra_pred
            run_lens = np.asarray(run_lens_list, dtype=np.int64)
        return (
            np.asarray(run_cfgs, dtype=np.intp),
            run_lens,
            predictions,
            wrong,
            reverted,
            patches,
        )

    def _run_general(self, codes, lens, i, cfg, t, entry_t, run_cfgs):
        """Finish a trace that hit an event-bearing / slow segment.

        Same walk as the fast loop plus full event bookkeeping; run
        lengths are tracked explicitly from here on (slow segments split
        into per-instant runs).
        """
        run_lens = lens[:i]
        predictions = wrong = reverted = 0
        patches: List[Tuple[int, int, int]] = []
        seg = self._seg
        n_segs = len(codes)
        while i < n_segs:
            code = codes[i]
            v = seg[cfg][code]
            if v == _UNRESOLVED:
                v = self._resolve_seg(cfg, code)
            if v >= 0:
                b = v & 3
                if b:
                    if b & 1:
                        entry_t = t
                    if b & 2:
                        predictions += 1
                cfg = v >> 2
                run_cfgs.append(cfg)
                run_lens.append(lens[i])
                t += lens[i]
                i += 1
                continue
            stop = t + lens[i]
            while t < stop:
                cfg, ev = self._instant(cfg, code)
                if ev is not _EV0:
                    entered, pred, wr, nrev, rev_sid = ev
                    if nrev:
                        # Revert accounting uses the entry instant of the
                        # *wrong* prediction, before any entry this instant.
                        reverted += nrev * (t - entry_t)
                        patches.append((entry_t, t, rev_sid))
                    if entered:
                        entry_t = t
                    predictions += pred
                    wrong += wr
                run_cfgs.append(cfg)
                run_lens.append(1)
                t += 1
            i += 1
        return run_lens, predictions, wrong, reverted, patches

    def _materialize(
        self,
        trace,
        runs,
        run_lens,
        predictions,
        wrong,
        reverted,
        patches,
        unknown,
    ) -> EstimationResult:
        """Vectorised emission from the per-run end configurations."""
        self._sync_out()
        prow = self._np_prow[runs]
        drun = self._np_desync[runs]
        base = self._base[prow]
        distances = None
        if self._needs:
            distances = trace.hamming_distances()
            slope = self._slope[prow]
            if self._fused_ok:
                est = np.repeat(base, run_lens)
                if slope.any():
                    est = est + np.repeat(slope, run_lens) * distances
            else:
                est = np.repeat(base, run_lens)
                isreg = self._isreg[prow]
                if isreg.any():
                    mask = np.repeat(isreg, run_lens)
                    fused = est + np.repeat(slope, run_lens) * distances
                    est = np.where(mask, fused, est)
        else:
            est = np.repeat(base, run_lens)
        if patches:
            if not est.flags.writeable:  # pragma: no cover - paranoia
                est = est.copy()
            for start, stop, sid in patches:
                r = self._row_of[sid]
                if self._isreg[r]:
                    est[start:stop] = (
                        self._base[r]
                        + self._slope[r] * distances[start:stop]
                    )
                else:
                    est[start:stop] = self._base[r]
        reliable = np.repeat(~drun, run_lens)
        desync = int(run_lens[drun].sum())
        return EstimationResult(
            estimated=PowerTrace(
                np.clip(est, 0.0, None), name=f"{trace.name}.psm"
            ),
            reliable=reliable,
            predictions=predictions,
            wrong_predictions=wrong,
            desync_instants=desync,
            unknown_instants=unknown,
            reverted_instants=reverted,
            state_sequence=LazyStateSequence(
                self._np_seq[runs], run_lens
            ),
        )

    def table_stats(self) -> Dict[str, int]:
        """Size of the lazily-built tables (serving observability)."""
        resolved = sum(
            1 for row in self._seg for v in row if v != _UNRESOLVED
        )
        return {
            "configs": len(self._cfg_list),
            "symbols": self._nsym,
            "resolved_edges": resolved,
        }


class CompiledSingle(_CompiledMachine):
    """Compiled form of :class:`SinglePsmSimulator` (chain PSM)."""

    def __init__(self, oracle: SinglePsmSimulator) -> None:
        self.oracle = oracle
        super().__init__(
            oracle.labeler,
            oracle.psm.states,
            _needs_distances(oracle.psm.states),
        )

    def _start_cfg(self) -> tuple:
        return _START

    def _outputs(self, cfg: tuple) -> Tuple[int, int, bool]:
        if cfg == _START:
            return self._null_row, -1, True
        sid, _tkey, synced = cfg
        return (
            self._row_of[sid],
            sid if synced else -1,
            not synced,
        )

    def _step(self, cfg: tuple, code: int) -> Tuple[tuple, tuple]:
        psm = self.oracle.psm
        prop = self._prop_by_code[code]
        if cfg == _START:
            # First instant: enter the initial state (Sec. III-C).
            current = psm.initial_states[0]
            tracker = StateTracker(current)
            synced = prop is not None and tracker.enter(prop)
        else:
            sid, tkey, synced = cfg
            current = psm.state(sid)
            if synced:
                tracker = self._tracker_from_key(current, tkey)
                verdict, _ = tracker.advance(prop)
                if verdict == EXIT:
                    moved = False
                    for transition in psm.successors(current.sid):
                        if transition.enabling != prop:
                            continue
                        nxt = psm.state(transition.dst)
                        candidate = StateTracker(nxt)
                        if candidate.enter(prop):
                            current = nxt
                            tracker = candidate
                            moved = True
                            break
                    if not moved:
                        synced = False
                elif verdict == VIOLATION:
                    synced = False
            else:
                candidate = StateTracker(current)
                if prop is not None and candidate.enter(prop):
                    tracker = candidate
                    synced = True
        ncfg = (
            current.sid,
            self._tracker_key(current, tracker) if synced else (),
            bool(synced),
        )
        return ncfg, _EV0


class CompiledMulti(_CompiledMachine):
    """Compiled form of :class:`MultiPsmSimulator` (HMM-driven set).

    Configurations carry the full revert context: the untried choice
    candidates live on as *shadow trackers* advanced in lockstep with
    the predicted state, so a wrong prediction recovers by promoting the
    HMM-best surviving shadow — exactly the state the oracle's replay
    would pick, without replaying.
    """

    def __init__(self, oracle: MultiPsmSimulator) -> None:
        self.oracle = oracle
        super().__init__(
            oracle.labeler,
            oracle._all_states,
            _needs_distances(oracle._all_states),
        )

    def _start_cfg(self) -> tuple:
        # (current sid, tracker key, last-valid sid, entry predecessor,
        #  entry-was-choice, shadow trackers, banned paths)
        return (None, (), None, None, False, (), frozenset())

    def _outputs(self, cfg: tuple) -> Tuple[int, int, bool]:
        cur_sid, _tkey, lv_sid = cfg[0], cfg[1], cfg[2]
        if cur_sid is not None:
            return self._row_of[cur_sid], cur_sid, False
        if lv_sid is not None:
            return self._row_of[lv_sid], -1, True
        return self._null_row, -1, True

    def _step(self, cfg: tuple, code: int) -> Tuple[tuple, tuple]:
        oracle = self.oracle
        hmm = oracle.hmm
        prop = self._prop_by_code[code]
        cur_sid, tkey, lv_sid, eprev, echoice, shadows, banned = cfg
        banned_set = set(banned)
        if cur_sid is not None:
            current = hmm.state(cur_sid)
            tracker = self._tracker_from_key(current, tkey)
        else:
            current = None
            tracker = None
        last_valid = hmm.state(lv_sid) if lv_sid is not None else None
        shadow_list = [
            (sid, self._tracker_from_key(hmm.state(sid), key))
            for sid, key in shadows
        ]
        entered = False
        predictions = wrong = nrev = 0
        rev_sid = -1
        guard = 0
        limit = len(oracle._all_states) + 2
        while current is not None:
            guard += 1
            if guard > limit:
                current = None
                break
            verdict, _satisfied = tracker.advance(prop)
            if verdict == STAY:
                break
            if verdict == EXIT:
                candidates = oracle._successor_candidates(
                    current.sid, prop, banned_set
                )
                if candidates:
                    belief = hmm.belief_for_state(current.sid)
                    best = hmm.best_candidate(belief, candidates)
                    eprev = current.sid
                    current = hmm.state(best)
                    tracker = StateTracker(current)
                    tracker.enter(prop)
                    echoice = len(candidates) > 1
                    if echoice:
                        predictions = 1
                    last_valid = current
                    entered = True
                    shadow_list = []
                    for sid in candidates:
                        if sid == best:
                            continue
                        shadow = StateTracker(hmm.state(sid))
                        if shadow.enter(prop):
                            shadow_list.append((sid, shadow))
                else:
                    current = None
                break
            # VIOLATION: wrong prediction (counted once per choice), then
            # revert to the best surviving shadow of the choice point.
            if echoice:
                wrong = 1
                echoice = False
            if eprev is not None:
                banned_set.add((eprev, current.sid))
            if shadow_list:
                sids = [sid for sid, _ in shadow_list]
                belief = (
                    hmm.belief_for_state(eprev)
                    if eprev is not None
                    else hmm.initial_belief()
                )
                best = hmm.best_candidate(belief, sids)
                sid, shadow_tracker = shadow_list.pop(sids.index(best))
                nrev += 1
                rev_sid = sid
                current = hmm.state(sid)
                tracker = shadow_tracker
                last_valid = current
                # Loop again: re-advance the corrected state on prop.
            else:
                current = None
                break
        if current is None:
            resynced = oracle._resync(prop, last_valid)
            if resynced is not None:
                sid, anywhere = resynced
                current = hmm.state(sid)
                tracker = StateTracker(current)
                if anywhere:
                    tracker.enter_anywhere(prop)
                else:
                    tracker.enter(prop)
                eprev = None
                echoice = False
                last_valid = current
                entered = True
                shadow_list = []
        if current is None:
            ncfg = (
                None,
                (),
                last_valid.sid if last_valid is not None else None,
                None,
                False,
                (),
                frozenset(banned_set),
            )
        else:
            if not entered:
                # Lockstep shadow advance: dead shadows can never win a
                # future revert (their replay would fail), so drop them.
                alive = []
                for sid, shadow in shadow_list:
                    verdict, _ = shadow.advance(prop)
                    if verdict == STAY:
                        alive.append((sid, shadow))
                shadow_list = alive
            ncfg = (
                current.sid,
                self._tracker_key(current, tracker),
                current.sid,
                eprev,
                echoice,
                tuple(
                    (sid, self._tracker_key(hmm.state(sid), shadow))
                    for sid, shadow in shadow_list
                ),
                frozenset(banned_set),
            )
        if entered or predictions or wrong or nrev:
            ev = (1 if entered else 0, predictions, wrong, nrev, rev_sid)
        else:
            ev = _EV0
        return ncfg, ev


class CompiledBundle:
    """One-shot dense lowering of a PSM bundle plus its batch kernel.

    Holds the inspectable array form of the model — proposition code
    table, per-PSM transition/entry matrices, per-state power vectors,
    the HMM ``A``/``B``/``pi`` — and a :class:`CompiledMulti` machine
    whose lazily-resolved tables are shared across every trace and
    batch run through it (that sharing is where the batch speedup over
    per-trace object dispatch comes from).
    """

    def __init__(
        self,
        psms: Sequence[PSM],
        labeler: PropositionLabeler,
        hmm=None,
        oracle: Optional[MultiPsmSimulator] = None,
    ) -> None:
        start = perf_counter()
        self.psms = list(psms)
        self.labeler = labeler
        self.oracle = oracle or MultiPsmSimulator(self.psms, labeler, hmm)
        self.hmm = self.oracle.hmm
        self.machine: CompiledMulti = self.oracle._compiled()
        props = labeler.propositions
        self.propositions = props
        self.nsym = len(props) + 1
        code_of = {prop: k for k, prop in enumerate(props)}
        states = self.oracle._all_states
        self.state_sids = np.asarray(
            [state.sid for state in states], dtype=np.int32
        )
        self.mu = np.asarray([state.mu for state in states])
        self.sigma = np.asarray([state.sigma for state in states])
        self.A = self.hmm.A
        self.B = self.hmm.B
        self.pi = self.hmm.pi
        row_of = {state.sid: k for k, state in enumerate(states)}
        # Per-PSM transition matrices: first matching successor row per
        # (state row, proposition code), -1 where no transition fires.
        self.transition_matrices: List[np.ndarray] = []
        for psm in self.psms:
            matrix = np.full((len(states), self.nsym), -1, dtype=np.int32)
            for state in psm.states:
                row = row_of[state.sid]
                for transition in psm.successors(state.sid):
                    code = code_of.get(transition.enabling)
                    if code is None or matrix[row, code] >= 0:
                        continue
                    matrix[row, code] = row_of.get(transition.dst, -1)
            self.transition_matrices.append(matrix)
        # Entry matrix: can state (row) be entered on proposition (code)?
        entry = np.zeros((len(states), self.nsym), dtype=np.int8)
        for k, state in enumerate(states):
            tracker = StateTracker(state)
            for code, prop in enumerate(props):
                if tracker.can_enter(prop):
                    entry[k, code] = 1
        self.entry_matrix = entry
        # Proposition code table (dense labelling alphabets only): packed
        # atom valuation -> universe position.
        if 0 < len(labeler.atoms) <= _DENSE_MAX_BITS:
            self.code_table = labeler._dense_tables()[0]
        else:
            self.code_table = None
        self.compile_wall_s = perf_counter() - start

    @classmethod
    def from_simulator(cls, simulator: MultiPsmSimulator) -> "CompiledBundle":
        """Lower an existing simulator (shares its caches and machine)."""
        return cls(
            simulator.psms,
            simulator.labeler,
            hmm=simulator.hmm,
            oracle=simulator,
        )

    def estimate(self, trace) -> EstimationResult:
        """Compiled estimate of one trace (bit-exact vs the oracle)."""
        return self.machine.run(trace)

    def run_batch(self, traces: Sequence) -> List[EstimationResult]:
        """Run a coalesced batch through the shared compiled tables.

        Traces are integer-coded up front, then swept through the one
        machine; every table edge resolved for one lane is reused by
        all the others (and by every later batch).
        """
        for trace in traces:
            self.machine._coded(trace)
        return [self.machine.run(trace) for trace in traces]

    def stats(self) -> Dict[str, object]:
        """Compile/lowering figures for ``/v1/models`` and the CLI."""
        info: Dict[str, object] = {
            "states": int(len(self.state_sids)),
            "symbols": int(self.nsym),
            "compile_wall_s": float(self.compile_wall_s),
        }
        info.update(self.machine.table_stats())
        return info
