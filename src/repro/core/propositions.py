"""Atomic propositions and propositions (paper Definition 1).

An *atomic proposition* is a logic formula without connectives — here,
either a comparison between a variable and a constant or a comparison
between two variables.  A *proposition* is an AND-composition of atomic
propositions.  The miner (``repro.core.mining``) builds, for each simulation
instant, the minterm of the mined atomic-proposition alphabet, so that in
every instant exactly one proposition holds — the property the paper's
proposition traces rely on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..traces.functional import FunctionalTrace

#: Comparison operators supported by atomic propositions.
OPERATORS = ("==", "!=", "<", "<=", ">", ">=")

_OP_FUNCS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class AtomicProposition:
    """Base class for atomic propositions."""

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        """Truth value under one variable assignment."""
        raise NotImplementedError

    def evaluate_trace(self, trace: FunctionalTrace) -> np.ndarray:
        """Vector of truth values over a whole functional trace."""
        raise NotImplementedError

    def variables(self) -> Tuple[str, ...]:
        """Names of the variables the proposition predicates over."""
        raise NotImplementedError


class VarEqualsConst(AtomicProposition):
    """``var == value`` (booleans display as ``var=true`` / ``var=false``)."""

    __slots__ = ("var", "value", "is_bool")

    def __init__(self, var: str, value: int, is_bool: bool = False) -> None:
        self.var = var
        self.value = int(value)
        self.is_bool = is_bool

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return int(assignment[self.var]) == self.value

    def evaluate_trace(self, trace: FunctionalTrace) -> np.ndarray:
        return np.asarray(trace.column(self.var) == self.value, dtype=bool)

    def variables(self) -> Tuple[str, ...]:
        return (self.var,)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, VarEqualsConst)
            and self.var == other.var
            and self.value == other.value
        )

    def __hash__(self) -> int:
        return hash(("VarEqualsConst", self.var, self.value))

    def __str__(self) -> str:
        if self.is_bool:
            return f"{self.var}={'true' if self.value else 'false'}"
        return f"{self.var}={self.value}"

    def __repr__(self) -> str:
        return f"VarEqualsConst({self.var!r}, {self.value})"


class VarCompare(AtomicProposition):
    """``left <op> right`` between two trace variables (e.g. ``v3 > v4``)."""

    __slots__ = ("left", "op", "right")

    def __init__(self, left: str, op: str, right: str) -> None:
        if op not in OPERATORS:
            raise ValueError(f"unknown operator {op!r}")
        self.left = left
        self.op = op
        self.right = right

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        return bool(
            _OP_FUNCS[self.op](
                int(assignment[self.left]), int(assignment[self.right])
            )
        )

    def evaluate_trace(self, trace: FunctionalTrace) -> np.ndarray:
        return np.asarray(
            _OP_FUNCS[self.op](
                trace.column(self.left), trace.column(self.right)
            ),
            dtype=bool,
        )

    def variables(self) -> Tuple[str, ...]:
        return (self.left, self.right)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, VarCompare)
            and self.left == other.left
            and self.op == other.op
            and self.right == other.right
        )

    def __hash__(self) -> int:
        return hash(("VarCompare", self.left, self.op, self.right))

    def __str__(self) -> str:
        return f"{self.left}{self.op}{self.right}"

    def __repr__(self) -> str:
        return f"VarCompare({self.left!r}, {self.op!r}, {self.right!r})"


class Proposition:
    """A minterm over an atomic-proposition alphabet.

    ``positives`` are the atoms that hold, ``negatives`` the atoms that do
    not.  Two propositions built over the same alphabet are either equal or
    mutually exclusive, which guarantees the paper's requirement that *one
    and only one* proposition of ``Prop`` holds at every instant.

    The display form lists only the positive atoms, matching the paper's
    examples (``p_a: v1=true & v2=false & v3>v4``).
    """

    __slots__ = ("label", "positives", "negatives", "_hash")

    def __init__(
        self,
        label: str,
        positives: Sequence[AtomicProposition],
        negatives: Sequence[AtomicProposition] = (),
    ) -> None:
        self.label = label
        self.positives: FrozenSet[AtomicProposition] = frozenset(positives)
        self.negatives: FrozenSet[AtomicProposition] = frozenset(negatives)
        if self.positives & self.negatives:
            raise ValueError("an atom cannot be both positive and negative")
        self._hash = hash((self.positives, self.negatives))

    def evaluate(self, assignment: Mapping[str, int]) -> bool:
        """Truth value of the minterm under one variable assignment."""
        return all(a.evaluate(assignment) for a in self.positives) and not any(
            a.evaluate(assignment) for a in self.negatives
        )

    def evaluate_trace(self, trace: FunctionalTrace) -> np.ndarray:
        """Vector of truth values over a whole functional trace."""
        result = np.ones(len(trace), dtype=bool)
        for atom in self.positives:
            result &= atom.evaluate_trace(trace)
        for atom in self.negatives:
            result &= ~atom.evaluate_trace(trace)
        return result

    def signature(self) -> Tuple[FrozenSet[AtomicProposition], FrozenSet[AtomicProposition]]:
        """Canonical identity: the (positives, negatives) pair."""
        return (self.positives, self.negatives)

    def __eq__(self, other: object) -> bool:
        # The simulators compare interned universe propositions millions
        # of times per run; the identity and hash shortcuts avoid the
        # frozenset comparisons on the hot path.
        if self is other:
            return True
        return (
            isinstance(other, Proposition)
            and self._hash == other._hash
            and self.positives == other.positives
            and self.negatives == other.negatives
        )

    def __hash__(self) -> int:
        return self._hash

    def formula(self) -> str:
        """Readable conjunction of the positive atoms."""
        if not self.positives:
            return "true"
        return " & ".join(sorted(str(a) for a in self.positives))

    def __str__(self) -> str:
        return self.label

    def __repr__(self) -> str:
        return f"Proposition({self.label!r}: {self.formula()})"


@dataclass(frozen=True)
class RunSegment:
    """One maximal constant stretch of a run-length-encoded trace view.

    The RLE invariant: a segment never spans a proposition change —
    ``prop`` holds at every instant of ``[start, start + length)`` and a
    *different* value (or the end of the trace) follows.
    """

    start: int
    length: int
    prop: Optional[Proposition]

    @property
    def stop(self) -> int:
        """First instant past the segment (exclusive bound)."""
        return self.start + self.length


def run_length_encode(
    indices: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """RLE of an index trace: ``(starts, lengths, segment_indices)``.

    Segments are maximal runs of an identical index, so by construction
    no segment spans an index change.
    """
    n = len(indices)
    if n == 0:
        empty = np.zeros(0, dtype=np.int64)
        return empty, empty, np.zeros(0, dtype=indices.dtype)
    change = np.nonzero(indices[1:] != indices[:-1])[0]
    starts = np.concatenate(([0], change + 1)).astype(np.int64)
    bounds = np.concatenate((starts[1:], [n]))
    return starts, bounds - starts, indices[starts]


class PropositionTrace:
    """A proposition trace (Def. 2): one proposition per instant.

    ``trace_id`` identifies the originating functional trace; PSM states
    remember it so power attributes can be recomputed from the right
    reference power trace after merges.

    The trace is backed by an ``np.int32`` index array over a proposition
    ``alphabet`` (the mined universe in first-appearance order); the
    object API (``[]``, iteration, :meth:`at`) materialises proposition
    objects lazily, while the hot consumers — the miner, the simulators
    and the checkpoint writer — work on :attr:`indices` or the
    run-length-encoded :meth:`rle` view directly.
    """

    def __init__(
        self, propositions: Sequence[Proposition], trace_id: int = 0
    ) -> None:
        alphabet: List[Proposition] = []
        positions: Dict[Proposition, int] = {}
        indices = np.empty(len(propositions), dtype=np.int32)
        for i, prop in enumerate(propositions):
            pos = positions.get(prop)
            if pos is None:
                pos = positions[prop] = len(alphabet)
                alphabet.append(prop)
            indices[i] = pos
        self._init_from_indices(indices, alphabet, trace_id)

    @classmethod
    def from_indices(
        cls,
        indices: np.ndarray,
        alphabet: Sequence[Proposition],
        trace_id: int = 0,
    ) -> "PropositionTrace":
        """Build a trace directly from an index array over ``alphabet``."""
        trace = cls.__new__(cls)
        trace._init_from_indices(
            np.asarray(indices, dtype=np.int32), list(alphabet), trace_id
        )
        return trace

    def _init_from_indices(
        self,
        indices: np.ndarray,
        alphabet: List[Proposition],
        trace_id: int,
    ) -> None:
        indices = np.ascontiguousarray(indices, dtype=np.int32)
        indices.setflags(write=False)
        self._indices = indices
        self._alphabet = alphabet
        self._objects: Optional[List[Proposition]] = None
        self.trace_id = trace_id

    # ------------------------------------------------------------------
    # index view
    # ------------------------------------------------------------------
    @property
    def indices(self) -> np.ndarray:
        """Read-only ``np.int32`` proposition index per instant."""
        return self._indices

    @property
    def alphabet(self) -> List[Proposition]:
        """The propositions the index array refers to."""
        return list(self._alphabet)

    def rle(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run-length encoding: ``(starts, lengths, segment_indices)``."""
        return run_length_encode(self._indices)

    def segments(self) -> Iterator[RunSegment]:
        """Iterate the RLE view as :class:`RunSegment` objects."""
        starts, lengths, seg_indices = self.rle()
        for start, length, index in zip(
            starts.tolist(), lengths.tolist(), seg_indices.tolist()
        ):
            yield RunSegment(start, length, self._alphabet[index])

    # ------------------------------------------------------------------
    # object API
    # ------------------------------------------------------------------
    def _materialise(self) -> List[Proposition]:
        if self._objects is None:
            lut = np.empty(max(len(self._alphabet), 1), dtype=object)
            lut[: len(self._alphabet)] = self._alphabet
            self._objects = lut.take(self._indices).tolist()
        return self._objects

    def __len__(self) -> int:
        return len(self._indices)

    def __getitem__(self, instant: int) -> Proposition:
        return self._materialise()[instant]

    def __iter__(self):
        return iter(self._materialise())

    def at(self, instant: int) -> Proposition:
        """Proposition holding at ``instant`` (nil beyond the end).

        Returns ``None`` for instants past the end of the trace, matching
        the paper's *nil* sentinel in Fig. 3.
        """
        if 0 <= instant < len(self._indices):
            return self._alphabet[self._indices[instant]]
        return None

    def distinct(self) -> Dict[Proposition, int]:
        """Occurrence count of each distinct proposition.

        Keys appear in first-occurrence order, matching the historical
        per-instant accumulation.
        """
        if len(self._indices) == 0:
            return {}
        uniq, first, counts = np.unique(
            self._indices, return_index=True, return_counts=True
        )
        order = np.argsort(first)
        return {
            self._alphabet[uniq[k]]: int(counts[k]) for k in order
        }

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"PropositionTrace(id={self.trace_id}, len={len(self)})"
