"""The ``simplify`` procedure (paper Sec. IV, Fig. 6a).

``simplify`` shortens the chain PSMs produced by the generator: sequences
of *adjacent* states that are mergeable from the power point of view are
iteratively collapsed into a single state whose assertion is the cascade
``{p_i; p_i+1; ...}`` and whose power attributes are recomputed over the
union ``[start_new, stop_new]`` of the merged intervals in the reference
power trace.

The implementation walks the chain once, greedily extending a run of
mergeable neighbours and backtracking one position after each merge (a
merge can enable a merge with the previous state), which keeps the
procedure linear in the chain length up to the number of merges — the
fixpoint the paper's "iteratively executes till no new mergeable state is
found" demands.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from ..traces.power import PowerTrace
from .attributes import Interval, PowerAttributes
from .mergeability import MergePolicy
from .psm import PSM, PowerState, Transition
from .temporal import SequenceAssertion


def coalesce_intervals(intervals: Sequence[Interval]) -> List[Interval]:
    """Fuse contiguous same-trace intervals (``stop + 1 == next.start``)."""
    result: List[Interval] = []
    for interval in intervals:
        if (
            result
            and result[-1].trace_id == interval.trace_id
            and result[-1].stop + 1 == interval.start
        ):
            result[-1] = Interval(
                interval.trace_id, result[-1].start, interval.stop
            )
        else:
            result.append(interval)
    return result


def merge_adjacent(
    first: PowerState,
    second: PowerState,
    power_traces: Mapping[int, PowerTrace],
) -> PowerState:
    """Build the replacement state for two adjacent mergeable states.

    The new assertion is ``{a_first; a_second}`` (flattened when either is
    already a sequence); the new attributes are measured over the combined
    interval of the reference power trace, per the paper's
    ``start_new = start_i``, ``stop_new = stop_{i+j}`` rule.
    """
    assertion = SequenceAssertion([first.assertion, second.assertion])
    intervals = coalesce_intervals(
        list(first.intervals) + list(second.intervals)
    )
    attributes = PowerAttributes.from_intervals(intervals, power_traces)
    return PowerState(
        assertion=assertion, attributes=attributes, intervals=intervals
    )


def chain_states(psm: PSM) -> List[PowerState]:
    """States of a chain PSM in chain order (initial state first)."""
    if not psm.initial_states:
        return psm.states
    order: List[PowerState] = []
    seen = set()
    current: Optional[int] = psm.initial_states[0].sid
    while current is not None and current not in seen:
        order.append(psm.state(current))
        seen.add(current)
        successors = psm.successors(current)
        current = successors[0].dst if successors else None
    for state in psm.states:  # disconnected leftovers, defensive
        if state.sid not in seen:
            order.append(state)
    return order


def rebuild_chain(states: Sequence[PowerState], name: str) -> PSM:
    """A chain PSM over ``states`` with exit-proposition transitions."""
    psm = PSM(name=name)
    for index, state in enumerate(states):
        psm.add_state(state, initial=index == 0)
    for prev, nxt in zip(states, states[1:]):
        psm.add_transition(
            Transition(prev.sid, nxt.sid, prev.assertion.exit_proposition())
        )
    return psm


def simplify(
    psm: PSM,
    power_traces: Mapping[int, PowerTrace],
    policy: Optional[MergePolicy] = None,
) -> PSM:
    """Merge adjacent mergeable states of a chain PSM to fixpoint.

    Returns a new chain PSM (the input is left untouched).  Only chain
    PSMs — the generator's output shape — are supported; ``simplify``
    runs before ``join`` in the flow, exactly as in the paper.
    """
    if not psm.is_chain():
        raise ValueError("simplify expects a chain PSM")
    policy = policy or MergePolicy()
    states = chain_states(psm)
    result: List[PowerState] = []
    for state in states:
        result.append(state)
        # Backtrack: merge the tail pair as long as it is mergeable.
        while len(result) >= 2 and policy.mergeable(result[-2], result[-1]):
            second = result.pop()
            first = result.pop()
            result.append(merge_adjacent(first, second, power_traces))
    merged = rebuild_chain(result, psm.name)
    merged.validate()
    return merged


def simplify_all(
    psms: Sequence[PSM],
    power_traces: Mapping[int, PowerTrace],
    policy: Optional[MergePolicy] = None,
) -> List[PSM]:
    """Apply :func:`simplify` to every PSM of a set."""
    return [simplify(psm, power_traces, policy) for psm in psms]
