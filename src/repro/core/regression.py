"""Data-dependent state refinement (paper Sec. IV, final step).

A power state with a "too high" standard deviation is likely
*data-dependent*: its consumption follows the data fed to the IP's inputs
rather than a constant.  For such states the constant output ``mu`` is
replaced by a linear function of the Hamming distance between consecutive
primary-input values, extracted by least-squares regression over the
training intervals — but only when the linear correlation between Hamming
distance and power is strong, the necessary condition the paper cites for
an accurate regression.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..traces.functional import FunctionalTrace
from ..traces.power import PowerTrace
from .psm import PSM, PowerState, RegressionPower


@dataclass(frozen=True)
class RefinePolicy:
    """Knobs of the data-dependent refinement.

    Attributes
    ----------
    cv_threshold:
        A state is a refinement candidate when its coefficient of
        variation ``sigma / mu`` exceeds this value ("too high" standard
        deviation).
    corr_threshold:
        Minimum absolute Pearson correlation between Hamming distances and
        power values for the regression to be installed ("strong linear
        correlation" gate).
    min_samples:
        Minimum number of training instants needed to attempt the fit.
    pool_same_body:
        When True, states whose assertions share the same *body*
        propositions (the conditions that hold while the state is
        occupied) are also regressed jointly: their pooled samples span
        the data diversity that each state alone may lack (e.g. a read
        state trained only on walking-ones data), and the joint line is
        installed on every state of the group the per-state pass left
        constant.  Aliased states then predict by data activity no matter
        which of them the HMM picks.
    """

    cv_threshold: float = 0.15
    corr_threshold: float = 0.7
    min_samples: int = 8
    pool_same_body: bool = True

    def __post_init__(self) -> None:
        if self.cv_threshold < 0:
            raise ValueError("cv_threshold must be non-negative")
        if not 0 < self.corr_threshold <= 1:
            raise ValueError("corr_threshold must be in (0, 1]")
        if self.min_samples < 3:
            raise ValueError("min_samples must be at least 3")

    def is_candidate(self, state: PowerState) -> bool:
        """True when the state's variance marks it as data-dependent."""
        if state.n < self.min_samples:
            return False
        if state.mu == 0.0:
            return state.sigma > 0.0
        return state.sigma / abs(state.mu) > self.cv_threshold


@dataclass
class RegressionSample:
    """Paired (Hamming distance, power) samples of one state."""

    distances: np.ndarray
    powers: np.ndarray


def collect_samples(
    state: PowerState,
    functional_traces: Mapping[int, FunctionalTrace],
    power_traces: Mapping[int, PowerTrace],
    hamming_cache: dict,
) -> RegressionSample:
    """Gather the regression samples over all the state's intervals.

    The predictor at instant ``t`` is the Hamming distance between the
    primary-input values at ``t-1`` and ``t`` of the originating
    functional trace.
    """
    distances = []
    powers = []
    for interval in state.intervals:
        trace = functional_traces[interval.trace_id]
        if interval.trace_id not in hamming_cache:
            hamming_cache[interval.trace_id] = trace.hamming_distances()
        hd = hamming_cache[interval.trace_id]
        power = power_traces[interval.trace_id]
        distances.append(hd[interval.start : interval.stop + 1])
        powers.append(power.segment(interval.start, interval.stop))
    return RegressionSample(
        distances=np.concatenate(distances).astype(np.float64),
        powers=np.concatenate(powers).astype(np.float64),
    )


def fit_regression(sample: RegressionSample) -> RegressionPower:
    """Least-squares line power = intercept + slope * HD, with Pearson r."""
    x, y = sample.distances, sample.powers
    if len(x) < 2 or np.std(x) == 0.0 or np.std(y) == 0.0:
        raise ValueError("degenerate sample: correlation undefined")
    r = float(np.corrcoef(x, y)[0, 1])
    slope, intercept = np.polyfit(x, y, 1)
    return RegressionPower(
        slope=float(slope), intercept=float(intercept), correlation=r
    )


def refine_state(
    state: PowerState,
    functional_traces: Mapping[int, FunctionalTrace],
    power_traces: Mapping[int, PowerTrace],
    policy: RefinePolicy,
    hamming_cache: dict,
) -> bool:
    """Install a regression model on one state if the gate passes.

    Returns True when the state became data-dependent.
    """
    sample = collect_samples(
        state, functional_traces, power_traces, hamming_cache
    )
    x = sample.distances
    if len(x) < policy.min_samples or np.std(x) == 0.0:
        return False
    if np.std(sample.powers) == 0.0:
        return False
    model = fit_regression(sample)
    if model.correlation < policy.corr_threshold or model.slope <= 0:
        # Dynamic power is monotone non-decreasing in switching activity:
        # an anti-correlated fit is an artifact of a degenerate training
        # phase and would extrapolate nonsense.
        return False
    state.power_model = model
    return True


def assertion_body(state: PowerState):
    """The set of propositions holding while the state is occupied."""
    from .temporal import ChoiceAssertion, SequenceAssertion

    assertion = state.assertion
    if isinstance(assertion, ChoiceAssertion):
        alternatives = assertion.alternatives()
    else:
        alternatives = (assertion,)
    bodies = set()
    for alt in alternatives:
        parts = alt.parts if isinstance(alt, SequenceAssertion) else (alt,)
        for part in parts:
            bodies.add(part.first_proposition())
    return frozenset(bodies)


def _refine_pooled(
    psms: Sequence[PSM],
    functional_traces: Mapping[int, FunctionalTrace],
    power_traces: Mapping[int, PowerTrace],
    policy: RefinePolicy,
    hamming_cache: dict,
) -> int:
    """Joint regression over states sharing the same assertion body."""
    groups: dict = {}
    for psm in psms:
        for state in psm.states:
            groups.setdefault(assertion_body(state), []).append(state)
    refined = 0
    for states in groups.values():
        unrefined = [s for s in states if not s.is_data_dependent]
        if len(states) < 2 or not unrefined:
            continue
        samples = [
            collect_samples(s, functional_traces, power_traces, hamming_cache)
            for s in states
        ]
        x = np.concatenate([s.distances for s in samples])
        y = np.concatenate([s.powers for s in samples])
        if len(x) < policy.min_samples or np.std(x) == 0.0:
            continue
        mean_y = float(np.mean(y))
        if mean_y <= 0.0 or float(np.std(y)) / mean_y <= policy.cv_threshold:
            continue  # the group is collectively constant: keep it so
        model = fit_regression(RegressionSample(x, y))
        if model.correlation < policy.corr_threshold or model.slope <= 0:
            continue
        for state in unrefined:
            state.power_model = model
            refined += 1
    return refined


def refine_data_dependent(
    psms: Sequence[PSM],
    functional_traces: Mapping[int, FunctionalTrace],
    power_traces: Mapping[int, PowerTrace],
    policy: RefinePolicy = RefinePolicy(),
) -> int:
    """Refine every candidate state of a PSM set.

    Runs the per-state pass of the paper first, then (when
    ``policy.pool_same_body``) the joint same-body pass.  Returns the
    number of states whose constant output was replaced by a regression
    model.
    """
    refined = 0
    hamming_cache: dict = {}
    for psm in psms:
        for state in psm.states:
            if not policy.is_candidate(state):
                continue
            if refine_state(
                state, functional_traces, power_traces, policy, hamming_cache
            ):
                refined += 1
    if policy.pool_same_body:
        refined += _refine_pooled(
            psms, functional_traces, power_traces, policy, hamming_cache
        )
    return refined
