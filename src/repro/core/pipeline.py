"""End-to-end PSM flow (paper Fig. 1).

``PsmFlow`` chains every step of the methodology:

1. mine proposition traces from the training functional traces;
2. run PSMGenerator on each (proposition, power) pair — one chain PSM per
   training trace;
3. ``simplify`` each PSM, then ``join`` the set into the reduced set;
4. refine data-dependent states with the Hamming-distance regression;
5. build the HMM and expose the multi-PSM simulator.

Each optimisation stage can be disabled individually, which is what the
ablation benchmarks sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..traces.functional import FunctionalTrace
from ..traces.power import PowerTrace
from .generator import generate_psms
from .hmm import PsmHmm
from .mergeability import MergePolicy
from .metrics import mae, mre, rmse
from .mining import AssertionMiner, MinerConfig, MiningResult
from .psm import PSM, PowerState, total_states, total_transitions
from .regression import RefinePolicy, refine_data_dependent
from .join import join as join_psms
from .simplify import simplify_all
from .simulation import EstimationResult, MultiPsmSimulator


@dataclass
class FlowConfig:
    """Configuration of the whole flow, one knob set per stage."""

    miner: MinerConfig = field(default_factory=MinerConfig)
    merge: MergePolicy = field(default_factory=MergePolicy)
    refine: RefinePolicy = field(default_factory=RefinePolicy)
    apply_simplify: bool = True
    apply_join: bool = True
    apply_refine: bool = True


@dataclass
class FlowReport:
    """Summary of one fitted flow (feeds the Table II columns)."""

    generation_time: float = 0.0
    n_atoms: int = 0
    n_propositions: int = 0
    n_raw_states: int = 0
    n_states: int = 0
    n_transitions: int = 0
    n_psms: int = 0
    n_refined_states: int = 0
    training_instants: int = 0

    def row(self) -> tuple:
        """(TS, gen. time, states, transitions) — Table II fragment."""
        return (
            self.training_instants,
            round(self.generation_time, 3),
            self.n_states,
            self.n_transitions,
        )


class PsmFlow:
    """The automatic PSM-generation methodology, end to end."""

    def __init__(self, config: Optional[FlowConfig] = None) -> None:
        self.config = config or FlowConfig()
        self.mining: Optional[MiningResult] = None
        self.raw_psms: List[PSM] = []
        self.psms: List[PSM] = []
        self.hmm: Optional[PsmHmm] = None
        self.report = FlowReport()
        self._simulator: Optional[MultiPsmSimulator] = None
        self._power_traces: Dict[int, PowerTrace] = {}
        self._functional_traces: Dict[int, FunctionalTrace] = {}

    # ------------------------------------------------------------------
    @property
    def fitted(self) -> bool:
        """True once :meth:`fit` has produced a PSM set."""
        return self.hmm is not None

    def fit(
        self,
        functional_traces: Sequence[FunctionalTrace],
        power_traces: Sequence[PowerTrace],
    ) -> "PsmFlow":
        """Generate, combine and optimise the PSM set from training data."""
        if len(functional_traces) != len(power_traces):
            raise ValueError("need one power trace per functional trace")
        if not functional_traces:
            raise ValueError("at least one training pair is required")
        for functional, power in zip(functional_traces, power_traces):
            if len(functional) != len(power):
                raise ValueError(
                    "functional and power traces must have equal lengths"
                )
        config = self.config
        start = time.perf_counter()

        miner = AssertionMiner(config.miner)
        self.mining = miner.mine_many(functional_traces)
        self._power_traces = dict(enumerate(power_traces))
        self._functional_traces = dict(enumerate(functional_traces))

        self.raw_psms = generate_psms(self.mining.traces, power_traces)
        self.report.n_raw_states = total_states(self.raw_psms)

        working = [self._copy_psm(p) for p in self.raw_psms]
        if config.apply_simplify:
            working = simplify_all(working, self._power_traces, config.merge)
        if config.apply_join:
            working = join_psms(working, self._power_traces, config.merge)
        refined = 0
        if config.apply_refine:
            refined = refine_data_dependent(
                working,
                self._functional_traces,
                self._power_traces,
                config.refine,
            )
        self.psms = working
        self.hmm = PsmHmm(self.psms)
        self._simulator = MultiPsmSimulator(
            self.psms, self.mining.labeler, self.hmm
        )

        self.report.generation_time = time.perf_counter() - start
        self.report.n_atoms = len(self.mining.atoms)
        self.report.n_propositions = len(self.mining.propositions)
        self.report.n_states = total_states(self.psms)
        self.report.n_transitions = total_transitions(self.psms)
        self.report.n_psms = len(self.psms)
        self.report.n_refined_states = refined
        self.report.training_instants = sum(
            len(t) for t in functional_traces
        )
        return self

    @staticmethod
    def _copy_psm(psm: PSM) -> PSM:
        """Structural copy so the raw PSM set survives optimisation.

        States are duplicated (keeping their global ids) because the
        refinement stage mutates state output functions in place.
        """
        copy = PSM(name=psm.name)
        initials = {s.sid for s in psm.initial_states}
        for state in psm.states:
            duplicate = PowerState(
                assertion=state.assertion,
                attributes=state.attributes,
                intervals=list(state.intervals),
                sid=state.sid,
                power_model=state.power_model,
            )
            copy.add_state(duplicate, initial=state.sid in initials)
        for transition in psm.transitions:
            copy.add_transition(transition)
        return copy

    # ------------------------------------------------------------------
    def simulator(self) -> MultiPsmSimulator:
        """The HMM-driven simulator over the fitted PSM set."""
        self._require_fitted()
        return self._simulator

    def estimate(self, trace: FunctionalTrace) -> EstimationResult:
        """Estimate the power trace of an arbitrary functional trace."""
        self._require_fitted()
        return self._simulator.run(trace)

    def evaluate(
        self, trace: FunctionalTrace, reference: PowerTrace
    ) -> Dict[str, float]:
        """Estimate ``trace`` and score it against a reference power trace.

        Returns a dict with ``mre`` / ``mae`` / ``rmse`` / ``wsp`` /
        ``desync_fraction`` plus the estimation wall time.
        """
        self._require_fitted()
        start = time.perf_counter()
        result = self._simulator.run(trace)
        elapsed = time.perf_counter() - start
        return {
            "mre": mre(result.estimated, reference),
            "mae": mae(result.estimated, reference),
            "rmse": rmse(result.estimated, reference),
            "wsp": result.wsp,
            "wrong_state_pct": result.wrong_state_fraction,
            "desync_fraction": result.desync_fraction,
            "estimation_time": elapsed,
        }

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError("call fit() before using the flow")


def fit_flow(
    functional_traces: Sequence[FunctionalTrace],
    power_traces: Sequence[PowerTrace],
    config: Optional[FlowConfig] = None,
) -> PsmFlow:
    """Convenience one-liner: build and fit a :class:`PsmFlow`."""
    return PsmFlow(config).fit(functional_traces, power_traces)
