"""End-to-end PSM flow (paper Fig. 1), as a staged pipeline facade.

``PsmFlow`` chains every step of the methodology:

1. mine proposition traces from the training functional traces;
2. run PSMGenerator on each (proposition, power) pair — one chain PSM per
   training trace;
3. ``simplify`` each PSM, then ``join`` the set into the reduced set;
4. refine data-dependent states with the Hamming-distance regression;
5. build the HMM and expose the multi-PSM simulator.

Since the staged-pipeline refactor the phases are first-class
:class:`~repro.core.stages.Stage` objects executed by a
:class:`~repro.core.stages.PipelineRunner` over an
:class:`~repro.core.stages.ArtifactStore`; ``PsmFlow`` is a thin facade
that keeps the original public API.  Each optimisation stage can be
omitted individually (``FlowConfig.stages``), which is what the ablation
benchmarks sweep, and every stage is timed into a
:class:`~repro.core.stages.StageReport`.  With a checkpoint directory a
run persists per-stage JSON artifacts and can later resume downstream of
mining (``skip_to``) instead of re-mining.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..traces.functional import FunctionalTrace
from ..traces.power import PowerTrace
from .hmm import PsmHmm
from .mergeability import MergePolicy
from .metrics import mae, mre, rmse
from .mining import MinerConfig, MiningResult, PropositionLabeler
from .psm import PSM, clone_psm, total_states, total_transitions
from .regression import RefinePolicy
from .simulation import EstimationResult, MultiPsmSimulator
from .stages import (
    FUNCTIONAL_TRACES,
    HMM,
    MANDATORY_STAGES,
    MINING,
    N_REFINED,
    POWER_TRACES,
    RAW_PSMS,
    SIMULATOR,
    STAGE_ORDER,
    WINDOW_SOURCES,
    WORKING_PSMS,
    ArtifactStore,
    PipelineContext,
    PipelineRunner,
    StageReport,
    build_stages,
    build_streaming_stages,
)
from .streaming import (
    DEFAULT_WINDOW,
    BundlePublisher,
    DriftDetector,
    DriftPolicy,
    as_window_source,
)


@dataclass
class FlowConfig:
    """Configuration of the whole flow, one knob set per stage.

    ``stages`` selects the optimisation stages to execute by name
    (any subset of ``("simplify", "join", "refine")``; the mandatory
    ``mine``/``generate``/``hmm`` stages always run).  ``None`` falls
    back to the deprecated boolean aliases ``apply_simplify`` /
    ``apply_join`` / ``apply_refine``, kept so pre-refactor callers and
    configs keep working; when both are given, ``stages`` wins.

    ``checkpoint_dir`` enables JSON checkpointing of every stage's
    artifacts; ``skip_to`` resumes a run from those checkpoints at the
    named stage (requires ``checkpoint_dir``).

    ``jobs`` is the process-parallelism degree for the flow's fan-out
    loops (the miner's per-trace atom evaluation): 1 (the default) runs
    serially, 0/None uses every CPU.  Parallel and serial runs produce
    bit-identical PSM sets.
    """

    miner: MinerConfig = field(default_factory=MinerConfig)
    merge: MergePolicy = field(default_factory=MergePolicy)
    refine: RefinePolicy = field(default_factory=RefinePolicy)
    stages: Optional[Sequence[str]] = None
    checkpoint_dir: Optional[Union[str, Path]] = None
    skip_to: Optional[str] = None
    jobs: int = 1
    apply_simplify: bool = True
    apply_join: bool = True
    apply_refine: bool = True

    def stage_names(self) -> Tuple[str, ...]:
        """The ordered stage list this configuration selects."""
        if self.stages is not None:
            requested = list(self.stages)
            unknown = [n for n in requested if n not in STAGE_ORDER]
            if unknown:
                raise ValueError(
                    f"unknown stage name(s) {unknown}; "
                    f"choose from {list(STAGE_ORDER)}"
                )
            selected = set(requested) | set(MANDATORY_STAGES)
        else:
            selected = set(MANDATORY_STAGES)
            if self.apply_simplify:
                selected.add("simplify")
            if self.apply_join:
                selected.add("join")
            if self.apply_refine:
                selected.add("refine")
        return tuple(name for name in STAGE_ORDER if name in selected)


@dataclass
class FlowReport:
    """Summary of one fitted flow (feeds the Table II columns).

    ``generation_time`` is the end-to-end wall time of the pipeline;
    ``stages`` carries the structured per-stage instrumentation
    (one :class:`~repro.core.stages.StageReport` per executed or resumed
    stage, in execution order).
    """

    generation_time: float = 0.0
    n_atoms: int = 0
    n_propositions: int = 0
    n_raw_states: int = 0
    n_states: int = 0
    n_transitions: int = 0
    n_psms: int = 0
    n_refined_states: int = 0
    training_instants: int = 0
    stages: List[StageReport] = field(default_factory=list)
    # Live reference to the fitted flow's labeler; stats are read at
    # rendering time so they reflect every estimate run so far.
    labeler: Optional[PropositionLabeler] = None

    def row(self) -> tuple:
        """(TS, gen. time, states, transitions) — Table II fragment."""
        return (
            self.training_instants,
            round(self.generation_time, 3),
            self.n_states,
            self.n_transitions,
        )

    def stage(self, name: str) -> Optional[StageReport]:
        """The report of one stage by name (None when it did not run)."""
        for report in self.stages:
            if report.name == name:
                return report
        return None

    def stage_times(self) -> Dict[str, float]:
        """Per-stage wall times by stage name, in execution order."""
        return {report.name: report.wall_time for report in self.stages}

    def describe_stages(self) -> str:
        """One-line rendering of the stage timings (CLI/bench output)."""
        if not self.stages:
            return "no stage reports"
        line = " | ".join(str(report) for report in self.stages)
        stats = self.labeler.stats() if self.labeler is not None else None
        if stats:
            line += (
                " | labeler cache: "
                f"{stats['hits']} hits / {stats['misses']} misses"
                f" / {stats['evictions']} evictions"
                f" ({'on' if stats['enabled'] else 'off'})"
            )
        return line


class PsmFlow:
    """The automatic PSM-generation methodology, end to end."""

    def __init__(self, config: Optional[FlowConfig] = None) -> None:
        self.config = config or FlowConfig()
        self.mining: Optional[MiningResult] = None
        self.raw_psms: List[PSM] = []
        self.psms: List[PSM] = []
        self.hmm: Optional[PsmHmm] = None
        self.report = FlowReport()
        self._simulator: Optional[MultiPsmSimulator] = None
        self._power_traces: Dict[int, PowerTrace] = {}
        self._functional_traces: Dict[int, FunctionalTrace] = {}

    # ------------------------------------------------------------------
    @property
    def fitted(self) -> bool:
        """True once :meth:`fit` has produced a PSM set."""
        return self.hmm is not None

    def fit(
        self,
        functional_traces: Sequence[FunctionalTrace],
        power_traces: Sequence[PowerTrace],
        checkpoint_dir: Optional[Union[str, Path]] = None,
        skip_to: Optional[str] = None,
    ) -> "PsmFlow":
        """Generate, combine and optimise the PSM set from training data.

        ``checkpoint_dir`` / ``skip_to`` override the equally named
        :class:`FlowConfig` fields for this call: with a checkpoint
        directory every stage persists its artifacts as JSON, and
        ``skip_to`` resumes from those checkpoints at the named stage
        (e.g. ``skip_to="generate"`` reuses the mined propositions
        instead of re-mining, producing an identical PSM set).
        """
        if len(functional_traces) != len(power_traces):
            raise ValueError("need one power trace per functional trace")
        if not functional_traces:
            raise ValueError("at least one training pair is required")
        for functional, power in zip(functional_traces, power_traces):
            if len(functional) != len(power):
                raise ValueError(
                    "functional and power traces must have equal lengths"
                )
        config = self.config
        if checkpoint_dir is None:
            checkpoint_dir = config.checkpoint_dir
        if skip_to is None:
            skip_to = config.skip_to
        start = time.perf_counter()

        store = ArtifactStore()
        store.put(FUNCTIONAL_TRACES, dict(enumerate(functional_traces)))
        store.put(POWER_TRACES, dict(enumerate(power_traces)))
        runner = PipelineRunner(build_stages(config.stage_names()))
        ctx = PipelineContext(
            config=config,
            store=store,
            checkpoint_dir=Path(checkpoint_dir) if checkpoint_dir else None,
        )
        stage_reports = runner.run(ctx, skip_to=skip_to)

        self._functional_traces = store.get(FUNCTIONAL_TRACES)
        self._power_traces = store.get(POWER_TRACES)
        self.mining = store.get(MINING)
        self.raw_psms = store.get(RAW_PSMS)
        self.psms = store.get(WORKING_PSMS)
        self.hmm = store.get(HMM)
        self._simulator = store.get(SIMULATOR)

        self.report = FlowReport(
            generation_time=time.perf_counter() - start,
            n_atoms=len(self.mining.atoms),
            n_propositions=len(self.mining.propositions),
            n_raw_states=total_states(self.raw_psms),
            n_states=total_states(self.psms),
            n_transitions=total_transitions(self.psms),
            n_psms=len(self.psms),
            n_refined_states=store.get_or(N_REFINED, 0),
            training_instants=sum(len(t) for t in functional_traces),
            stages=stage_reports,
            labeler=self.mining.labeler,
        )
        return self

    def fit_stream(
        self,
        sources: Sequence,
        window: int = DEFAULT_WINDOW,
        publisher: Optional[BundlePublisher] = None,
        drift: Optional[Union[DriftDetector, DriftPolicy]] = None,
        progress=None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        skip_to: Optional[str] = None,
    ) -> "PsmFlow":
        """Fit the flow from a windowed replay of the training streams.

        ``sources`` are window sources — anything
        :func:`~repro.core.streaming.as_window_source` accepts: an
        existing source, a ``(functional, power)`` pair, a
        :class:`~repro.traces.io.BinaryTraceReader` or a ``.npt`` path —
        replayed in windows of ``window`` instants.  The mining phase
        runs incrementally (see
        :class:`~repro.core.stages.StreamMiningStage`); every downstream
        stage consumes the finalized artifacts unchanged, so with drift
        detection off the result is bit-identical to :meth:`fit` over
        the full traces — the batch path is this path's equivalence
        oracle.

        ``drift`` (a policy or a ready detector) arms mid-stream
        refresh: each firing re-runs ``simplify``/``join`` over the
        stream prefix and — when ``publisher`` is given — publishes a
        versioned bundle through its atomic-replace path, which a
        serving registry hot-reloads with zero estimate downtime.  The
        final model is always published last when a publisher is given.
        """
        if not sources:
            raise ValueError("at least one training source is required")
        normalized = [
            as_window_source(source, trace_id)
            for trace_id, source in enumerate(sources)
        ]
        if isinstance(drift, DriftPolicy):
            drift = DriftDetector(drift)
        config = self.config
        if checkpoint_dir is None:
            checkpoint_dir = config.checkpoint_dir
        if skip_to is None:
            skip_to = config.skip_to
        start = time.perf_counter()

        store = ArtifactStore()
        store.put(WINDOW_SOURCES, normalized)
        store.put(
            FUNCTIONAL_TRACES,
            {s.trace_id: s.functional() for s in normalized},
        )
        store.put(
            POWER_TRACES, {s.trace_id: s.power() for s in normalized}
        )
        runner = PipelineRunner(
            build_streaming_stages(
                config.stage_names(),
                window=window,
                progress=progress,
                drift=drift,
                publisher=publisher,
            )
        )
        ctx = PipelineContext(
            config=config,
            store=store,
            checkpoint_dir=Path(checkpoint_dir) if checkpoint_dir else None,
        )
        stage_reports = runner.run(ctx, skip_to=skip_to)

        self._functional_traces = store.get(FUNCTIONAL_TRACES)
        self._power_traces = store.get(POWER_TRACES)
        self.mining = store.get(MINING)
        self.raw_psms = store.get(RAW_PSMS)
        self.psms = store.get(WORKING_PSMS)
        self.hmm = store.get(HMM)
        self._simulator = store.get(SIMULATOR)

        if publisher is not None:
            publisher.publish(self.psms, reason="final")

        self.report = FlowReport(
            generation_time=time.perf_counter() - start,
            n_atoms=len(self.mining.atoms),
            n_propositions=len(self.mining.propositions),
            n_raw_states=total_states(self.raw_psms),
            n_states=total_states(self.psms),
            n_transitions=total_transitions(self.psms),
            n_psms=len(self.psms),
            n_refined_states=store.get_or(N_REFINED, 0),
            training_instants=sum(len(s) for s in normalized),
            stages=stage_reports,
            labeler=self.mining.labeler,
        )
        return self

    @staticmethod
    def _copy_psm(psm: PSM) -> PSM:
        """Structural copy so the raw PSM set survives optimisation.

        Kept as a backward-compatible alias of
        :func:`repro.core.psm.clone_psm`, which the generation stage now
        uses to build the working set.
        """
        return clone_psm(psm)

    # ------------------------------------------------------------------
    def simulator(self) -> MultiPsmSimulator:
        """The HMM-driven simulator over the fitted PSM set."""
        self._require_fitted()
        return self._simulator

    def estimate(
        self, trace: FunctionalTrace, engine: str = "auto"
    ) -> EstimationResult:
        """Estimate the power trace of an arbitrary functional trace.

        ``engine`` selects the execution backend — see
        :meth:`MultiPsmSimulator.run`.
        """
        self._require_fitted()
        return self._simulator.run(trace, engine=engine)

    def evaluate(
        self, trace: FunctionalTrace, reference: PowerTrace
    ) -> Dict[str, float]:
        """Estimate ``trace`` and score it against a reference power trace.

        Returns a dict with ``mre`` / ``mae`` / ``rmse`` / ``wsp`` /
        ``desync_fraction`` plus the estimation wall time.
        """
        self._require_fitted()
        start = time.perf_counter()
        result = self._simulator.run(trace)
        elapsed = time.perf_counter() - start
        return {
            "mre": mre(result.estimated, reference),
            "mae": mae(result.estimated, reference),
            "rmse": rmse(result.estimated, reference),
            "wsp": result.wsp,
            "wrong_state_pct": result.wrong_state_fraction,
            "desync_fraction": result.desync_fraction,
            "estimation_time": elapsed,
        }

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError("call fit() before using the flow")


def fit_flow(
    functional_traces: Sequence[FunctionalTrace],
    power_traces: Sequence[PowerTrace],
    config: Optional[FlowConfig] = None,
) -> PsmFlow:
    """Convenience one-liner: build and fit a :class:`PsmFlow`."""
    return PsmFlow(config).fit(functional_traces, power_traces)
