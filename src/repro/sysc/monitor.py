"""Streaming PSM power monitor (the generated SystemC module's role).

The batch :class:`~repro.core.simulation.MultiPsmSimulator` replays a
complete trace; the co-simulated monitor instead consumes one PI/PO
assignment per clock cycle, as the paper's generated SystemC module does.
It runs the same state machine — enter / track / exit via HMM choice /
resynchronise — but, being causal, it cannot re-attribute past instants
after a wrong prediction; it simply switches to the corrected state and
continues.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..core.hmm import PsmHmm
from ..core.mining import PropositionLabeler
from ..core.psm import PSM, PowerState
from ..core.simulation import EXIT, STAY, VIOLATION, StateTracker
from ..hdl.signal import popcount_int


class StreamingPsmMonitor:
    """Causal, cycle-by-cycle power estimation over a PSM set."""

    def __init__(
        self,
        psms: Sequence[PSM],
        labeler: PropositionLabeler,
        hmm: Optional[PsmHmm] = None,
    ) -> None:
        self.psms = list(psms)
        self.labeler = labeler
        self.hmm = hmm or PsmHmm(psms)
        self._states: List[PowerState] = [
            self.hmm.state(sid) for sid in self.hmm.state_ids
        ]
        self._psm_by_sid = {
            state.sid: psm
            for psm in self.psms
            for state in psm.states
        }
        self._entry_cache: Dict = {}
        # The Hamming distance only feeds regression-based outputs; when
        # every state is constant the per-cycle popcounts can be skipped.
        self._needs_distance = any(
            s.is_data_dependent for s in self._states
        )
        self.reset()

    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Return to the pre-simulation state."""
        self._current: Optional[PowerState] = None
        self._tracker: Optional[StateTracker] = None
        self._last_valid: Optional[PowerState] = None
        self._prev_row: Optional[Dict[str, int]] = None
        self._last_prop = None
        self._last_stayed = False
        self.cycles = 0
        self.desync_cycles = 0
        self.estimates: List[float] = []

    # ------------------------------------------------------------------
    def _hamming(self, row: Dict[str, int]) -> int:
        prev = self._prev_row
        if prev is None:
            return 0
        total = 0
        for name, value in row.items():
            total += bin(value ^ prev[name]).count("1")
        return total

    def _entry_candidates(self, prop):
        """``(candidates, anywhere)`` re-entry options for ``prop``."""
        cached = self._entry_cache.get(prop)
        if cached is None:
            strict = [
                s.sid for s in self._states if StateTracker(s).can_enter(prop)
            ]
            if strict:
                cached = (strict, False)
            else:
                cached = (
                    [
                        s.sid
                        for s in self._states
                        if StateTracker(s).can_enter_anywhere(prop)
                    ],
                    True,
                )
            self._entry_cache[prop] = cached
        return cached

    def _enter_best(
        self, prop, candidates: List[int], anywhere: bool = False
    ) -> None:
        hmm = self.hmm
        if self._last_valid is not None:
            belief = hmm.belief_for_state(self._last_valid.sid)
            scored = hmm.score_candidates(belief, candidates)
        else:
            prior = hmm.initial_belief()
            scored = [
                (sid, float(prior[hmm.index_of(sid)])) for sid in candidates
            ]
        if all(score <= 0 for _, score in scored):
            scored = [(sid, float(hmm.state(sid).n)) for sid in candidates]
        best_sid, best = scored[0]
        for sid, score in scored[1:]:
            if score > best:
                best_sid, best = sid, score
        self._current = hmm.state(best_sid)
        self._tracker = StateTracker(self._current)
        if anywhere:
            self._tracker.enter_anywhere(prop)
        else:
            self._tracker.enter(prop)
        self._last_valid = self._current

    def _transition(self, prop) -> bool:
        """Follow an exit on ``prop``; returns False when stuck."""
        hmm = self.hmm
        psm = self._psm_by_sid[self._current.sid]
        candidates: List[int] = []
        for transition in psm.successors(self._current.sid):
            if transition.enabling != prop:
                continue
            if transition.dst in candidates:
                continue
            if StateTracker(hmm.state(transition.dst)).can_enter(prop):
                candidates.append(transition.dst)
        if not candidates:
            return False
        self._enter_best(prop, candidates)
        return True

    # ------------------------------------------------------------------
    def observe(self, row: Dict[str, int]) -> float:
        """Consume one cycle's PI/PO assignment; return the power estimate."""
        prop = self.labeler.label_assignment(row)
        distance = self._hamming(row) if self._needs_distance else 0
        # Fast path: the proposition repeated and the tracker stayed last
        # cycle — an until body keeps staying on the same proposition, so
        # the estimate can be emitted without re-walking the tracker.
        if (
            prop is not None
            and prop is self._last_prop
            and self._last_stayed
        ):
            if self._needs_distance:
                self._prev_row = row
            estimate = self._current.output(distance)
            self.cycles += 1
            self.estimates.append(estimate)
            return estimate
        self._last_prop = None
        self._last_stayed = False
        synced = self._current is not None
        if synced:
            verdict, _ = self._tracker.advance(prop)
            if verdict == EXIT:
                synced = self._transition(prop)
            elif verdict == VIOLATION:
                synced = False
        if not synced:
            self._current = None
            if prop is not None:
                candidates, anywhere = self._entry_candidates(prop)
                if candidates:
                    self._enter_best(prop, candidates, anywhere)
                    synced = True
        if synced:
            estimate = self._current.output(distance)
            if self._tracker.stable_on(prop):
                self._last_prop = prop
                self._last_stayed = True
        else:
            self.desync_cycles += 1
            estimate = (
                self._last_valid.output(distance) if self._last_valid else 0.0
            )
        if self._needs_distance:
            # Caller contract: each observe() receives a fresh mapping,
            # so keeping the reference (instead of copying) is safe.
            self._prev_row = row
        self.cycles += 1
        self.estimates.append(estimate)
        return estimate
