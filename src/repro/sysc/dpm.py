"""Dynamic power management exploration on top of PSMs.

The paper's introduction motivates PSMs as the formalism power managers
use for *early virtual prototyping*: "the PSMs of IPs included in the
model of the target SoC are controlled by a power manager to allow the
exploration of different dynamic power management solutions" (their
refs. [1]-[7]).  This module closes that loop: a
:class:`PowerManagerProcess` co-simulates with an IP, gates its enable
pin according to a pluggable policy, and accounts the energy predicted
by the attached PSM monitor — so DPM policies can be compared *without*
re-running a power simulation per policy.

Policies see only what a real power manager sees: the IP's observable
pins plus its own bookkeeping (cycles idle, pending work).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.pipeline import PsmFlow
from ..hdl.module import Module
from .kernel import Kernel, Process
from .monitor import StreamingPsmMonitor


class DpmPolicy:
    """Base class for gating policies.

    ``decide`` is called once per cycle with the IP's observable pins and
    must return True to keep the clock enabled, False to gate it.
    """

    name = "policy"

    def reset(self) -> None:
        """Called before a simulation run."""

    def decide(self, pins: Mapping[str, int], wants_work: bool) -> bool:
        """Gate decision for the next cycle."""
        raise NotImplementedError


class AlwaysOnPolicy(DpmPolicy):
    """Baseline: never gate the clock."""

    name = "always-on"

    def decide(self, pins: Mapping[str, int], wants_work: bool) -> bool:
        return True


class TimeoutGatePolicy(DpmPolicy):
    """Classic fixed-timeout gating.

    Gates the clock after the IP has been observably idle (``done`` high
    and no pending work) for ``timeout`` consecutive cycles; re-enables
    as soon as work arrives.
    """

    def __init__(self, timeout: int = 4) -> None:
        if timeout < 1:
            raise ValueError("timeout must be at least 1")
        self.timeout = timeout
        self.name = f"timeout-{timeout}"
        self._idle_cycles = 0

    def reset(self) -> None:
        self._idle_cycles = 0

    def decide(self, pins: Mapping[str, int], wants_work: bool) -> bool:
        if wants_work:
            self._idle_cycles = 0
            return True
        if pins.get("done", 0):
            self._idle_cycles += 1
        else:
            self._idle_cycles = 0
        return self._idle_cycles < self.timeout


class OraclePolicy(DpmPolicy):
    """Ideal policy: gate exactly when no work is pending."""

    name = "oracle"

    def decide(self, pins: Mapping[str, int], wants_work: bool) -> bool:
        return wants_work


@dataclass
class DpmReport:
    """Outcome of one policy run."""

    policy: str
    cycles: int
    gated_cycles: int
    completed_operations: int
    estimated_energy: float

    @property
    def gated_fraction(self) -> float:
        """Fraction of cycles spent clock-gated."""
        return self.gated_cycles / self.cycles if self.cycles else 0.0


class ManagedIpProcess(Process):
    """An IP whose enable pin is driven by a DPM policy.

    The workload is a sequence of transactions (input assignments to
    apply back to back while the IP is enabled); between transactions
    the process reports no pending work, which is the window a policy
    can exploit.
    """

    name = "managed_ip"

    def __init__(
        self,
        module: Module,
        workload: Sequence[Sequence[Mapping[str, int]]],
        idle_inputs: Mapping[str, int],
        policy: DpmPolicy,
        gap: int = 6,
    ) -> None:
        self.module = module
        self.workload = [list(txn) for txn in workload]
        self.idle_inputs = dict(idle_inputs)
        self.policy = policy
        self.gap = gap
        module.reset()
        policy.reset()
        self._txn_index = 0
        self._step_index = 0
        self._cooldown = 0
        self._last_outputs: Dict[str, int] = {}
        self.gated_cycles = 0
        self.completed_operations = 0

    def _wants_work(self) -> bool:
        return (
            self._cooldown == 0 and self._txn_index < len(self.workload)
        )

    def on_cycle(self, cycle: int) -> None:
        pins = dict(self._last_outputs)
        # The inter-transaction gap models *external* work arrival: it
        # elapses whether or not the IP clock is gated.
        if self._cooldown > 0 and self._step_index == 0:
            self._cooldown -= 1
        wants_work = self._wants_work()
        enabled = self.policy.decide(pins, wants_work)
        if not enabled:
            self.gated_cycles += 1
            inputs = dict(self.idle_inputs)
            inputs["en"] = 0
        elif wants_work:
            transaction = self.workload[self._txn_index]
            inputs = dict(transaction[self._step_index])
            self._step_index += 1
            if self._step_index >= len(transaction):
                self._txn_index += 1
                self._step_index = 0
                self._cooldown = self.gap
                self.completed_operations += 1
        else:
            inputs = dict(self.idle_inputs)
        outputs = self.module.step(inputs)
        self.module.collect_activity()
        self._last_outputs = dict(outputs)
        self.board.write_many(inputs)
        self.board.write_many(outputs)


def explore_policies(
    module_class,
    workload: Sequence[Sequence[Mapping[str, int]]],
    idle_inputs: Mapping[str, int],
    flow: PsmFlow,
    policies: Sequence[DpmPolicy],
    cycles: Optional[int] = None,
) -> List[DpmReport]:
    """Run every policy over the same workload and report PSM energy.

    The PSM monitor provides the per-cycle power estimate; "energy" is
    its sum over the run (per-cycle values in the tech display unit).
    """
    total_cycles = cycles or (
        sum(len(txn) for txn in workload) * 3 + 100
    )
    reports: List[DpmReport] = []
    for policy in policies:
        kernel = Kernel()
        ip = ManagedIpProcess(
            module_class(), workload, idle_inputs, policy
        )
        kernel.register(ip)
        monitor = StreamingPsmMonitor(
            flow.psms, flow.mining.labeler, flow.hmm
        )
        variables = [v.name for v in module_class.trace_specs()]

        class _MonitorProcess(Process):
            name = "psm_monitor"

            def on_cycle(self, cycle):
                row = {
                    name: self.board.read(name) for name in variables
                }
                monitor.observe(row)

        kernel.register(_MonitorProcess())
        kernel.run(total_cycles)
        reports.append(
            DpmReport(
                policy=policy.name,
                cycles=total_cycles,
                gated_cycles=ip.gated_cycles,
                completed_operations=ip.completed_operations,
                estimated_energy=float(sum(monitor.estimates)),
            )
        )
    return reports
