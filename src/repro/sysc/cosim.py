"""IP / IP+PSM co-simulation and the Table III measurement.

``measure_overhead`` reproduces the paper's Table III setup: simulate the
IP's functional model alone, then the same model with the PSM monitor
attached, and report both wall-clock times and the relative overhead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..core.pipeline import PsmFlow
from ..hdl.module import Module
from .kernel import Kernel, Process
from .monitor import StreamingPsmMonitor


class IpProcess(Process):
    """Drives a functional HDL model with a pre-built stimulus."""

    name = "ip"

    def __init__(self, module: Module, stimulus: Sequence[Mapping[str, int]]):
        self.module = module
        self.stimulus = list(stimulus)
        module.reset()

    def on_cycle(self, cycle: int) -> None:
        inputs = self.stimulus[cycle % len(self.stimulus)]
        outputs = self.module.step(inputs)
        self.board.write_many(dict(inputs))
        self.board.write_many(outputs)
        # Functional simulation does not record power; drop the activity
        # accounting so the measurement matches an RTL-only run.
        self.module.collect_activity()


class PsmMonitorProcess(Process):
    """Wraps a :class:`StreamingPsmMonitor` as a co-simulated process."""

    name = "psm_monitor"

    def __init__(self, monitor: StreamingPsmMonitor, variables: List[str]):
        self.monitor = monitor
        self.variables = variables

    def on_cycle(self, cycle: int) -> None:
        row = {name: self.board.read(name) for name in self.variables}
        self.monitor.observe(row)


@dataclass
class OverheadReport:
    """One Table III row."""

    ip: str
    cycles: int
    ip_time: float
    cosim_time: float

    @property
    def overhead(self) -> float:
        """Relative co-simulation overhead (``(t2 - t1) / t1``)."""
        if self.ip_time <= 0:
            return 0.0
        return (self.cosim_time - self.ip_time) / self.ip_time

    @property
    def overhead_pct(self) -> float:
        """Overhead as a percentage (the paper's Table III column)."""
        return 100.0 * self.overhead


def simulate_ip_only(
    module: Module, stimulus: Sequence[Mapping[str, int]], cycles: int
):
    """Run the functional model alone for ``cycles`` clock cycles."""
    kernel = Kernel()
    kernel.register(IpProcess(module, stimulus))
    return kernel.run(cycles)


def simulate_with_psms(
    module: Module,
    stimulus: Sequence[Mapping[str, int]],
    cycles: int,
    flow: PsmFlow,
    monitor: Optional[StreamingPsmMonitor] = None,
):
    """Run the functional model with the PSM monitor attached."""
    kernel = Kernel()
    kernel.register(IpProcess(module, stimulus))
    monitor = monitor or StreamingPsmMonitor(
        flow.psms, flow.mining.labeler, flow.hmm
    )
    variables = [v.name for v in type(module).trace_specs()]
    kernel.register(PsmMonitorProcess(monitor, variables))
    stats = kernel.run(cycles)
    return stats, monitor


def measure_overhead(
    module_class,
    stimulus: Sequence[Mapping[str, int]],
    flow: PsmFlow,
    cycles: Optional[int] = None,
    repeats: int = 3,
) -> OverheadReport:
    """The Table III measurement for one IP.

    Both runs use fresh module instances and the same stimulus so only
    the monitor differentiates them.  Each configuration is run
    ``repeats`` times and the minimum wall time is kept — the standard
    defence against scheduler noise in micro-benchmarks.
    """
    cycles = cycles or len(stimulus)
    pairs = []
    for _ in range(max(repeats, 1)):
        # Interleave the two configurations so slow drifts of the host
        # CPU frequency hit both sides of each pair equally.
        ip_stats = simulate_ip_only(module_class(), stimulus, cycles)
        cosim_stats, _monitor = simulate_with_psms(
            module_class(), stimulus, cycles, flow
        )
        pairs.append((ip_stats.wall_time, cosim_stats.wall_time))
    pairs.sort(key=lambda p: p[1] / p[0] if p[0] > 0 else float("inf"))
    ip_time, cosim_time = pairs[len(pairs) // 2]
    return OverheadReport(
        ip=module_class.NAME,
        cycles=cycles,
        ip_time=ip_time,
        cosim_time=cosim_time,
    )
