"""A lightweight discrete-event co-simulation kernel (SystemC substitute).

The paper implements the generated PSMs as a SystemC module co-simulated
with the IP's functional model; Table III measures the wall-clock
overhead of that co-simulation against simulating the IP alone.  This
kernel reproduces the measurement setup: clocked processes share a
simulation clock, each process is stepped once per cycle, and processes
can observe each other's signals through a shared signal board.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


class SignalBoard:
    """Shared name -> value store the processes communicate through."""

    def __init__(self) -> None:
        self._values: Dict[str, int] = {}

    def write(self, name: str, value) -> None:
        """Drive a signal for the current delta cycle."""
        self._values[name] = value

    def write_many(self, values: Dict[str, int]) -> None:
        """Drive several signals at once."""
        self._values.update(values)

    def read(self, name: str, default=0):
        """Sample a signal."""
        return self._values.get(name, default)

    def snapshot(self) -> Dict[str, int]:
        """A copy of the full board (used by monitors)."""
        return dict(self._values)


class Process:
    """A clocked process: ``on_cycle`` runs once per simulation cycle."""

    #: Process name (diagnostics only).
    name = "process"

    def bind(self, board: SignalBoard) -> None:
        """Attach the process to the kernel's signal board."""
        self.board = board

    def on_cycle(self, cycle: int) -> None:
        """One clock cycle of work."""
        raise NotImplementedError

    def on_finish(self) -> None:
        """Called once when the simulation ends."""


@dataclass
class KernelStats:
    """Timing of one kernel run."""

    cycles: int
    wall_time: float
    process_times: Dict[str, float] = field(default_factory=dict)


class Kernel:
    """Cycle-driven scheduler over a set of processes.

    Processes are stepped in registration order within a cycle, matching
    SystemC's deterministic ordering for statically sensitive methods.
    """

    def __init__(self) -> None:
        self.board = SignalBoard()
        self._processes: List[Process] = []

    def register(self, process: Process) -> Process:
        """Add a process to the schedule."""
        process.bind(self.board)
        self._processes.append(process)
        return process

    def run(
        self,
        cycles: int,
        stop_condition: Optional[Callable[[int], bool]] = None,
    ) -> KernelStats:
        """Run the simulation for ``cycles`` clock cycles."""
        process_times = {p.name: 0.0 for p in self._processes}
        start = time.perf_counter()
        executed = 0
        for cycle in range(cycles):
            for process in self._processes:
                t0 = time.perf_counter()
                process.on_cycle(cycle)
                process_times[process.name] += time.perf_counter() - t0
            executed += 1
            if stop_condition is not None and stop_condition(cycle):
                break
        for process in self._processes:
            process.on_finish()
        wall = time.perf_counter() - start
        return KernelStats(
            cycles=executed, wall_time=wall, process_times=process_times
        )
