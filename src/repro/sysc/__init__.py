"""Discrete-event co-simulation kernel (SystemC substitute) and PSM monitor."""

from .dpm import (
    AlwaysOnPolicy,
    DpmPolicy,
    DpmReport,
    ManagedIpProcess,
    OraclePolicy,
    TimeoutGatePolicy,
    explore_policies,
)
from .cosim import (
    IpProcess,
    OverheadReport,
    PsmMonitorProcess,
    measure_overhead,
    simulate_ip_only,
    simulate_with_psms,
)
from .kernel import Kernel, KernelStats, Process, SignalBoard
from .monitor import StreamingPsmMonitor

__all__ = [
    "Kernel",
    "KernelStats",
    "Process",
    "SignalBoard",
    "StreamingPsmMonitor",
    "IpProcess",
    "PsmMonitorProcess",
    "OverheadReport",
    "measure_overhead",
    "simulate_ip_only",
    "simulate_with_psms",
    "DpmPolicy",
    "AlwaysOnPolicy",
    "TimeoutGatePolicy",
    "OraclePolicy",
    "DpmReport",
    "ManagedIpProcess",
    "explore_policies",
]
