"""Command-line interface: the ``psmgen`` tool.

Subcommands
-----------
``generate``
    Mine PSMs from one or more (functional, power) CSV trace pairs and
    write the model as JSON (plus optional DOT graph / SystemC module).
``estimate``
    Load a model and estimate the power of a functional trace; optionally
    score it against a reference power trace.
``bench``
    Run the full paper flow for one built-in benchmark IP (``--micro``
    for the per-stage perf harness, ``--accuracy`` for the
    counterexample-driven MRE trajectory).
``refine``
    Counterexample-driven accuracy refinement: score a held-out trace
    window by window, search perturbed stimuli where the model is worse,
    retrain on the counterexamples and keep the model only if the
    held-out MRE does not increase.
``convert``
    Convert training trace pairs between the CSV form and the packed
    binary (``.npt``) container.
``describe``
    Inspect a saved model bundle: states, transitions, output functions,
    serving metadata (schema version, content digest) — and optionally
    its coverage of a given functional trace.
``tables``
    Regenerate the paper's Tables I-III.
``serve``
    Run the estimation server over a directory of exported bundles.
``loadgen``
    Replay testbench stimuli against a running server at a target RPS
    and report throughput / latency percentiles.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .core.export import (
    ExportSchemaError,
    labeler_from_psms,
    load_bundle,
    load_psms,
    save_psms,
    to_dot,
    to_systemc,
)
from .core.metrics import mae, mre, rmse
from .core.pipeline import FlowConfig, PsmFlow
from .core.simulation import MultiPsmSimulator
from .core.stages import STAGE_ORDER, PipelineError
from .traces.io import load_functional_csv, load_power_csv, save_power_csv
from .traces.power import PowerTrace


def _cmd_generate(args: argparse.Namespace) -> int:
    if len(args.func) != len(args.power):
        print("error: need one --power per --func", file=sys.stderr)
        return 2
    if args.skip_to and not args.checkpoint_dir:
        print(
            "error: --skip-to requires --checkpoint-dir", file=sys.stderr
        )
        return 2
    functional = [load_functional_csv(p) for p in args.func]
    power = [load_power_csv(p) for p in args.power]
    config = FlowConfig(
        checkpoint_dir=args.checkpoint_dir,
        skip_to=args.skip_to,
        jobs=args.jobs,
    )
    try:
        flow = PsmFlow(config).fit(functional, power)
    except PipelineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    report = flow.report
    print(
        f"generated {report.n_psms} PSM(s): {report.n_states} states, "
        f"{report.n_transitions} transitions "
        f"({report.n_raw_states} before optimisation) "
        f"in {report.generation_time:.2f}s"
    )
    print(f"stage timings: {report.describe_stages()}")
    if any(r.resumed for r in report.stages):
        print("(* = stage resumed from checkpoint)")
    save_psms(
        flow.psms,
        args.output,
        stage_reports=report.stages,
        variables=functional[0].variables,
    )
    print(f"model written to {args.output}")
    if args.dot:
        Path(args.dot).write_text(to_dot(flow.psms))
        print(f"DOT graph written to {args.dot}")
    if args.systemc:
        Path(args.systemc).write_text(to_systemc(flow.psms))
        print(f"SystemC module written to {args.systemc}")
    return 0


def _cmd_mine(args: argparse.Namespace) -> int:
    from .core.streaming import (
        DriftDetector,
        DriftPolicy,
        BundlePublisher,
        MemoryWindowSource,
        ReaderWindowSource,
    )
    from .traces.io import BinaryTraceReader

    sources: list = []
    if args.pair:
        for trace_id, path in enumerate(args.pair):
            reader = BinaryTraceReader(path)
            if not reader.has_power:
                print(
                    f"error: {path} carries no power block", file=sys.stderr
                )
                return 2
            sources.append(ReaderWindowSource(reader, trace_id))
    if args.func or args.power:
        if len(args.func or []) != len(args.power or []):
            print("error: need one --power per --func", file=sys.stderr)
            return 2
        for func_path, power_path in zip(args.func, args.power):
            sources.append(
                MemoryWindowSource(
                    load_functional_csv(func_path),
                    load_power_csv(power_path),
                    trace_id=len(sources),
                )
            )
    if args.ip:
        from .power.estimator import run_power_simulation
        from .testbench import BENCHMARKS

        if args.ip not in BENCHMARKS:
            print(
                f"error: unknown IP {args.ip!r}; choose from "
                f"{', '.join(BENCHMARKS)}",
                file=sys.stderr,
            )
            return 2
        spec = BENCHMARKS[args.ip]
        stimulus = (
            spec.short_ts()
            if args.seed is None
            else spec.short_ts(seed=args.seed)
        )
        reference = run_power_simulation(
            spec.module_class(), stimulus, name=f"{args.ip}.short"
        )
        sources.append(
            MemoryWindowSource(
                reference.trace, reference.power, trace_id=len(sources)
            )
        )
    if not sources:
        print(
            "error: need at least one --pair, --func/--power or --ip",
            file=sys.stderr,
        )
        return 2

    config = FlowConfig(jobs=args.jobs)
    flow = PsmFlow(config)
    variables = list(sources[0].variables)

    if not args.stream:
        try:
            flow.fit(
                [s.functional() for s in sources],
                [s.power() for s in sources],
            )
        except PipelineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    else:
        progress = None
        if args.progress:

            def progress(summary) -> None:
                print(
                    f"window {summary.index}: trace {summary.trace_id} "
                    f"[{summary.start}, {summary.start + summary.instants})"
                    f" universe={summary.universe_size}"
                    f" (+{summary.new_propositions})",
                    flush=True,
                )

        drift = None
        publisher = None
        if args.drift_new_fraction > 0 or args.drift_sigmas > 0:
            drift = DriftDetector(
                DriftPolicy(
                    max_new_fraction=args.drift_new_fraction,
                    mean_shift_sigmas=args.drift_sigmas,
                    warmup_windows=args.drift_warmup,
                )
            )
        if args.publish:
            publisher = BundlePublisher(args.publish, variables=variables)
        try:
            flow.fit_stream(
                sources,
                window=args.window,
                drift=drift,
                publisher=publisher,
                progress=progress,
            )
        except PipelineError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if drift is not None:
            for event in drift.events:
                print(
                    f"drift: {event.reason} at trace {event.trace_id} "
                    f"window {event.window_index} (value {event.value:.4g})"
                )
        if publisher is not None:
            print(
                f"published {len(publisher.versions)} bundle version(s) "
                f"to {publisher.path} (latest {publisher.digest})"
            )

    report = flow.report
    mode = "streamed" if args.stream else "batch"
    print(
        f"{mode} mining: {report.n_psms} PSM(s), {report.n_states} states, "
        f"{report.n_transitions} transitions over "
        f"{report.training_instants} instants "
        f"in {report.generation_time:.2f}s"
    )
    print(f"stage timings: {report.describe_stages()}")
    # Bundles are written without stage reports so a batch run and a
    # stream run over the same traces produce byte-identical files —
    # the digest is the equivalence check.
    save_psms(flow.psms, args.output, variables=variables)
    from .core.export import bundle_digest

    digest = bundle_digest(Path(args.output).read_bytes())
    print(f"model written to {args.output} (digest {digest})")
    return 0


def _indexed_path(path: str, index: int, count: int) -> Path:
    """``out.csv`` for a single trace, ``out.1.csv`` etc. otherwise."""
    target = Path(path)
    if count == 1:
        return target
    return target.with_name(f"{target.stem}.{index}{target.suffix}")


def _cmd_estimate(args: argparse.Namespace) -> int:
    references = args.reference or []
    if references and len(references) != len(args.func):
        print(
            "error: need one --reference per --func (or none)",
            file=sys.stderr,
        )
        return 2
    try:
        psms = load_psms(args.model)
    except ExportSchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    # One labeler + simulator serves every input trace: both are
    # immutable per-model artefacts, and rebuilding them dominates the
    # cost of short estimation runs.
    labeler = labeler_from_psms(psms)
    simulator = MultiPsmSimulator(psms, labeler)
    count = len(args.func)
    for index, func_path in enumerate(args.func):
        trace = load_functional_csv(func_path)
        result = simulator.run(trace, engine=args.engine)
        prefix = f"[{func_path}] " if count > 1 else ""
        print(
            f"{prefix}estimated {len(trace)} instants: "
            f"mean power {result.estimated.mean():.4g}, "
            f"WSP {result.wrong_state_fraction:.2f}%, "
            f"desync {result.desync_instants} instants"
        )
        if args.output:
            target = _indexed_path(args.output, index, count)
            save_power_csv(result.estimated, target)
            print(f"{prefix}estimated power trace written to {target}")
        if references:
            reference = load_power_csv(references[index])
            print(
                f"{prefix}vs reference: "
                f"MRE {mre(result.estimated, reference):.2f}%  "
                f"MAE {mae(result.estimated, reference):.4g}  "
                f"RMSE {rmse(result.estimated, reference):.4g}"
            )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .bench import fit_benchmark, long_cycles
    from .power.estimator import run_power_simulation
    from .testbench import BENCHMARKS

    if args.micro:
        return _cmd_bench_micro(args)
    if args.accuracy:
        return _cmd_bench_accuracy(args)
    if args.ip is None:
        print(
            "error: --ip is required (unless --micro/--accuracy)",
            file=sys.stderr,
        )
        return 2
    if args.ip not in BENCHMARKS:
        print(
            f"error: unknown IP {args.ip!r}; choose from "
            f"{', '.join(BENCHMARKS)}",
            file=sys.stderr,
        )
        return 2
    fitted = fit_benchmark(args.ip, jobs=args.jobs, seed=args.seed)
    report = fitted.flow.report
    print(
        f"{args.ip}: TS={fitted.ts} gen={report.generation_time:.2f}s "
        f"states={report.n_states} transitions={report.n_transitions} "
        f"train-MRE={fitted.train_mre:.2f}%"
    )
    print(f"stage timings: {report.describe_stages()}")
    cycles = args.cycles or long_cycles()
    spec = BENCHMARKS[args.ip]
    long_stimulus = (
        spec.long_ts(cycles)
        if args.seed is None
        else spec.long_ts(cycles, seed=args.seed)
    )
    reference = run_power_simulation(spec.module_class(), long_stimulus)
    scores = fitted.flow.evaluate(reference.trace, reference.power)
    print(
        f"long-TS ({cycles} cycles): MRE={scores['mre']:.2f}% "
        f"WSP={scores['wrong_state_pct']:.2f}% "
        f"estimation={scores['estimation_time']:.3f}s"
    )
    if args.output:
        save_psms(
            fitted.flow.psms,
            args.output,
            stage_reports=report.stages,
            variables=fitted.short_ref.trace.variables,
        )
        print(f"model written to {args.output}")
    return 0


def _cmd_bench_micro(args: argparse.Namespace) -> int:
    from .microbench import (
        compare_micro,
        run_micro,
        speedups_micro,
        validate_micro,
    )
    from .testbench import BENCHMARKS

    names = [args.ip] if args.ip else None
    if args.ip and args.ip not in BENCHMARKS:
        print(
            f"error: unknown IP {args.ip!r}; choose from "
            f"{', '.join(BENCHMARKS)}",
            file=sys.stderr,
        )
        return 2
    payload = run_micro(
        names=names, cycles=args.cycles, repeats=args.repeats
    )
    for row in payload["results"]:
        print(
            f"{row['benchmark']:>10s} {row['stage']:<16s} "
            f"{row['wall_s'] * 1e3:9.3f} ms  "
            f"{row['cycles_per_s']:12.0f} cycles/s"
        )
    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"micro-bench report written to {args.json}")
    if args.compare:
        baseline = json.loads(Path(args.compare).read_text())
        validate_micro(baseline)
        speedups = speedups_micro(payload, baseline)
        training = sorted(
            (key, value)
            for key, value in speedups.items()
            if key[1] in ("generate", "join")
        )
        if training:
            summary = "  ".join(
                f"{bench}/{stage}: {value:.1f}x"
                for (bench, stage), value in training
            )
            print(f"training speedups vs {args.compare}: {summary}")
        regressions = compare_micro(
            payload, baseline, threshold=args.threshold
        )
        if regressions:
            print("performance regressions detected:", file=sys.stderr)
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(
            f"no regression beyond {args.threshold}x vs {args.compare}"
        )
    return 0


def _default_refine_config(args: argparse.Namespace, seed: int):
    """A :class:`~repro.refine.RefineConfig` from shared CLI knobs."""
    from .refine import RefineConfig

    config = RefineConfig(seed=seed, jobs=args.jobs)
    if getattr(args, "iterations", None) is not None:
        config.iterations = args.iterations
    if getattr(args, "cycles", None) is not None:
        config.eval_cycles = args.cycles
    if getattr(args, "window", None) is not None:
        config.oracle_window = args.window
    if getattr(args, "worst", None) is not None:
        config.worst_windows = args.worst
    if getattr(args, "epsilon", None) is not None:
        config.epsilon = args.epsilon
    if getattr(args, "max_counterexamples", None) is not None:
        config.max_counterexamples = args.max_counterexamples
    if getattr(args, "stream_window", None) is not None:
        config.stream_window = args.stream_window
    return config


def _cmd_bench_accuracy(args: argparse.Namespace) -> int:
    from .refine import (
        compare_accuracy,
        run_accuracy,
        validate_accuracy,
    )
    from .refine.trajectory import format_accuracy
    from .testbench import BENCHMARKS

    if args.ip and args.ip not in BENCHMARKS:
        print(
            f"error: unknown IP {args.ip!r}; choose from "
            f"{', '.join(BENCHMARKS)}",
            file=sys.stderr,
        )
        return 2
    seed = args.seed if args.seed is not None else 7
    config = _default_refine_config(args, seed)
    names = [args.ip] if args.ip else None
    payload = run_accuracy(names, config, progress=print)
    print(format_accuracy(payload))
    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"accuracy report written to {args.json}")
    if args.compare:
        baseline = json.loads(Path(args.compare).read_text())
        validate_accuracy(baseline)
        regressions = compare_accuracy(
            payload, baseline, threshold=args.threshold
        )
        if regressions:
            print("accuracy regressions detected:", file=sys.stderr)
            for line in regressions:
                print(f"  {line}", file=sys.stderr)
            return 1
        print(
            f"no accuracy regression beyond {args.threshold}x "
            f"vs {args.compare}"
        )
    return 0


def _cmd_refine(args: argparse.Namespace) -> int:
    from .core.export import bundle_digest
    from .core.streaming import BundlePublisher
    from .refine import refine_benchmark, result_row
    from .refine.trajectory import ACCURACY_SCHEMA
    from .bench import scale_factor
    from .testbench import BENCHMARKS

    if args.ip not in BENCHMARKS:
        print(
            f"error: unknown IP {args.ip!r}; choose from "
            f"{', '.join(BENCHMARKS)}",
            file=sys.stderr,
        )
        return 2
    config = _default_refine_config(args, args.seed)
    try:
        result = refine_benchmark(args.ip, config, progress=print)
    except PipelineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    accuracy = result.accuracy_metadata()
    print(
        f"{args.ip}: MRE {result.mre_before:.2f}% -> "
        f"{result.mre_after:.2f}% after {len(result.iterations)} "
        f"iteration(s), {result.counterexamples_accepted}/"
        f"{result.counterexamples_found} counterexample(s) folded in "
        f"({result.wall_s:.1f}s)"
    )
    save_psms(
        result.flow.psms,
        args.output,
        variables=result.variables,
        accuracy=accuracy,
    )
    digest = bundle_digest(Path(args.output).read_bytes())
    print(f"refined model written to {args.output} (digest {digest})")
    if args.publish:
        publisher = BundlePublisher(
            args.publish, variables=result.variables
        )
        published = publisher.publish(
            result.flow.psms, reason="refined", accuracy=accuracy
        )
        print(f"refined bundle published to {args.publish} "
              f"(digest {published})")
    if args.json:
        payload = {
            "schema": ACCURACY_SCHEMA,
            "repro_scale": scale_factor(),
            "seed": args.seed,
            "iterations_budget": config.iterations,
            "oracle_window": config.oracle_window,
            "results": [result_row(result)],
        }
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"refine trajectory written to {args.json}")
    # The driver only accepts non-increasing candidates, so this can
    # fail only when the monotone loop itself is broken.
    if result.mre_after > result.mre_before + 1e-9:
        print("error: refinement increased the MRE", file=sys.stderr)
        return 1
    return 0


def _cmd_convert(args: argparse.Namespace) -> int:
    from .traces.io import (
        load_training_bin,
        load_training_pair,
        save_training_bin,
        save_training_pair,
    )

    sources = (args.from_csv is not None) + (args.from_binary is not None)
    if sources != 1:
        print(
            "error: need exactly one of --from-csv / --from-binary",
            file=sys.stderr,
        )
        return 2
    if args.from_csv is not None:
        if args.to_binary is None:
            print(
                "error: --from-csv requires --to-binary", file=sys.stderr
            )
            return 2
        functional, power = load_training_pair(args.from_csv)
        path = save_training_bin(functional, power, args.to_binary)
        print(
            f"binary training pair written to {path} "
            f"({len(functional)} instants, "
            f"{len(functional.variables)} variables)"
        )
        return 0
    if args.to_csv is None:
        print("error: --from-binary requires --to-csv", file=sys.stderr)
        return 2
    functional, power = load_training_bin(args.from_binary)
    func_path, power_path = save_training_pair(
        functional, power, args.to_csv
    )
    print(
        f"CSV training pair written to {func_path} / {power_path} "
        f"({len(functional)} instants)"
    )
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    try:
        bundle = load_bundle(args.model)
    except ExportSchemaError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    psms = bundle.psms
    total_states = sum(len(p) for p in psms)
    total_transitions = sum(len(p.transitions) for p in psms)
    print(
        f"{len(psms)} PSM(s): {total_states} states, "
        f"{total_transitions} transitions"
    )
    print(f"schema: {bundle.schema}  digest: {bundle.digest}")
    if bundle.variables:
        declared = ", ".join(
            f"{v.name}[{v.width}]/{v.direction}" for v in bundle.variables
        )
        print(f"variables: {declared}")
    if bundle.stage_reports:
        stages = "  ".join(
            f"{r.name}={r.wall_time:.3f}s" for r in bundle.stage_reports
        )
        print(f"generation stages: {stages}")
    if bundle.accuracy:
        acc = bundle.accuracy
        parts = []
        if "mre_before" in acc and "mre_after" in acc:
            parts.append(
                f"MRE {acc['mre_before']:.2f}% -> {acc['mre_after']:.2f}%"
            )
        if "iterations" in acc:
            parts.append(f"{acc['iterations']} iteration(s)")
        if "counterexamples_accepted" in acc:
            parts.append(
                f"{acc['counterexamples_accepted']} counterexample "
                f"window(s) folded in"
            )
        if "seed" in acc:
            parts.append(f"seed {acc['seed']}")
        if "eval_cycles" in acc:
            parts.append(f"eval {acc['eval_cycles']} cycles")
        print(f"accuracy (last refine): {', '.join(parts)}")
    for psm in psms:
        print(psm.describe())
        deterministic = "yes" if psm.is_deterministic() else "no"
        print(f"  deterministic: {deterministic}")
    if args.func:
        from .core.coverage import coverage_report
        from .core.hmm import PsmHmm
        from .core.mining import MiningResult
        from .core.pipeline import PsmFlow
        from .core.simulation import MultiPsmSimulator

        labeler = labeler_from_psms(psms)
        simulator = MultiPsmSimulator(psms, labeler)
        trace = load_functional_csv(args.func)
        result = simulator.run(trace)
        # build a minimal flow-like shim for the coverage reporter
        flow = PsmFlow()
        flow.psms = list(psms)
        flow.hmm = simulator.hmm
        flow.mining = MiningResult(
            atoms=labeler.atoms,
            propositions=labeler.propositions,
            traces=[],
            matrices=[],
            labeler=labeler,
        )
        report = coverage_report(flow, trace, result)
        print()
        print(report.summary())
    return 0


def _cmd_tables(args: argparse.Namespace) -> int:
    from .bench import run_all_tables

    print(run_all_tables(include_long=not args.short_only, jobs=args.jobs))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import gc
    import signal

    from .serve.server import create_server

    if not Path(args.models_dir).is_dir():
        print(
            f"error: models dir {args.models_dir} does not exist",
            file=sys.stderr,
        )
        return 2

    async def _run() -> bool:
        elastic = args.max_workers > max(args.workers, 1)
        if args.workers > 1 or elastic:
            from .serve.cluster import create_cluster

            target = create_cluster(
                args.models_dir,
                workers=args.workers,
                host=args.host,
                port=args.port,
                replicas_hot=args.replicas_hot,
                hot_rps=args.hot_rps,
                drain_timeout=args.drain_timeout,
                min_workers=args.min_workers,
                max_workers=args.max_workers,
                scale_interval=args.scale_interval,
                scale_up_depth=args.scale_up_depth,
                scale_up_ticks=args.scale_up_ticks,
                p95_budget_ms=args.p95_budget_ms,
                idle_drain_s=args.idle_drain,
                scale_cooldown=args.scale_cooldown,
                prewarm=not args.no_prewarm,
                negcache_ttl=args.negcache_ttl,
                worker_config={
                    "jobs": args.jobs,
                    "max_queue": args.max_queue,
                    "max_batch": args.max_batch,
                    "cap": args.cap,
                    "request_timeout": args.timeout,
                    "engine": args.engine,
                },
            )
            await target.start()
            metrics = target.metrics
            low, high = target.config.resolved_bounds()
            detail = (
                f"{target.config.workers} workers via "
                f"{target.supervisor.backend}, replicas-hot "
                f"{args.replicas_hot}"
            )
            if target.autoscaler.enabled:
                detail += f", autoscale {low}..{high}"
        else:
            target = create_server(
                args.models_dir,
                host=args.host,
                port=args.port,
                jobs=args.jobs,
                max_queue=args.max_queue,
                max_batch=args.max_batch,
                cap=args.cap,
                request_timeout=args.timeout,
                engine=args.engine,
                worker_id="w0",
            )
            await target.start()
            metrics = target.metrics
            models = ", ".join(target.registry.discover()) or "none yet"
            detail = f"{target.batcher.mode} execution, models: {models}"
        # Long-lived process: move the (large) startup object graph out
        # of the cyclic collector's scan set so steady-state traffic
        # only pays for its own short-lived garbage.
        gc.collect()
        gc.freeze()
        print(
            f"serving {args.models_dir} on "
            f"http://{target.host}:{target.port} ({detail})",
            flush=True,
        )
        # SIGTERM/SIGINT start the graceful drain: stop accepting, let
        # in-flight micro-batches finish (bounded by --drain-timeout),
        # flush final metrics, exit 0 — so supervisors and CI can stop
        # the server without failing live requests.
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        serve_task = loop.create_task(target.serve_forever())
        await stop.wait()
        serve_task.cancel()
        try:
            await serve_task
        except asyncio.CancelledError:
            pass
        drained = await target.shutdown(args.drain_timeout)
        exposition = metrics.render()
        served = sum(
            int(float(line.rpartition(" ")[2]))
            for line in exposition.splitlines()
            if line.startswith(
                ("psmgen_requests_total", "psmgen_router_requests_total")
            )
        )
        print(
            f"drained {'cleanly' if drained else 'past deadline'}; "
            f"{served} requests served; final metrics flushed",
            flush=True,
        )
        return drained

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        print("shutting down")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .bench import evaluation_trace
    from .serve.loadgen import (
        format_report,
        run_elastic_bench,
        run_loadgen,
        run_scaling_bench,
    )
    from .testbench import BENCHMARKS
    from .traces.io import functional_trace_to_json

    if (args.scale_workers or args.elastic) and not args.models_dir:
        print(
            "error: --scale-workers/--elastic need --models-dir (the "
            "sweep starts its own servers)",
            file=sys.stderr,
        )
        return 2
    if not args.scale_workers and not args.elastic and args.port is None:
        print(
            "error: need --port (or --scale-workers/--elastic)",
            file=sys.stderr,
        )
        return 2
    if args.elastic:
        try:
            low_text, _, high_text = args.elastic.partition(",")
            elastic_bounds = (int(low_text), int(high_text))
        except ValueError:
            print(
                "error: --elastic wants MIN,MAX worker counts "
                "(e.g. 1,3)",
                file=sys.stderr,
            )
            return 2
        if not 1 <= elastic_bounds[0] < elastic_bounds[1]:
            print(
                "error: --elastic needs 1 <= MIN < MAX",
                file=sys.stderr,
            )
            return 2
    if args.ip:
        if args.ip not in BENCHMARKS:
            print(
                f"error: unknown IP {args.ip!r}; choose from "
                f"{', '.join(BENCHMARKS)}",
                file=sys.stderr,
            )
            return 2
        trace = evaluation_trace(args.ip, args.cycles)
    elif args.func:
        trace = load_functional_csv(args.func)
    else:
        print("error: need --ip or --func for stimuli", file=sys.stderr)
        return 2
    window = max(int(args.window), 1)
    windows = []
    for start in range(0, len(trace), window):
        stop = min(start + window - 1, len(trace) - 1)
        windows.append(functional_trace_to_json(trace.slice(start, stop)))

    if args.scale_workers:
        counts = sorted(
            {max(int(n), 1) for n in args.scale_workers.split(",")}
        )
        cluster = run_scaling_bench(
            args.models_dir,
            args.model,
            windows,
            counts,
            rps_per_worker=args.rps,
            duration_s=args.duration,
            concurrency=args.concurrency,
            timeout=args.timeout,
            warmup=args.warmup,
            payload=args.payload,
            seed=args.seed,
        )
        for run in cluster["runs"]:
            latency = run["latency_ms"]
            print(
                f"workers {run['workers']}: "
                f"{run['throughput_rps']} rps achieved "
                f"({run['target_rps']} targeted), p50 {latency['p50']} "
                f"p95 {latency['p95']} p99 {latency['p99']} ms, "
                f"5xx {run['errors_5xx']}, serve exit "
                f"{run['serve_exit']}"
            )
        print(
            f"speedup vs single worker: "
            f"{cluster['speedup_vs_single']}x at "
            f"{cluster['best_workers']} workers "
            f"(host has {cluster['host_cpus']} CPUs)"
        )
        if args.json:
            # Merge the cluster sweep into the report file, keeping an
            # existing single-process top level bit-for-bit intact.
            target = Path(args.json)
            document = (
                json.loads(target.read_text())
                if target.exists()
                else {}
            )
            document["cluster"] = cluster
            target.write_text(json.dumps(document, indent=2) + "\n")
            print(f"cluster section written to {args.json}")
        failures = sum(
            run["errors_5xx"]
            + run["transport_errors"]
            + (run["serve_exit"] != 0)
            for run in cluster["runs"]
        )
        return 1 if failures else 0

    if args.elastic:
        elastic = run_elastic_bench(
            args.models_dir,
            args.model,
            windows,
            min_workers=elastic_bounds[0],
            max_workers=elastic_bounds[1],
            rps=args.rps,
            duration_s=args.duration,
            concurrency=args.concurrency,
            timeout=args.timeout,
            warmup=args.warmup,
            payload=args.payload,
            seed=args.seed,
        )
        load = elastic["load"]
        print(
            f"elastic {elastic['min_workers']}..{elastic['max_workers']}"
            f" workers at {elastic['target_rps']} rps: "
            f"peak {elastic['max_ready']} ready"
            + (
                f" (scaled up after {elastic['scale_up_s']}s)"
                if elastic["scaled_up"] else " (never scaled up)"
            )
        )
        print(
            f"drained back to floor: {elastic['drained_down']}"
            + (
                f" in {elastic['drain_s']}s"
                if elastic["drain_s"] is not None else ""
            )
            + f"; load p95 {load['latency_ms']['p95']} ms, "
            f"5xx {load['errors_5xx']}, serve exit "
            f"{elastic['serve_exit']}"
        )
        for worker, stats in elastic["joined_workers"].items():
            ratio = stats["first_vs_steady_p95"]
            print(
                f"joined {worker}: first request "
                f"{stats['first_request_ms']} ms vs steady p95 "
                f"{stats['steady_latency_ms']['p95']} ms"
                + (f" ({ratio}x)" if ratio is not None else "")
            )
        if args.json:
            # Merge the elastic run into the report file, keeping the
            # existing sections bit-for-bit intact.
            target = Path(args.json)
            document = (
                json.loads(target.read_text())
                if target.exists()
                else {}
            )
            document["elastic"] = elastic
            target.write_text(json.dumps(document, indent=2) + "\n")
            print(f"elastic section written to {args.json}")
        failed = (
            elastic["serve_exit"] != 0
            or not elastic["scaled_up"]
            or not elastic["drained_down"]
            or load["transport_errors"]
        )
        return 1 if failed else 0

    report = run_loadgen(
        args.host,
        args.port,
        args.model,
        windows,
        rps=args.rps,
        duration_s=args.duration,
        concurrency=args.concurrency,
        timeout=args.timeout,
        warmup=args.warmup,
        payload=args.payload,
        seed=args.seed,
    )
    print(format_report(report))
    if args.json:
        Path(args.json).write_text(json.dumps(report, indent=2) + "\n")
        print(f"loadgen report written to {args.json}")
    if report["errors_5xx"] or report["transport_errors"]:
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``psmgen`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="psmgen",
        description=(
            "Automatic generation of power state machines through dynamic "
            "mining of temporal assertions (DATE 2016 reproduction)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser(
        "generate", help="mine PSMs from training trace pairs"
    )
    generate.add_argument(
        "--func", action="append", required=True, help="functional trace CSV"
    )
    generate.add_argument(
        "--power", action="append", required=True, help="power trace CSV"
    )
    generate.add_argument(
        "-o", "--output", default="psms.json", help="model output path"
    )
    generate.add_argument("--dot", help="also write a Graphviz DOT file")
    generate.add_argument(
        "--systemc", help="also write the generated SystemC module"
    )
    generate.add_argument(
        "--checkpoint-dir",
        help="persist per-stage JSON checkpoints into this directory",
    )
    generate.add_argument(
        "--skip-to",
        choices=list(STAGE_ORDER[1:]),
        help=(
            "resume from the checkpoints in --checkpoint-dir, executing "
            "from this stage onward (e.g. 'generate' reuses the mined "
            "propositions instead of re-mining)"
        ),
    )
    generate.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the flow's fan-out loops (0 = all CPUs)",
    )
    generate.set_defaults(func_cmd=_cmd_generate)

    mine = sub.add_parser(
        "mine",
        help=(
            "mine PSMs batch or incrementally (--stream) from training "
            "pairs, with optional drift-aware bundle refresh"
        ),
    )
    mine.add_argument(
        "--pair",
        action="append",
        help="binary .npt training pair (repeatable; the stream substrate)",
    )
    mine.add_argument(
        "--func", action="append", help="functional trace CSV (with --power)"
    )
    mine.add_argument(
        "--power", action="append", help="power trace CSV (one per --func)"
    )
    mine.add_argument(
        "--ip",
        help=(
            "also train on a built-in IP's short-TS testbench "
            "(RAM|MultSum|AES|Camellia; simulated in-process)"
        ),
    )
    mine.add_argument(
        "--seed",
        type=int,
        help=(
            "seed for the --ip testbench stimulus builder "
            "(default: the IP's canonical short-TS seed)"
        ),
    )
    mine.add_argument(
        "-o", "--output", default="psms.json", help="model output path"
    )
    mine.add_argument(
        "--stream",
        action="store_true",
        help="train incrementally over a windowed replay of the traces",
    )
    mine.add_argument(
        "--window",
        type=int,
        default=4096,
        help="instants per training window (with --stream)",
    )
    mine.add_argument(
        "--progress",
        action="store_true",
        help="print one line per consumed window (with --stream)",
    )
    mine.add_argument(
        "--publish",
        help=(
            "atomically publish refreshed bundles to this path on every "
            "drift firing and at end of stream (hot-reload target)"
        ),
    )
    mine.add_argument(
        "--drift-new-fraction",
        type=float,
        default=0.0,
        help=(
            "fire drift when a window's fraction of instants under "
            "first-seen propositions exceeds this (0 = off)"
        ),
    )
    mine.add_argument(
        "--drift-sigmas",
        type=float,
        default=0.0,
        help=(
            "fire drift when a window's power mean shifts more than this "
            "many sigmas from the running baseline (0 = off)"
        ),
    )
    mine.add_argument(
        "--drift-warmup",
        type=int,
        default=1,
        help="windows observed before drift detection arms",
    )
    mine.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the flow's fan-out loops (0 = all CPUs)",
    )
    mine.set_defaults(func_cmd=_cmd_mine)

    estimate = sub.add_parser(
        "estimate", help="estimate the power of a functional trace"
    )
    estimate.add_argument("--model", required=True, help="PSM model JSON")
    estimate.add_argument(
        "--func",
        action="append",
        required=True,
        help=(
            "functional trace CSV to estimate (repeatable; the model is "
            "loaded and prepared once for all traces)"
        ),
    )
    estimate.add_argument(
        "--reference",
        action="append",
        help="reference power CSV for accuracy scoring (one per --func)",
    )
    estimate.add_argument(
        "-o",
        "--output",
        help=(
            "write the estimated power trace CSV (indexed as NAME.N.csv "
            "when several --func traces are given)"
        ),
    )
    estimate.add_argument(
        "--engine",
        choices=("auto", "compiled", "object"),
        default="auto",
        help=(
            "estimation backend: compiled segment tables (default via "
            "auto) or the object-graph oracle; results are bit-identical"
        ),
    )
    estimate.set_defaults(func_cmd=_cmd_estimate)

    bench = sub.add_parser(
        "bench", help="run the paper flow on a built-in benchmark IP"
    )
    bench.add_argument(
        "--ip", help="RAM|MultSum|AES|Camellia (all IPs with --micro)"
    )
    bench.add_argument("--cycles", type=int, help="long-TS length")
    bench.add_argument("-o", "--output", help="also save the model JSON")
    bench.add_argument(
        "--micro",
        action="store_true",
        help="per-stage micro-benchmark instead of the full flow",
    )
    bench.add_argument(
        "--accuracy",
        action="store_true",
        help=(
            "run the counterexample-driven refinement loop per IP and "
            "report the MRE trajectory (BENCH_accuracy.json)"
        ),
    )
    bench.add_argument(
        "--seed",
        type=int,
        help=(
            "seed for the testbench stimulus builders (default: the "
            "canonical per-TB seeds; 7 with --accuracy)"
        ),
    )
    bench.add_argument(
        "--iterations",
        type=int,
        help="refinement iteration budget (with --accuracy)",
    )
    bench.add_argument(
        "--json", help="write the micro/accuracy JSON report to this path"
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repetitions per micro-bench stage (best-of)",
    )
    bench.add_argument(
        "--compare",
        help=(
            "baseline micro/accuracy JSON; exit 1 on throughput or "
            "accuracy regression"
        ),
    )
    bench.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="regression factor tolerated by --compare (default 2x)",
    )
    bench.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the flow's fan-out loops (0 = all CPUs)",
    )
    bench.set_defaults(func_cmd=_cmd_bench)

    refine = sub.add_parser(
        "refine",
        help=(
            "counterexample-driven accuracy refinement of one IP's "
            "model: oracle -> stimulus search -> retrain -> publish"
        ),
    )
    refine.add_argument(
        "--ip", required=True, help="RAM|MultSum|AES|Camellia"
    )
    refine.add_argument(
        "--seed",
        type=int,
        default=0,
        help=(
            "seed driving the held-out evaluation stimulus and the "
            "perturbation search (same seed => bit-identical bundle)"
        ),
    )
    refine.add_argument(
        "--iterations",
        type=int,
        default=3,
        help="refinement iteration budget",
    )
    refine.add_argument(
        "--cycles", type=int, help="held-out evaluation trace length"
    )
    refine.add_argument(
        "--window",
        type=int,
        default=256,
        help="oracle scoring window, in instants",
    )
    refine.add_argument(
        "--worst",
        type=int,
        default=4,
        help="worst-scoring windows perturbed per iteration",
    )
    refine.add_argument(
        "--epsilon",
        type=float,
        default=0.05,
        help=(
            "convergence threshold: stop once an accepted iteration "
            "improves the MRE by less than this many percentage points"
        ),
    )
    refine.add_argument(
        "--max-counterexamples",
        type=int,
        default=12,
        help="counterexample traces folded into training per iteration",
    )
    refine.add_argument(
        "--stream-window",
        type=int,
        default=4096,
        help="instants per fit_stream training window",
    )
    refine.add_argument(
        "-o",
        "--output",
        default="refined.json",
        help="refined model output path (accuracy metadata embedded)",
    )
    refine.add_argument(
        "--publish",
        help=(
            "also atomically publish the refined bundle to this path "
            "(registry hot-swap target)"
        ),
    )
    refine.add_argument(
        "--json",
        help="write the psmgen-accuracy/v1 trajectory JSON to this path",
    )
    refine.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the flow's fan-out loops (0 = all CPUs)",
    )
    refine.set_defaults(func_cmd=_cmd_refine)

    convert = sub.add_parser(
        "convert",
        help="convert training trace pairs between CSV and binary (.npt)",
    )
    convert.add_argument(
        "--from-csv",
        help=(
            "CSV training pair prefix to read "
            "(<prefix>.func.csv + <prefix>.power.csv)"
        ),
    )
    convert.add_argument(
        "--from-binary", help="binary .npt training pair to read"
    )
    convert.add_argument(
        "--to-binary", help="binary .npt output path (with --from-csv)"
    )
    convert.add_argument(
        "--to-csv",
        help="CSV training pair output prefix (with --from-binary)",
    )
    convert.set_defaults(func_cmd=_cmd_convert)

    describe = sub.add_parser(
        "describe", help="inspect a saved PSM model"
    )
    describe.add_argument("--model", required=True, help="PSM model JSON")
    describe.add_argument(
        "--func", help="functional trace CSV for a coverage report"
    )
    describe.set_defaults(func_cmd=_cmd_describe)

    tables = sub.add_parser("tables", help="regenerate Tables I-III")
    tables.add_argument(
        "--short-only",
        action="store_true",
        help="skip the long-TS training rows of Table II",
    )
    tables.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="fit the benchmark IPs in this many worker processes",
    )
    tables.set_defaults(func_cmd=_cmd_tables)

    serve = sub.add_parser(
        "serve", help="run the estimation server over exported bundles"
    )
    serve.add_argument(
        "--models-dir",
        required=True,
        help="directory of exported PSM bundle JSON files (NAME.json)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    serve.add_argument(
        "--port", type=int, default=8080, help="TCP port (0 = ephemeral)"
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "simulation worker processes (1 = in-process threads over "
            "the registry's cached simulators)"
        ),
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="per-model queue bound; overflow answers 429 + Retry-After",
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=8,
        help="max requests coalesced into one simulation batch",
    )
    serve.add_argument(
        "--cap",
        type=int,
        default=8,
        help="max models kept loaded (LRU eviction past this)",
    )
    serve.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request timeout in seconds (expiry answers 504)",
    )
    serve.add_argument(
        "--engine",
        choices=("auto", "compiled", "object"),
        default="auto",
        help=(
            "batch execution backend: compiled kernels (default via "
            "auto) or the object-graph oracle; results are bit-identical"
        ),
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "shared-nothing worker processes behind a consistent-hash "
            "router (1 = the unchanged single-process server)"
        ),
    )
    serve.add_argument(
        "--replicas-hot",
        type=int,
        default=2,
        help=(
            "ring workers a hot model fans out to (least-loaded "
            "pick-2 routing among them)"
        ),
    )
    serve.add_argument(
        "--hot-rps",
        type=float,
        default=50.0,
        help="request rate past which a model is considered hot",
    )
    serve.add_argument(
        "--drain-timeout",
        type=float,
        default=10.0,
        help=(
            "seconds granted to in-flight requests when SIGTERM/SIGINT "
            "starts the graceful shutdown"
        ),
    )
    serve.add_argument(
        "--min-workers",
        type=int,
        default=0,
        help=(
            "autoscale floor (0 = --workers); the pool never drains "
            "below this"
        ),
    )
    serve.add_argument(
        "--max-workers",
        type=int,
        default=0,
        help=(
            "autoscale ceiling (0 = --workers, i.e. a fixed pool); "
            "setting it above --workers enables the autoscaler"
        ),
    )
    serve.add_argument(
        "--scale-interval",
        type=float,
        default=0.5,
        help="autoscaler control-loop tick in seconds",
    )
    serve.add_argument(
        "--scale-up-depth",
        type=float,
        default=2.0,
        help=(
            "mean in-flight requests per worker that counts as "
            "sustained pressure"
        ),
    )
    serve.add_argument(
        "--scale-up-ticks",
        type=int,
        default=3,
        help="consecutive pressured ticks required before scaling up",
    )
    serve.add_argument(
        "--p95-budget-ms",
        type=float,
        default=0.0,
        help=(
            "estimate p95 latency budget in ms; sustained breach "
            "triggers scale-up (0 = disabled)"
        ),
    )
    serve.add_argument(
        "--idle-drain",
        type=float,
        default=10.0,
        help=(
            "seconds of low pressure (and an empty hot set) before one "
            "worker is retired"
        ),
    )
    serve.add_argument(
        "--scale-cooldown",
        type=float,
        default=5.0,
        help="seconds after any scale event during which the next is blocked",
    )
    serve.add_argument(
        "--no-prewarm",
        action="store_true",
        help=(
            "skip replaying ring-arc models onto joining workers "
            "before they are published (workers join cold)"
        ),
    )
    serve.add_argument(
        "--negcache-ttl",
        type=float,
        default=2.0,
        help=(
            "router-side TTL in seconds for cached 404/quarantine "
            "verdicts (0 = disabled; publishes invalidate early)"
        ),
    )
    serve.set_defaults(func_cmd=_cmd_serve)

    loadgen = sub.add_parser(
        "loadgen", help="benchmark a running estimation server"
    )
    loadgen.add_argument(
        "--host", default="127.0.0.1", help="server address"
    )
    loadgen.add_argument(
        "--port",
        type=int,
        help="server port (omit with --scale-workers)",
    )
    loadgen.add_argument(
        "--model", required=True, help="model name to estimate against"
    )
    loadgen.add_argument(
        "--ip",
        help="built-in IP whose long-TS stimuli to replay (RAM|MultSum|...)",
    )
    loadgen.add_argument(
        "--func", help="functional trace CSV to replay instead of --ip"
    )
    loadgen.add_argument(
        "--cycles", type=int, help="long-TS length for --ip stimuli"
    )
    loadgen.add_argument(
        "--window",
        type=int,
        default=256,
        help="instants per request window",
    )
    loadgen.add_argument(
        "--rps", type=float, default=20.0, help="target requests/second"
    )
    loadgen.add_argument(
        "--duration", type=float, default=5.0, help="run length in seconds"
    )
    loadgen.add_argument(
        "--concurrency",
        type=int,
        default=8,
        help="max in-flight requests",
    )
    loadgen.add_argument(
        "--timeout",
        type=float,
        default=10.0,
        help="per-request client timeout in seconds",
    )
    loadgen.add_argument(
        "--warmup",
        type=int,
        default=0,
        help=(
            "requests sent before the timed window and excluded from "
            "latency stats (hides one-off model load/compile cost)"
        ),
    )
    loadgen.add_argument(
        "--payload",
        choices=("json", "npt"),
        default="json",
        help=(
            "request encoding: json trace documents or packed binary "
            ".npt containers (the zero-copy estimate route)"
        ),
    )
    loadgen.add_argument(
        "--seed",
        type=int,
        help=(
            "seed for deterministic window sampling (same seed = same "
            "request sequence; default replays windows round-robin)"
        ),
    )
    loadgen.add_argument(
        "--scale-workers",
        help=(
            "comma-separated worker counts (e.g. 1,2,4): start a "
            "psmgen serve cluster per count, load it at N * --rps, and "
            "report the scaling sweep"
        ),
    )
    loadgen.add_argument(
        "--elastic",
        help=(
            "MIN,MAX worker bounds (e.g. 1,3): start one autoscaling "
            "psmgen serve, load it above the scale-up threshold, and "
            "record the grow/drain convergence as an 'elastic' report "
            "section"
        ),
    )
    loadgen.add_argument(
        "--models-dir",
        help=(
            "exported-bundle directory for the --scale-workers/"
            "--elastic servers"
        ),
    )
    loadgen.add_argument(
        "--json",
        help=(
            "write the psmgen-loadgen/v1 report to this path (with "
            "--scale-workers/--elastic: merge a 'cluster'/'elastic' "
            "section into it)"
        ),
    )
    loadgen.set_defaults(func_cmd=_cmd_loadgen)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``psmgen`` command."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func_cmd(args)


if __name__ == "__main__":  # pragma: no cover
    try:
        sys.exit(main())
    except BrokenPipeError:
        # stdout consumer (e.g. `psmgen describe | head`) went away;
        # exit quietly with the conventional SIGPIPE status.
        sys.stderr.close()
        sys.exit(141)
