"""Per-stage micro-benchmark and perf-regression harness.

``run_micro`` times every pipeline stage of every registered IP in
isolation — mine / generate / simplify / join on the short training
suite, label / simulate (single-PSM) / estimate (multi-PSM) on the long
evaluation suite — and reports per-stage throughput.  The JSON payload
(``psmgen bench --micro --json``) is the committed ``BENCH_micro.json``
and the CI bench-smoke artifact; ``compare_micro`` flags stages whose
throughput regressed past a threshold against such a baseline.

Timings are best-of-``repeats`` after one untimed warm-up run, so
one-off costs (frozen-column conversion of a fresh trace, import-time
caches) do not pollute the figures.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from .bench import evaluation_trace, fit_benchmark, long_cycles, scale_factor
from .core.join import join
from .core.mining import AssertionMiner
from .core.generator import generate_psms
from .core.psm import clone_psm
from .core.simplify import simplify_all
from .core.simulation import SinglePsmSimulator
from .testbench import BENCHMARKS

#: Identifier of the payload layout (bump on breaking changes).
SCHEMA = "psmgen-micro-bench/v1"

#: The stages one micro-bench run times, in report order.
STAGES = (
    "mine",
    "generate",
    "simplify",
    "join",
    "label",
    "simulate_single",
    "estimate",
)


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    """Best wall time of ``repeats`` timed calls after one warm-up."""
    fn()
    best = float("inf")
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def micro_rows(
    name: str, cycles: Optional[int] = None, repeats: int = 3
) -> List[dict]:
    """Per-stage timing rows for one IP.

    The training stages run on the IP's short verification suite; the
    labelling/simulation stages replay a fresh ``cycles``-instant long
    suite through the short-TS model, matching the paper's Table III
    setup (and the regime the RLE fast paths target).
    """
    cycles = cycles or long_cycles()
    spec = BENCHMARKS[name]
    fitted = fit_benchmark(name)
    flow = fitted.flow
    mining = flow.mining
    labeler = mining.labeler
    config = spec.flow_config()

    train_trace = fitted.short_ref.trace
    train_power = fitted.short_ref.power
    power_map = {0: train_power}
    long_trace = evaluation_trace(name, cycles)

    simplified = simplify_all(
        [clone_psm(p) for p in flow.raw_psms], power_map, config.merge
    )
    single = SinglePsmSimulator(flow.raw_psms[0], labeler)

    timings = {
        "mine": lambda: AssertionMiner(config.miner).mine(train_trace),
        "generate": lambda: generate_psms(mining.traces, [train_power]),
        "simplify": lambda: simplify_all(
            [clone_psm(p) for p in flow.raw_psms], power_map, config.merge
        ),
        "join": lambda: join(
            [clone_psm(p) for p in simplified], power_map, config.merge
        ),
        "label": lambda: labeler.label(long_trace),
        "simulate_single": lambda: single.run(long_trace),
        "estimate": lambda: flow.estimate(long_trace),
    }
    stage_cycles = {
        "mine": len(train_trace),
        "generate": len(train_trace),
        "simplify": len(train_trace),
        "join": len(train_trace),
        "label": len(long_trace),
        "simulate_single": len(long_trace),
        "estimate": len(long_trace),
    }
    rows = []
    for stage in STAGES:
        wall = _best_of(timings[stage], repeats)
        n = stage_cycles[stage]
        rows.append(
            {
                "benchmark": name,
                "stage": stage,
                "wall_s": wall,
                "cycles": n,
                "cycles_per_s": n / wall if wall > 0 else float("inf"),
            }
        )
    return rows


def run_micro(
    names: Optional[List[str]] = None,
    cycles: Optional[int] = None,
    repeats: int = 3,
) -> dict:
    """The full micro-bench payload (``BENCH_micro.json`` layout)."""
    names = list(names) if names else list(BENCHMARKS)
    cycles = cycles or long_cycles()
    results: List[dict] = []
    for name in names:
        results.extend(micro_rows(name, cycles=cycles, repeats=repeats))
    return {
        "schema": SCHEMA,
        "repro_scale": scale_factor(),
        "long_cycles": cycles,
        "repeats": repeats,
        "results": results,
    }


def check_fields(obj: dict, fields, context: str = "payload") -> None:
    """Raise ``ValueError`` unless ``obj`` carries every typed field.

    ``fields`` is a sequence of ``(key, type-or-type-tuple)`` pairs —
    the shared validation core of every schema-versioned report
    (micro-bench here, the serving layer's loadgen report in
    :mod:`repro.serve.loadgen`).
    """
    if not isinstance(obj, dict):
        raise ValueError(f"{context} must be a JSON object, got {obj!r}")
    for key, kind in fields:
        if not isinstance(obj.get(key), kind):
            raise ValueError(f"bad {context} (field {key!r}): {obj!r}")


def validate_micro(payload: dict) -> None:
    """Raise ``ValueError`` unless ``payload`` is a well-formed report."""
    if not isinstance(payload, dict):
        raise ValueError("micro-bench payload must be a JSON object")
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"unexpected schema {payload.get('schema')!r}; want {SCHEMA!r}"
        )
    results = payload.get("results")
    if not isinstance(results, list) or not results:
        raise ValueError("payload has no results")
    for row in results:
        check_fields(
            row,
            (
                ("benchmark", str),
                ("stage", str),
                ("wall_s", (int, float)),
                ("cycles", int),
                ("cycles_per_s", (int, float)),
            ),
            context="result row",
        )


def compare_micro(
    current: dict, baseline: dict, threshold: float = 2.0
) -> List[str]:
    """Per-stage regressions of ``current`` against ``baseline``.

    Compares *throughput* (``cycles_per_s``), so runs at different
    ``REPRO_SCALE`` remain comparable; a stage regresses when its
    throughput dropped by more than ``threshold``x.  Returns
    human-readable descriptions (empty = no regression).
    """
    validate_micro(current)
    validate_micro(baseline)
    base = {
        (row["benchmark"], row["stage"]): row["cycles_per_s"]
        for row in baseline["results"]
    }
    regressions = []
    for row in current["results"]:
        reference = base.get((row["benchmark"], row["stage"]))
        if not reference or reference <= 0:
            continue
        ratio = reference / row["cycles_per_s"] if row["cycles_per_s"] else float("inf")
        if ratio > threshold:
            regressions.append(
                f"{row['benchmark']}/{row['stage']}: "
                f"{row['cycles_per_s']:.0f} cycles/s vs baseline "
                f"{reference:.0f} ({ratio:.1f}x slower)"
            )
    return regressions
