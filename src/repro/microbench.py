"""Per-stage micro-benchmark and perf-regression harness.

``run_micro`` times every pipeline stage of every registered IP in
isolation — mine / generate / simplify / join on the short training
suite, label / simulate (single-PSM) / estimate (multi-PSM) on the long
evaluation suite — and reports per-stage throughput.  The JSON payload
(``psmgen bench --micro --json``) is the committed ``BENCH_micro.json``
and the CI bench-smoke artifact; ``compare_micro`` flags stages whose
throughput regressed past a threshold against such a baseline.

Timings are best-of-``repeats`` after one untimed warm-up run, so
one-off costs (frozen-column conversion of a fresh trace, import-time
caches) do not pollute the figures.
"""

from __future__ import annotations

import math
import time
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from .bench import evaluation_trace, fit_benchmark, long_cycles, scale_factor
from .core.join import join
from .core.mining import AssertionMiner
from .core.generator import generate_psms
from .core.propositions import PropositionTrace
from .core.psm import clone_psm
from .core.simplify import simplify_all
from .core.simulation import SinglePsmSimulator
from .testbench import BENCHMARKS
from .traces.power import PowerTrace

#: Identifier of the payload layout (bump on breaking changes).
SCHEMA = "psmgen-micro-bench/v1"

#: The stages one micro-bench run times, in report order.  The
#: ``simulate_single`` / ``estimate`` rows run the compiled (dense
#: table) engine — the serving default — while the ``*_object`` rows
#: replay the same traces through the object-graph oracle so every
#: report carries its own like-for-like engine comparison.
STAGES = (
    "mine",
    "generate",
    "simplify",
    "join",
    "label",
    "simulate_single",
    "simulate_single_object",
    "estimate",
    "estimate_object",
)

#: Engine column per stage ("" = stage has no simulation engine).
STAGE_ENGINES = {
    "simulate_single": "compiled",
    "simulate_single_object": "object",
    "estimate": "compiled",
    "estimate_object": "object",
}

#: compiled stage -> object-oracle stage timed on the same run.
OBJECT_BASELINES = {
    "simulate_single": "simulate_single_object",
    "estimate": "estimate_object",
}


def _best_of(fn: Callable[[], object], repeats: int) -> float:
    """Best wall time of ``repeats`` timed calls after one warm-up."""
    fn()
    best = float("inf")
    for _ in range(max(repeats, 1)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def micro_rows(
    name: str, cycles: Optional[int] = None, repeats: int = 3
) -> List[dict]:
    """Per-stage timing rows for one IP.

    ``mine``/``simplify`` run on the IP's short verification suite.
    ``generate``/``join`` run on a ``cycles``-instant *long synthetic
    training pair* — the short training behaviour tiled out to ``cycles``
    instants — which is the regime the RLE generation and matrix join
    engines target.  The labelling/simulation stages replay a fresh
    ``cycles``-instant long suite through the short-TS model, matching
    the paper's Table III setup.
    """
    cycles = cycles or long_cycles()
    spec = BENCHMARKS[name]
    fitted = fit_benchmark(name)
    flow = fitted.flow
    mining = flow.mining
    labeler = mining.labeler
    config = spec.flow_config()

    train_trace = fitted.short_ref.trace
    train_power = fitted.short_ref.power
    power_map = {0: train_power}
    long_trace = evaluation_trace(name, cycles)

    # Long synthetic training pair: the training proposition/power traces
    # tiled out to the long-suite length.
    train_gamma = mining.traces[0]
    long_gamma = PropositionTrace.from_indices(
        np.resize(train_gamma.indices, cycles), train_gamma.alphabet, 0
    )
    long_power = PowerTrace(np.resize(train_power.values, cycles))
    long_power_map = {0: long_power}

    simplified = simplify_all(
        [clone_psm(p) for p in flow.raw_psms], power_map, config.merge
    )
    long_raw = generate_psms([long_gamma], [long_power])
    long_simplified = simplify_all(
        [clone_psm(p) for p in long_raw], long_power_map, config.merge
    )
    single = SinglePsmSimulator(flow.raw_psms[0], labeler)

    timings = {
        "mine": lambda: AssertionMiner(config.miner).mine(train_trace),
        "generate": lambda: generate_psms([long_gamma], [long_power]),
        "simplify": lambda: simplify_all(
            [clone_psm(p) for p in flow.raw_psms], power_map, config.merge
        ),
        # join does not mutate its inputs, so the timed call runs on the
        # precomputed simplified set directly (no per-call deep clone).
        "join": lambda: join(
            long_simplified, long_power_map, config.merge
        ),
        "label": lambda: labeler.label(long_trace),
        "simulate_single": lambda: single.run(long_trace, engine="compiled"),
        "simulate_single_object": lambda: single.run(
            long_trace, engine="object"
        ),
        "estimate": lambda: flow.estimate(long_trace, engine="compiled"),
        "estimate_object": lambda: flow.estimate(long_trace, engine="object"),
    }
    stage_cycles = {
        "mine": len(train_trace),
        "generate": len(long_gamma),
        "simplify": len(train_trace),
        "join": len(long_gamma),
        "label": len(long_trace),
        "simulate_single": len(long_trace),
        "simulate_single_object": len(long_trace),
        "estimate": len(long_trace),
        "estimate_object": len(long_trace),
    }
    rows = []
    walls: Dict[str, float] = {}
    for stage in STAGES:
        wall = _best_of(timings[stage], repeats)
        walls[stage] = wall
        n = stage_cycles[stage]
        row = {
            "benchmark": name,
            "stage": stage,
            "wall_s": wall,
            "cycles": n,
            "cycles_per_s": n / wall if wall > 0 else float("inf"),
        }
        engine = STAGE_ENGINES.get(stage)
        if engine:
            row["engine"] = engine
        rows.append(row)
    # Annotate the compiled rows with the same-run object baseline so a
    # single report answers "how much faster is the compiled engine".
    for row in rows:
        baseline_stage = OBJECT_BASELINES.get(row["stage"])
        if baseline_stage is None:
            continue
        baseline_wall = walls[baseline_stage]
        row["object_wall_s"] = baseline_wall
        if row["wall_s"] > 0 and baseline_wall > 0:
            row["speedup_vs_object"] = baseline_wall / row["wall_s"]
    return rows


def run_micro(
    names: Optional[List[str]] = None,
    cycles: Optional[int] = None,
    repeats: int = 3,
) -> dict:
    """The full micro-bench payload (``BENCH_micro.json`` layout)."""
    names = list(names) if names else list(BENCHMARKS)
    cycles = cycles or long_cycles()
    results: List[dict] = []
    for name in names:
        results.extend(micro_rows(name, cycles=cycles, repeats=repeats))
    return {
        "schema": SCHEMA,
        "repro_scale": scale_factor(),
        "long_cycles": cycles,
        "repeats": repeats,
        "results": results,
    }


def check_fields(obj: dict, fields, context: str = "payload") -> None:
    """Raise ``ValueError`` unless ``obj`` carries every typed field.

    ``fields`` is a sequence of ``(key, type-or-type-tuple)`` pairs —
    the shared validation core of every schema-versioned report
    (micro-bench here, the serving layer's loadgen report in
    :mod:`repro.serve.loadgen`).
    """
    if not isinstance(obj, dict):
        raise ValueError(f"{context} must be a JSON object, got {obj!r}")
    for key, kind in fields:
        if not isinstance(obj.get(key), kind):
            raise ValueError(f"bad {context} (field {key!r}): {obj!r}")


def validate_micro(payload: dict) -> None:
    """Raise ``ValueError`` unless ``payload`` is a well-formed report."""
    if not isinstance(payload, dict):
        raise ValueError("micro-bench payload must be a JSON object")
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"unexpected schema {payload.get('schema')!r}; want {SCHEMA!r}"
        )
    results = payload.get("results")
    if not isinstance(results, list) or not results:
        raise ValueError("payload has no results")
    for row in results:
        check_fields(
            row,
            (
                ("benchmark", str),
                ("stage", str),
                ("wall_s", (int, float)),
                ("cycles", int),
                ("cycles_per_s", (int, float)),
            ),
            context="result row",
        )


def _row_throughput(row: dict) -> float:
    """Comparable throughput of one result row.

    Tiny-scale runs can record ``wall_s == 0`` (the stage finished below
    the clock resolution), which the naive ``cycles / wall_s`` turns into
    a ``ZeroDivisionError`` and a serialised ``cycles_per_s`` of
    ``Infinity``.  Such rows — and rows missing the timing fields
    entirely — are reported as ``0.0``, i.e. "no usable measurement",
    which comparison code treats as *skip*, never as a regression.
    """
    throughput = row.get("cycles_per_s")
    if (
        isinstance(throughput, (int, float))
        and math.isfinite(throughput)
        and throughput > 0
    ):
        return float(throughput)
    wall = row.get("wall_s")
    cycles = row.get("cycles")
    if (
        not isinstance(wall, (int, float))
        or not isinstance(cycles, (int, float))
        or wall <= 0
        or not math.isfinite(wall)
    ):
        return 0.0
    return cycles / wall


def compare_micro(
    current: dict, baseline: dict, threshold: float = 2.0
) -> List[str]:
    """Per-stage regressions of ``current`` against ``baseline``.

    Compares *throughput* (``cycles_per_s``), so runs at different
    ``REPRO_SCALE`` remain comparable; a stage regresses when its
    throughput dropped by more than ``threshold``x.  Rows without a
    usable measurement on either side (zero or missing wall time, as on
    tiny-scale smoke runs) are skipped instead of dividing by zero.
    Returns human-readable descriptions (empty = no regression).
    """
    validate_micro(current)
    validate_micro(baseline)
    base = {
        (row["benchmark"], row["stage"]): _row_throughput(row)
        for row in baseline["results"]
    }
    regressions = []
    for row in current["results"]:
        reference = base.get((row["benchmark"], row["stage"]), 0.0)
        if reference <= 0:
            continue
        throughput = _row_throughput(row)
        if throughput <= 0:
            continue
        ratio = reference / throughput
        if ratio > threshold:
            regressions.append(
                f"{row['benchmark']}/{row['stage']}: "
                f"{throughput:.0f} cycles/s vs baseline "
                f"{reference:.0f} ({ratio:.1f}x slower)"
            )
    return regressions


def speedups_micro(
    current: dict, baseline: dict
) -> Dict[Tuple[str, str], float]:
    """Per-stage throughput ratio ``current / baseline``.

    Keys are ``(benchmark, stage)``; values above 1.0 are speedups.
    Rows without a usable measurement on either side are omitted.
    """
    validate_micro(current)
    validate_micro(baseline)
    base = {
        (row["benchmark"], row["stage"]): _row_throughput(row)
        for row in baseline["results"]
    }
    speedups: Dict[Tuple[str, str], float] = {}
    for row in current["results"]:
        key = (row["benchmark"], row["stage"])
        reference = base.get(key, 0.0)
        throughput = _row_throughput(row)
        if reference > 0 and throughput > 0:
            speedups[key] = throughput / reference
    return speedups
