"""Consistent hash ring: stable model -> worker placement.

The cluster router (DESIGN.md §3.7) shards models across shared-nothing
workers so each worker's registry / compiled-bundle / LRU cache stays
hot for its own slice of the model set.  A consistent ring — rather
than ``hash(model) % N`` — keeps that placement *stable under
membership change*: when one of N workers dies, only the ~1/N of the
key space it owned moves (to its ring successors); every other model
keeps its warmed worker and pays no recompile.

Each worker is projected onto the ring as ``vnodes`` virtual points
(SHA-1 of ``"worker-id#i"``), which evens out ownership across the
2^32 key space; lookups bisect the sorted point list.  The hash is
deliberately *not* Python's seeded ``hash()``: placements must agree
across router restarts and between processes.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, List, Tuple

#: Virtual points per worker; 64 keeps worst-case ownership within a
#: few percent of fair for single-digit worker counts.
DEFAULT_VNODES = 64


def ring_hash(key: str) -> int:
    """Deterministic 32-bit position of ``key`` on the ring."""
    digest = hashlib.sha1(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big")


class HashRing:
    """Sorted virtual-node ring over a changing set of worker ids."""

    def __init__(self, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = int(vnodes)
        self._points: List[Tuple[int, str]] = []
        self._workers: Dict[str, List[int]] = {}

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker: str) -> bool:
        return worker in self._workers

    @property
    def workers(self) -> List[str]:
        """Current members, sorted by id."""
        return sorted(self._workers)

    # ------------------------------------------------------------------
    def add(self, worker: str) -> None:
        """Join ``worker`` (idempotent)."""
        if worker in self._workers:
            return
        points = [
            ring_hash(f"{worker}#{index}") for index in range(self.vnodes)
        ]
        self._workers[worker] = points
        for point in points:
            bisect.insort(self._points, (point, worker))

    def remove(self, worker: str) -> None:
        """Leave ``worker`` (idempotent); its arcs fall to successors."""
        if self._workers.pop(worker, None) is None:
            return
        self._points = [
            entry for entry in self._points if entry[1] != worker
        ]

    def clone(self) -> "HashRing":
        """An independent copy with the same members and vnode count.

        The supervisor's pre-warm step builds a *candidate* ring — the
        membership the cluster will have once a joining worker is
        published — to compute which model arcs that worker is about to
        own without mutating the live ring mid-placement.
        """
        other = HashRing(vnodes=self.vnodes)
        other._points = list(self._points)
        other._workers = {
            worker: list(points) for worker, points in self._workers.items()
        }
        return other

    # ------------------------------------------------------------------
    def lookup(self, key: str) -> str:
        """The worker owning ``key`` (its primary placement)."""
        return self.preference(key, 1)[0]

    def preference(self, key: str, k: int) -> List[str]:
        """The first ``k`` *distinct* workers clockwise from ``key``.

        Element 0 is the primary; the rest are the replica set used for
        hot-model fan-out.  ``k`` is clamped to the member count.
        Raises ``LookupError`` on an empty ring.
        """
        if not self._points:
            raise LookupError("hash ring is empty")
        k = min(max(int(k), 1), len(self._workers))
        start = bisect.bisect(self._points, (ring_hash(key), "￿"))
        chosen: List[str] = []
        seen = set()
        for offset in range(len(self._points)):
            _, worker = self._points[(start + offset) % len(self._points)]
            if worker not in seen:
                seen.add(worker)
                chosen.append(worker)
                if len(chosen) == k:
                    break
        return chosen

    # ------------------------------------------------------------------
    def ownership(self) -> Dict[str, float]:
        """Fraction of the key space each worker owns (sums to 1.0).

        Rendered as the ``psmgen_ring_share`` gauge so a rebalance is
        visible in the aggregated cluster metrics.
        """
        if not self._points:
            return {}
        shares = {worker: 0 for worker in self._workers}
        span = 1 << 32
        previous = self._points[-1][0] - span
        for point, worker in self._points:
            shares[worker] += point - previous
            previous = point
        return {
            worker: owned / span for worker, owned in sorted(shares.items())
        }
