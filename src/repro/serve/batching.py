"""Micro-batching executor: coalesce concurrent estimates per model.

Concurrent ``/v1/estimate`` requests targeting the same model are
coalesced into one batch and simulated back-to-back in a single executor
submission, amortising the scheduling and (in process mode) the
cross-process dispatch over up to ``max_batch`` requests.  By default a
batch executes on the compiled engine (DESIGN.md §3.5): every lane is
integer-coded up front and swept through the model's shared segment
tables in one kernel call, which is bit-identical to — and an order of
magnitude faster than — stepping the object-graph
:class:`~repro.core.simulation.MultiPsmSimulator` per trace
(``engine="object"`` keeps that oracle path selectable).

Execution modes follow :func:`repro.parallel.make_pool`: with
``jobs > 1`` (and process support) batches run on a persistent
``ProcessPoolExecutor`` whose workers load-and-cache bundles from disk
by ``(path, version)``; otherwise batches run on a small thread pool
against the registry's cached simulator (numpy releases the GIL for the
vectorised fills).  Per-model batches are serialised either way, so the
shared simulator caches are never raced.

Backpressure is explicit: each model has a bounded queue of pending
jobs; when it is full, :meth:`MicroBatcher.submit` raises
:class:`QueueFullError` carrying a ``retry_after`` estimate derived from
the queue depth and a smoothed batch duration — the server maps this to
``429`` + ``Retry-After`` instead of buffering unboundedly.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..core.export import labeler_from_psms, load_psms
from ..core.simulation import MultiPsmSimulator
from ..parallel import make_pool, resolve_jobs
from ..traces.io import BinaryTraceReader, functional_trace_from_json
from .metrics import MetricsRegistry
from .registry import ModelEntry, ModelRegistry

#: Backends a batch may execute on (``auto`` resolves to compiled).
ENGINES = ("auto", "compiled", "object")


class QueueFullError(RuntimeError):
    """The per-model pending queue is at capacity (backpressure).

    ``retry_after`` is the whole-second hint the server returns in the
    ``Retry-After`` header.
    """

    def __init__(self, model: str, depth: int, retry_after: int) -> None:
        super().__init__(
            f"estimate queue for model {model!r} is full ({depth} pending)"
        )
        self.model = model
        self.depth = depth
        self.retry_after = max(int(retry_after), 1)


@dataclass
class _Job:
    """One pending estimate: its tagged input and the awaiting future.

    ``payload`` is ``("json", trace_document)`` for the JSON wire form
    or ``("npt", container_bytes)`` for a binary ``.npt`` body (decoded
    zero-copy at execution time).
    """

    payload: Tuple[str, object]
    future: "asyncio.Future"


def _decode_payload(payload: Tuple[str, object]):
    """One job's trace: JSON rebuild or zero-copy ``.npt`` view."""
    kind, data = payload
    if kind == "npt":
        return BinaryTraceReader.from_bytes(data).view_functional()
    return functional_trace_from_json(data)


def simulate_one(entry_or_simulator, trace_json: dict, engine: str = "auto") -> dict:
    """Simulate one trace window; the shared unit of work of every mode.

    Returns the ``EstimationResult.to_json`` payload plus the
    simulation wall time and the backend that produced it.  Accepts
    either a registry entry or a bare simulator so in-process and
    worker-process callers share one code path (and therefore
    bit-identical results).
    """
    simulator = getattr(entry_or_simulator, "simulator", entry_or_simulator)
    trace = functional_trace_from_json(trace_json)
    start = time.perf_counter()
    result = simulator.run(trace, engine=engine)
    wall = time.perf_counter() - start
    payload = result.to_json()
    payload["sim_seconds"] = wall
    payload["engine"] = "object" if engine == "object" else "compiled"
    return payload


def _execute_batch(
    simulator: MultiPsmSimulator,
    payloads: List[Tuple[str, object]],
    engine: str,
) -> List[dict]:
    """Run one coalesced batch; the shared body of both execution modes.

    On the compiled engine the whole batch goes through one kernel
    sweep over the simulator's shared segment tables: every lane is
    integer-coded up front, then walked back-to-back, so each table
    edge resolved for one request is reused by all the others.  Each
    payload reports its amortised share of the batch kernel wall time
    as ``sim_seconds`` plus the whole-batch figure.
    """
    traces = [_decode_payload(payload) for payload in payloads]
    start = time.perf_counter()
    if engine == "object":
        results = []
        walls = []
        for trace in traces:
            one = time.perf_counter()
            results.append(simulator.run(trace, engine="object"))
            walls.append(time.perf_counter() - one)
        batch_wall = time.perf_counter() - start
    else:
        machine = simulator._compiled()
        for trace in traces:
            machine._coded(trace)
        results = [machine.run(trace) for trace in traces]
        batch_wall = time.perf_counter() - start
        walls = [batch_wall / len(traces)] * len(traces)
    out: List[dict] = []
    for result, wall in zip(results, walls):
        payload = result.to_json()
        payload["sim_seconds"] = wall
        payload["batch_sim_seconds"] = batch_wall
        payload["engine"] = "object" if engine == "object" else "compiled"
        out.append(payload)
    return out


def _simulate_batch_inline(
    entry: ModelEntry,
    payloads: List[Tuple[str, object]],
    engine: str = "auto",
) -> List[dict]:
    """Thread-mode batch body: reuse the registry's cached simulator."""
    return _execute_batch(entry.simulator, payloads, engine)


#: Per-worker-process bundle cache: ``(path, version) -> simulator``.
_WORKER_MODELS: Dict[Tuple[str, str], MultiPsmSimulator] = {}

#: Worker-side cache cap: serving workers hold at most this many models.
_WORKER_CACHE_CAP = 8


def _simulate_batch_worker(
    path: str,
    version: str,
    payloads: List[Tuple[str, object]],
    engine: str = "auto",
) -> List[dict]:
    """Process-mode batch body: load-and-cache the bundle, then simulate.

    Workers rebuild the simulator from the bundle *file* (nothing heavy
    crosses the process boundary) and cache it by ``(path, version)``,
    so a hot-reloaded bundle is picked up while steady-state batches pay
    zero reload cost.  The compiled machine lives on the cached
    simulator, so its tables survive across batches too.
    """
    key = (path, version)
    simulator = _WORKER_MODELS.get(key)
    if simulator is None:
        psms = load_psms(path)
        labeler = labeler_from_psms(psms)
        simulator = MultiPsmSimulator(psms, labeler)
        while len(_WORKER_MODELS) >= _WORKER_CACHE_CAP:
            _WORKER_MODELS.pop(next(iter(_WORKER_MODELS)))
        _WORKER_MODELS[key] = simulator
    return _execute_batch(simulator, payloads, engine)


class MicroBatcher:
    """Coalesces concurrent per-model estimate requests into batches.

    One lazily-started drainer task per model pulls up to ``max_batch``
    pending jobs at a time and executes them as a single submission;
    while a batch is in flight, newly arriving requests accumulate in
    the (bounded) queue and form the next batch — that is where the
    coalescing comes from.
    """

    #: Thread-mode batches whose recent wall EWMA sits under this many
    #: seconds run inline on the event loop instead of hopping to the
    #: executor — the handoff costs more than the compiled kernel.
    INLINE_WALL_S = 0.002

    def __init__(
        self,
        registry: ModelRegistry,
        metrics: Optional[MetricsRegistry] = None,
        jobs: int = 1,
        max_queue: int = 64,
        max_batch: int = 8,
        engine: str = "auto",
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(f"unknown engine: {engine!r}")
        self.registry = registry
        self.engine = engine
        self.max_queue = max(int(max_queue), 1)
        self.max_batch = max(int(max_batch), 1)
        self._pool = make_pool(jobs)
        self._threads: Optional[ThreadPoolExecutor] = None
        if self._pool is None:
            self._threads = ThreadPoolExecutor(
                max_workers=min(resolve_jobs(jobs), 4),
                thread_name_prefix="psm-batch",
            )
        self._queues: Dict[str, Deque[_Job]] = {}
        self._wakeups: Dict[str, asyncio.Event] = {}
        self._drainers: Dict[str, asyncio.Task] = {}
        self._batch_ewma: Dict[str, float] = {}
        self._executing = 0
        self._settled: Optional[asyncio.Event] = None
        metrics = metrics or MetricsRegistry()
        self._batch_size = metrics.histogram(
            "psmgen_batch_size",
            "Requests coalesced per simulation batch.",
            buckets=(1, 2, 4, 8, 16, 32, 64),
        )
        self._batch_occupancy = metrics.histogram(
            "psmgen_batch_occupancy",
            "Fill ratio of each simulation batch (size / max_batch); "
            "sustained occupancy near 1.0 means the worker is "
            "saturated — the cluster router's replica trigger and "
            "operators both read this.",
            buckets=(0.125, 0.25, 0.375, 0.5, 0.625, 0.75, 0.875, 1.0),
        )
        self._batch_seconds = metrics.histogram(
            "psmgen_batch_seconds",
            "Wall time of one batch submission.",
            labelnames=("model",),
        )
        self._queue_depth = metrics.gauge(
            "psmgen_queue_depth",
            "Pending estimate requests per model.",
            labelnames=("model",),
        )
        self._pending_total = metrics.gauge(
            "psmgen_pending_total",
            "Pending estimate requests across all models plus "
            "batches currently executing.",
        )
        self._rejected = metrics.counter(
            "psmgen_rejected_total",
            "Requests rejected before execution.",
            labelnames=("reason",),
        )
        self._instants = metrics.counter(
            "psmgen_simulated_instants_total",
            "Trace instants simulated, per model.",
            labelnames=("model",),
        )

    @property
    def mode(self) -> str:
        """``"process"`` or ``"thread"`` — the active execution mode."""
        return "process" if self._pool is not None else "thread"

    # ------------------------------------------------------------------
    def pending(self) -> int:
        """Queued jobs plus batches currently executing."""
        return sum(len(q) for q in self._queues.values()) + self._executing

    def _note_settled(self) -> None:
        self._pending_total.set(self.pending())
        if self._settled is not None and self.pending() == 0:
            self._settled.set()

    async def drain(self, deadline_s: float) -> bool:
        """Wait until every queued job has executed; True if it did.

        The graceful-shutdown path: the server has already stopped
        accepting work, so the queues only shrink.  Waits at most
        ``deadline_s`` seconds; a ``False`` return means jobs were
        still pending (the caller will fail them via :meth:`aclose`).
        """
        if self.pending() == 0:
            return True
        self._settled = asyncio.Event()
        try:
            await asyncio.wait_for(
                self._settled.wait(), max(float(deadline_s), 0.001)
            )
            return True
        except asyncio.TimeoutError:
            return self.pending() == 0
        finally:
            self._settled = None

    # ------------------------------------------------------------------
    def retry_after(self, model: str) -> int:
        """Whole-second backoff hint for a full queue."""
        depth = len(self._queues.get(model, ()))
        ewma = self._batch_ewma.get(model, 0.05)
        batches_ahead = (depth + self.max_batch - 1) // self.max_batch
        return min(max(1, round(batches_ahead * ewma + 0.5)), 30)

    async def submit(
        self,
        model: str,
        trace_json: Optional[dict] = None,
        npt_bytes: Optional[bytes] = None,
    ) -> dict:
        """Queue one estimate and await its result payload.

        The input is either a JSON trace document (``trace_json``) or a
        binary ``.npt`` container body (``npt_bytes``), exactly one of
        the two.  Raises :class:`QueueFullError` immediately when the
        model's queue is at capacity, and propagates registry errors
        (unknown / quarantined model) and simulation errors from the
        executor.
        """
        if (trace_json is None) == (npt_bytes is None):
            raise ValueError("exactly one of trace_json/npt_bytes")
        entry = self.registry.get(model)  # validates + warms the cache
        queue = self._queues.setdefault(model, deque())
        if len(queue) >= self.max_queue:
            self._rejected.inc(reason="queue_full")
            raise QueueFullError(
                model, len(queue), self.retry_after(model)
            )
        loop = asyncio.get_running_loop()
        payload = (
            ("npt", npt_bytes)
            if npt_bytes is not None
            else ("json", trace_json)
        )
        job = _Job(payload, loop.create_future())
        queue.append(job)
        self._queue_depth.set(len(queue), model=model)
        self._pending_total.set(self.pending())
        self._ensure_drainer(model, entry)
        return await job.future

    # ------------------------------------------------------------------
    def _ensure_drainer(self, model: str, entry: ModelEntry) -> None:
        event = self._wakeups.setdefault(model, asyncio.Event())
        event.set()
        task = self._drainers.get(model)
        if task is None or task.done():
            self._drainers[model] = asyncio.get_running_loop().create_task(
                self._drain_loop(model), name=f"psm-drain-{model}"
            )

    async def _drain_loop(self, model: str) -> None:
        """Forever: wait for work, then execute one batch at a time."""
        event = self._wakeups[model]
        queue = self._queues[model]
        while True:
            if not queue:
                event.clear()
                await event.wait()
                continue
            await self.drain_once(model)

    async def drain_once(self, model: str) -> int:
        """Execute one batch (<= ``max_batch`` pending jobs); its size.

        Exposed for deterministic tests; the drainer loop calls it
        repeatedly.
        """
        queue = self._queues.get(model)
        if not queue:
            return 0
        batch = [
            queue.popleft()
            for _ in range(min(len(queue), self.max_batch))
        ]
        self._executing += 1
        self._queue_depth.set(len(queue), model=model)
        self._batch_size.observe(len(batch))
        self._batch_occupancy.observe(len(batch) / self.max_batch)
        payloads = [job.payload for job in batch]
        loop = asyncio.get_running_loop()
        start = time.perf_counter()
        try:
            entry = self.registry.get(model)
            if self.engine != "object":
                # Per-digest compiled cache (ticks the compile counters;
                # in thread mode the batch then runs on this machine).
                self.registry.compiled_for(entry)
            if self._pool is not None:
                results = await loop.run_in_executor(
                    self._pool,
                    _simulate_batch_worker,
                    str(entry.path),
                    entry.version,
                    payloads,
                    self.engine,
                )
            elif (
                self._batch_ewma.get(model, 1.0) < self.INLINE_WALL_S
            ):
                # Sub-millisecond batches (the compiled kernel on short
                # windows) lose more latency to the thread handoff than
                # to the simulation itself; run them on the loop.  The
                # EWMA keeps genuinely slow models on the executor so a
                # long batch can never stall unrelated connections.
                results = _simulate_batch_inline(
                    entry, payloads, self.engine
                )
            else:
                results = await loop.run_in_executor(
                    self._threads,
                    _simulate_batch_inline,
                    entry,
                    payloads,
                    self.engine,
                )
        except Exception as exc:  # registry or simulation failure
            for job in batch:
                if not job.future.done():
                    job.future.set_exception(exc)
            return len(batch)
        finally:
            self._executing -= 1
            self._note_settled()
        wall = time.perf_counter() - start
        self._batch_seconds.observe(wall, model=model)
        previous = self._batch_ewma.get(model, wall)
        self._batch_ewma[model] = 0.7 * previous + 0.3 * wall
        for job, payload in zip(batch, results):
            payload["batch_size"] = len(batch)
            self._instants.inc(payload.get("instants", 0), model=model)
            if not job.future.done():  # the waiter may have timed out
                job.future.set_result(payload)
        return len(batch)

    # ------------------------------------------------------------------
    async def aclose(self) -> None:
        """Cancel drainers, fail pending jobs, shut the executors down."""
        for task in self._drainers.values():
            task.cancel()
        for task in self._drainers.values():
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._drainers.clear()
        for model, queue in self._queues.items():
            while queue:
                job = queue.popleft()
                if not job.future.done():
                    job.future.set_exception(
                        RuntimeError("server shutting down")
                    )
            self._queue_depth.set(0, model=model)
        self._pending_total.set(0)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        if self._threads is not None:
            self._threads.shutdown(wait=False, cancel_futures=True)
