"""PSM serving layer: registry + asyncio estimation server + cluster.

Turns exported PSM bundles into a long-running estimation service
(paper motivation: mined PSMs make power estimation cheap enough to run
*in the loop* — which demands a query service, not one-shot CLI runs):

* :mod:`repro.serve.registry` — discovers, validates, versions and
  hot-reloads bundles; one cached labeler + simulator per model, LRU
  bounded;
* :mod:`repro.serve.batching` — coalesces concurrent same-model
  requests into micro-batches with bounded queues and backpressure;
* :mod:`repro.serve.wire` — the shared stdlib HTTP/1.1 framing used by
  the server, the cluster router and the client pools;
* :mod:`repro.serve.server` — the dependency-free asyncio HTTP JSON
  API (``/v1/estimate``, ``/v1/models``, ``/healthz``, ``/metrics``);
* :mod:`repro.serve.ring` — the consistent hash ring placing models on
  workers;
* :mod:`repro.serve.cluster` — the shared-nothing multi-worker cluster:
  front router, replica fan-out for hot models, worker supervision
  with drain/rebalance, elastic autoscaling between ``--min-workers``
  and ``--max-workers`` with ring-arc pre-warm, and a router-side
  negative-result cache (``psmgen serve --workers N``);
* :mod:`repro.serve.metrics` — Prometheus-text metrics;
* :mod:`repro.serve.loadgen` — the RPS-targeted benchmark client, its
  ``psmgen-loadgen/v1`` report and the worker-scaling sweep.
"""

from .batching import MicroBatcher, QueueFullError
from .cluster import (
    Autoscaler,
    ClusterConfig,
    NegativeCache,
    ServeCluster,
    create_cluster,
)
from .loadgen import (
    run_elastic_bench,
    run_loadgen,
    run_scaling_bench,
    validate_elastic,
    validate_loadgen,
)
from .metrics import MetricsRegistry, parse_prometheus, sum_samples
from .registry import (
    ModelEntry,
    ModelRegistry,
    QuarantinedModelError,
    UnknownModelError,
)
from .ring import HashRing
from .server import PsmServer, create_server

__all__ = [
    "MicroBatcher",
    "QueueFullError",
    "Autoscaler",
    "ClusterConfig",
    "NegativeCache",
    "ServeCluster",
    "create_cluster",
    "run_elastic_bench",
    "run_loadgen",
    "run_scaling_bench",
    "validate_elastic",
    "validate_loadgen",
    "MetricsRegistry",
    "parse_prometheus",
    "sum_samples",
    "ModelEntry",
    "ModelRegistry",
    "QuarantinedModelError",
    "UnknownModelError",
    "HashRing",
    "PsmServer",
    "create_server",
]
