"""PSM serving layer: registry + asyncio estimation server + loadgen.

Turns exported PSM bundles into a long-running estimation service
(paper motivation: mined PSMs make power estimation cheap enough to run
*in the loop* — which demands a query service, not one-shot CLI runs):

* :mod:`repro.serve.registry` — discovers, validates, versions and
  hot-reloads bundles; one cached labeler + simulator per model, LRU
  bounded;
* :mod:`repro.serve.batching` — coalesces concurrent same-model
  requests into micro-batches with bounded queues and backpressure;
* :mod:`repro.serve.server` — the dependency-free asyncio HTTP JSON
  API (``/v1/estimate``, ``/v1/models``, ``/healthz``, ``/metrics``);
* :mod:`repro.serve.metrics` — Prometheus-text metrics;
* :mod:`repro.serve.loadgen` — the RPS-targeted benchmark client and
  its ``psmgen-loadgen/v1`` report.
"""

from .batching import MicroBatcher, QueueFullError
from .loadgen import run_loadgen, validate_loadgen
from .metrics import MetricsRegistry, parse_prometheus
from .registry import (
    ModelEntry,
    ModelRegistry,
    QuarantinedModelError,
    UnknownModelError,
)
from .server import PsmServer, create_server

__all__ = [
    "MicroBatcher",
    "QueueFullError",
    "run_loadgen",
    "validate_loadgen",
    "MetricsRegistry",
    "parse_prometheus",
    "ModelEntry",
    "ModelRegistry",
    "QuarantinedModelError",
    "UnknownModelError",
    "PsmServer",
    "create_server",
]
