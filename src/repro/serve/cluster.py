"""Shared-nothing multi-worker serving cluster: router + supervisor.

``psmgen serve --workers N`` (DESIGN.md §3.7) grows the single-process
estimation server into a cluster with three moving parts, all in this
module:

* **Workers** — N independent processes (spawned and supervised via
  :mod:`repro.parallel`), each running the unmodified single-process
  server loop (:class:`~repro.serve.server.PsmServer`) on its own
  ephemeral port with its own registry, compiled-bundle cache and
  micro-batcher.  Nothing is shared, so worker throughput multiplies
  across cores instead of serialising on one interpreter.
* **Router** — one asyncio front process accepting every client
  connection.  ``POST /v1/estimate`` consistent-hashes the model key
  over the worker ring (:class:`~repro.serve.ring.HashRing`), so each
  worker's caches stay hot for its shard.  Models whose request rate
  or router-observed queue depth crosses the hot threshold fan out to
  ``replicas_hot`` ring successors with least-loaded pick-2 routing.
  A forward that fails at the transport level (worker died mid-flight)
  is retried on the next ring worker — estimates are pure functions of
  (bundle, trace), so replays are safe and clients never see the loss.
* **Supervisor** — polls worker liveness, removes dead workers from
  the ring (instant rebalance: only the dead worker's arcs move),
  respawns them with backoff, and re-adds them once their ready
  handshake lands.  Shutdown drains: the router stops accepting and
  finishes in-flight requests, then workers get SIGTERM and run their
  own graceful drain (:meth:`~repro.serve.server.PsmServer.shutdown`).

The elastic layer (DESIGN.md §3.9) adds three parts on top:

* **Autoscaler** — a control loop sampling the router's own signals
  (per-model rate EWMAs and in-flight depth from :class:`HotTracker`,
  the rolling estimate p95) and scaling the pool between
  ``--min-workers`` and ``--max-workers``: scale-up on sustained queue
  pressure, hot-model fan-out demand or a p95 budget breach;
  scale-down only after a full idle-drain window; hysteresis plus a
  cooldown so the pool never flaps.  Spawn/retire reuses the
  supervisor's respawn machinery and the ring's minimal-movement
  add/remove, so a scale event moves only the joining/leaving arcs.
* **Arc pre-warm** — before a joining (or respawned) worker is
  published into the ring, the supervisor computes the model arcs it
  is about to own (candidate ring + the registry's bundle index) and
  replays them through the worker's ``POST /v1/warm`` endpoint, so its
  registry LRU and compiled cache are hot at first byte.
* **Negative-result cache** — a router-side TTL cache of 404/
  quarantined estimate outcomes: repeated bad traffic is answered at
  the router and never crosses the fan-out.  Entries remember the
  bundle file's signature, so publishing (or replacing) the bundle
  invalidates on the very next lookup — a newly published model is
  never shadowed by its own 404.

``GET /metrics`` on the router aggregates every live worker's
Prometheus exposition — each sample gains a ``worker="wK"`` label — on
top of the router's own series (ring ownership, per-worker in-flight,
forward retries, worker restarts), so one scrape sees cluster-level
queue depth, batch occupancy and per-worker latency histograms.

The in-process backend (``backend="inproc"``) runs every "worker" as a
:class:`PsmServer` on the router's own event loop — the automatic
fallback where process spawning is unavailable (restricted sandboxes,
pytest-xdist workers) and the deterministic substrate for the test
suite.  The wire protocol and routing logic are identical.
"""

from __future__ import annotations

import asyncio
import json
import random
import signal
import time
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Optional, Set, Tuple

from ..parallel import spawn_process, under_test_worker, worker_pipe
from ..traces.io import BINARY_MAGIC
from .metrics import MetricsRegistry
from .registry import discover_bundles
from .ring import HashRing
from .server import NPT_CONTENT_TYPE, WORKER_HEADER, PsmServer, create_server
from .wire import (
    BadRequestError,
    encode_body,
    read_request,
    read_response,
    write_response,
)

#: Worker lifecycle states.
STARTING, READY, DRAINING, DEAD = "starting", "ready", "draining", "dead"

#: Response headers the router relays from worker responses.
RELAY_HEADERS = ("retry-after", "x-psm-worker")

#: Seconds a freshly spawned worker gets to report its ready handshake.
READY_TIMEOUT = 30.0

#: Supervisor liveness poll interval (seconds).
POLL_INTERVAL = 0.2

#: Seconds the supervisor grants one /v1/warm replay round-trip.
PREWARM_TIMEOUT = 30.0

#: Response header marking a router-answered negative-cache hit.
NEGCACHE_HEADER = "X-Psm-Negcache"


@dataclass
class ClusterConfig:
    """Knobs of the cluster (CLI flags map 1:1 onto these).

    ``min_workers``/``max_workers`` default to 0, meaning "same as
    ``workers``" — the autoscaler only engages when the resolved range
    is non-degenerate (``max_workers > min_workers``)."""

    workers: int = 2
    replicas_hot: int = 2
    hot_rps: float = 50.0
    hot_depth: int = 16
    drain_timeout: float = 10.0
    vnodes: int = 64
    forward_timeout: float = 35.0
    max_restarts: int = 5
    restart_backoff: float = 0.5
    min_workers: int = 0
    max_workers: int = 0
    scale_interval: float = 0.5
    scale_up_depth: float = 2.0
    scale_up_ticks: int = 3
    p95_budget_ms: float = 0.0
    idle_drain_s: float = 10.0
    scale_cooldown: float = 5.0
    prewarm: bool = True
    negcache_ttl: float = 2.0
    negcache_cap: int = 1024

    def resolved_bounds(self) -> Tuple[int, int]:
        """``(min, max)`` pool bounds after defaulting to ``workers``."""
        low = max(self.min_workers or self.workers, 1)
        high = max(self.max_workers or self.workers, low)
        return low, high


class WorkerClient:
    """Persistent keep-alive connection pool to one worker.

    Forwarding opens (and keeps) at most a handful of TCP connections
    per worker; ``inflight`` counts requests currently outstanding —
    the load signal behind least-loaded pick-2 replica routing and the
    router's queue-depth proxy for the hot-model trigger.
    """

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.inflight = 0
        self._free: List[Tuple[asyncio.StreamReader, asyncio.StreamWriter]] = []

    async def request(
        self,
        method: str,
        target: str,
        body: bytes = b"",
        content_type: str = "application/json",
    ) -> Tuple[int, Dict[str, str], bytes]:
        """One forwarded request; raises ``OSError`` family on loss."""
        self.inflight += 1
        try:
            connection = (
                self._free.pop()
                if self._free
                else await asyncio.open_connection(self.host, self.port)
            )
            reader, writer = connection
            try:
                head = [
                    f"{method} {target} HTTP/1.1",
                    f"Host: {self.host}:{self.port}",
                    f"Content-Type: {content_type}",
                    f"Content-Length: {len(body)}",
                ]
                writer.write(
                    ("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
                )
                writer.write(body)
                await writer.drain()
                status, headers, payload = await read_response(reader)
            except BaseException:
                writer.close()
                raise
            if headers.get("connection", "").lower() == "close":
                writer.close()
            else:
                self._free.append((reader, writer))
            return status, headers, payload
        finally:
            self.inflight -= 1

    async def close(self) -> None:
        """Drop every pooled connection."""
        while self._free:
            _, writer = self._free.pop()
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass


@dataclass
class WorkerHandle:
    """One cluster member: identity, transport, lifecycle, supervision."""

    worker_id: str
    host: str
    port: int = 0
    state: str = STARTING
    restarts: int = 0
    process: Optional[object] = None  # multiprocessing.Process
    server: Optional[PsmServer] = None  # inproc backend
    client: Optional[WorkerClient] = None

    @property
    def ready(self) -> bool:
        return self.state == READY

    def alive(self) -> bool:
        """Backend-appropriate liveness check."""
        if self.process is not None:
            return bool(self.process.is_alive())
        return self.server is not None and self.state in (STARTING, READY)

    def describe(self) -> dict:
        """Health-endpoint row for this worker."""
        return {
            "id": self.worker_id,
            "port": self.port,
            "state": self.state,
            "restarts": self.restarts,
            "inflight": self.client.inflight if self.client else 0,
            "pid": getattr(self.process, "pid", None),
        }


class HotTracker:
    """Per-model request-rate EWMA + in-flight counts -> replica count.

    A model turns *hot* — and fans out to ``replicas_hot`` ring
    successors — when its request rate crosses ``hot_rps`` or the
    router sees ``hot_depth`` of its requests in flight at once (the
    router-side proxy for worker queue depth).  Cooling is hysteretic:
    the model stays hot until its rate falls under half the threshold,
    so placement does not flap around the threshold and caches on the
    replica set stay warm.
    """

    def __init__(
        self, hot_rps: float, hot_depth: int, replicas_hot: int
    ) -> None:
        self.hot_rps = float(hot_rps)
        self.hot_depth = int(hot_depth)
        self.replicas_hot = max(int(replicas_hot), 1)
        self.inflight: Dict[str, int] = {}
        self._bucket: Dict[str, int] = {}
        self._count: Dict[str, int] = {}
        self._rate: Dict[str, float] = {}
        self._hot: Set[str] = set()

    def note(self, model: str, now: float) -> None:
        """Record one arrival at time ``now`` (seconds, any epoch)."""
        bucket = int(now)
        last = self._bucket.get(model)
        if last is None or bucket != last:
            if last is not None:
                gap = bucket - last
                # The finished bucket's count is the freshest rate
                # sample; empty gap buckets decay it geometrically.
                rate = 0.5 * self._rate.get(model, 0.0) + 0.5 * self._count[
                    model
                ]
                self._rate[model] = rate * (0.5 ** max(gap - 1, 0))
            self._bucket[model] = bucket
            self._count[model] = 0
        self._count[model] += 1

    def rate(self, model: str) -> float:
        """Smoothed requests/second estimate for ``model``."""
        return self._rate.get(model, 0.0)

    def replicas(self, model: str) -> int:
        """How many ring workers ``model`` should currently fan out to."""
        rate = self._rate.get(model, 0.0)
        depth = self.inflight.get(model, 0)
        if model in self._hot:
            if rate < 0.5 * self.hot_rps and depth < self.hot_depth:
                self._hot.discard(model)
        elif rate >= self.hot_rps or depth >= self.hot_depth:
            self._hot.add(model)
        return self.replicas_hot if model in self._hot else 1

    def decay(self, now: float) -> None:
        """Fold elapsed empty buckets into every rate (idle cooling).

        :meth:`note` only advances a model's EWMA when a request for it
        arrives, so after traffic stops the last folded rate — and the
        hot set — would persist forever.  The autoscaler calls this
        every control tick: silence decays each rate geometrically per
        empty one-second bucket and re-evaluates the hot-set
        hysteresis, so fan-out (and the scale-down idle window) see the
        cluster actually going quiet.  Fully cooled series are dropped
        to keep the tracker's dictionaries bounded by the live set.
        """
        bucket = int(now)
        for model in list(self._bucket):
            last = self._bucket[model]
            if bucket > last:
                rate = (
                    0.5 * self._rate.get(model, 0.0)
                    + 0.5 * self._count[model]
                )
                self._rate[model] = rate * (0.5 ** max(bucket - last - 1, 0))
                self._bucket[model] = bucket
                self._count[model] = 0
        for model in list(self._hot):
            self.replicas(model)  # applies the cooling hysteresis
        for model in list(self._rate):
            if (
                self._rate[model] < 1e-6
                and not self._count.get(model)
                and model not in self._hot
                and not self.inflight.get(model)
            ):
                self._rate.pop(model, None)
                self._count.pop(model, None)
                self._bucket.pop(model, None)

    def hot_models(self) -> List[str]:
        """Models currently in the hot (fanned-out) set."""
        return sorted(self._hot)


@dataclass
class _NegativeEntry:
    """One cached negative outcome: frozen response + file signature."""

    status: int
    body: bytes
    content_type: str
    signature: Optional[Tuple[int, int]]
    expires_at: float


class NegativeCache:
    """Router-side TTL cache of 404/quarantined estimate outcomes.

    Repeated requests for an unknown or quarantined model are pure
    waste past the router: every one crosses the fan-out, misses the
    worker registry and walks back with the same error.  This cache
    answers them at the router.  Invalidation rules (DESIGN.md §3.9):

    * every entry remembers the bundle file's ``(mtime_ns, size)``
      signature *at store time* (``None`` when no file existed); a
      lookup whose current signature differs — the model was published,
      replaced or deleted — drops the entry and forwards, so a fresh
      bundle is never shadowed by its own cached 404;
    * the TTL bounds staleness for everything the signature cannot see
      (a worker-local quarantine lifted by hot reload, say);
    * the cache is LRU-bounded by ``cap`` so hostile model-name churn
      cannot grow router memory.

    ``ttl <= 0`` disables the cache entirely (every lookup misses,
    nothing is stored).
    """

    def __init__(
        self,
        models_dir,
        ttl: float,
        cap: int = 1024,
        metrics: Optional[MetricsRegistry] = None,
        clock=time.monotonic,
    ) -> None:
        self.models_dir = Path(models_dir)
        self.ttl = float(ttl)
        self.cap = max(int(cap), 1)
        self._clock = clock
        self._entries: "OrderedDict[str, _NegativeEntry]" = OrderedDict()
        metrics = metrics or MetricsRegistry()
        self._hits = metrics.counter(
            "psmgen_negcache_hits_total",
            "Bad-model estimates answered at the router cache.",
        )
        self._misses = metrics.counter(
            "psmgen_negcache_misses_total",
            "Estimate lookups not answerable from the negative cache.",
        )
        self._evictions = metrics.counter(
            "psmgen_negcache_evictions_total",
            "Negative entries evicted by TTL expiry or the LRU cap.",
        )
        self._invalidations = metrics.counter(
            "psmgen_negcache_invalidations_total",
            "Negative entries dropped because the bundle file changed.",
        )
        self._size = metrics.gauge(
            "psmgen_negcache_size",
            "Negative entries currently cached at the router.",
        )

    def _signature(self, name: str) -> Optional[Tuple[int, int]]:
        """Current bundle-file signature for ``name`` (None = no file)."""
        if not name or name != Path(name).name or name.startswith("."):
            return None  # not publishable as a bundle path
        try:
            stat = (self.models_dir / f"{name}.json").stat()
        except (OSError, ValueError):
            return None
        return (stat.st_mtime_ns, stat.st_size)

    def lookup(self, name: str) -> Optional[Tuple[int, bytes, str]]:
        """The cached ``(status, body, content_type)`` or None."""
        if self.ttl <= 0.0:
            return None
        entry = self._entries.get(name)
        if entry is None:
            self._misses.inc()
            return None
        if self._clock() >= entry.expires_at:
            del self._entries[name]
            self._evictions.inc()
            self._misses.inc()
            self._size.set(len(self._entries))
            return None
        if self._signature(name) != entry.signature:
            # Publish event: the bundle appeared or changed on disk
            # since the negative outcome was recorded.  Forward.
            del self._entries[name]
            self._invalidations.inc()
            self._misses.inc()
            self._size.set(len(self._entries))
            return None
        self._entries.move_to_end(name)
        self._hits.inc()
        return entry.status, entry.body, entry.content_type

    def store(
        self, name: str, status: int, body: bytes, content_type: str
    ) -> None:
        """Record one negative outcome for ``name``."""
        if self.ttl <= 0.0:
            return
        self._entries[name] = _NegativeEntry(
            status=status,
            body=body,
            content_type=content_type,
            signature=self._signature(name),
            expires_at=self._clock() + self.ttl,
        )
        self._entries.move_to_end(name)
        while len(self._entries) > self.cap:
            self._entries.popitem(last=False)
            self._evictions.inc()
        self._size.set(len(self._entries))

    def invalidate_all(self) -> None:
        """Drop every entry (operational hook; counters untouched)."""
        self._entries.clear()
        self._size.set(0)

    def __len__(self) -> int:
        return len(self._entries)


def aggregate_expositions(sections: Dict[str, str]) -> str:
    """Merge per-worker Prometheus expositions into one document.

    Every sample line gains a ``worker="<id>"`` label (prepended, so
    existing labels survive untouched); HELP/TYPE metadata is emitted
    once per metric and all samples of a metric stay contiguous, which
    keeps the merged document a valid exposition.
    """
    meta: Dict[str, List[str]] = {}
    samples: Dict[str, List[str]] = {}
    order: List[str] = []
    for worker in sorted(sections):
        current = ""
        for line in sections[worker].splitlines():
            line = line.strip()
            if not line:
                continue
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                name = line.split(" ", 3)[2]
                if name not in meta:
                    meta[name] = []
                    order.append(name)
                if len(meta[name]) < 2:  # one HELP + one TYPE
                    meta[name].append(line)
                current = name
                continue
            if line.startswith("#"):
                continue
            head, _, value = line.rpartition(" ")
            if "{" in head:
                name, _, rest = head.partition("{")
                labelled = f'{name}{{worker="{worker}",{rest}'
            else:
                labelled = f'{head}{{worker="{worker}"}}'
            bucket = current or head.partition("{")[0]
            samples.setdefault(bucket, []).append(f"{labelled} {value}")
    lines: List[str] = []
    for name in order:
        lines.extend(meta[name])
        lines.extend(samples.get(name, []))
    for name in samples:
        if name not in meta:
            lines.extend(samples[name])
    return "\n".join(lines) + "\n" if lines else ""


def _worker_main(models_dir, host, conn, worker_id, config: dict) -> None:
    """Entry point of one worker process: serve until signalled.

    Runs the unmodified single-process server (its own registry,
    caches and micro-batcher) on an ephemeral port, reports the port
    through the ready pipe, then blocks until SIGTERM/SIGINT triggers
    the graceful drain.
    """
    drain_timeout = float(config.pop("drain_timeout", 10.0))

    async def _run() -> None:
        server = create_server(
            models_dir, host=host, port=0, worker_id=worker_id, **config
        )
        await server.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            loop.add_signal_handler(signum, stop.set)
        conn.send(("ready", server.port))
        conn.close()
        await stop.wait()
        await server.shutdown(drain_deadline=drain_timeout)

    try:
        asyncio.run(_run())
    except Exception as exc:  # startup failure -> tell the supervisor
        try:
            conn.send(("error", repr(exc)))
            conn.close()
        except Exception:
            pass
        raise


class ClusterSupervisor:
    """Spawns, watches, respawns and drains the worker fleet."""

    def __init__(
        self,
        models_dir,
        config: ClusterConfig,
        worker_config: Optional[dict] = None,
        host: str = "127.0.0.1",
        backend: str = "auto",
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.models_dir = models_dir
        self.config = config
        self.worker_config = dict(worker_config or {})
        self.host = host
        if backend == "auto":
            backend = "inproc" if under_test_worker() else "process"
        if backend not in ("process", "inproc"):
            raise ValueError(f"unknown cluster backend {backend!r}")
        self.backend = backend
        self.ring = HashRing(vnodes=config.vnodes)
        self.workers: Dict[str, WorkerHandle] = {}
        self._monitor_task: Optional[asyncio.Task] = None
        self._respawns: Set[asyncio.Task] = set()
        self._closing = False
        self._next_index = config.workers
        metrics = metrics or MetricsRegistry()
        self.metrics = metrics
        self._up = metrics.gauge(
            "psmgen_worker_up",
            "1 while the worker is ready to serve, else 0.",
            labelnames=("worker",),
        )
        self._restarts = metrics.counter(
            "psmgen_worker_restarts_total",
            "Times the supervisor respawned a dead worker.",
            labelnames=("worker",),
        )
        self._ring_share = metrics.gauge(
            "psmgen_ring_share",
            "Fraction of the consistent-hash key space owned.",
            labelnames=("worker",),
        )
        self._prewarm_models = metrics.counter(
            "psmgen_prewarm_models_total",
            "Models replayed onto joining workers before ring publish.",
        )
        self._prewarm_wall = metrics.counter(
            "psmgen_prewarm_seconds_total",
            "Wall-clock seconds spent on pre-warm replays.",
        )
        self._prewarm_failures = metrics.counter(
            "psmgen_prewarm_failures_total",
            "Pre-warm rounds that failed (worker joined cold instead).",
        )

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the initial fleet and start the liveness monitor."""
        await asyncio.gather(
            *(
                self._start_worker(f"w{index}")
                for index in range(self.config.workers)
            )
        )
        if not any(handle.ready for handle in self.workers.values()):
            raise RuntimeError("no cluster worker became ready")
        self._monitor_task = asyncio.get_running_loop().create_task(
            self._monitor(), name="psm-cluster-monitor"
        )

    async def _start_worker(self, worker_id: str) -> None:
        handle = self.workers.get(worker_id)
        if handle is None:
            handle = WorkerHandle(worker_id=worker_id, host=self.host)
            self.workers[worker_id] = handle
        handle.state = STARTING
        try:
            if self.backend == "process":
                await self._start_process_worker(handle)
            else:
                await self._start_inproc_worker(handle)
        except Exception:
            handle.state = DEAD
            self._up.set(0, worker=worker_id)
            if self.backend == "process" and not self._respawns:
                # Process spawning may be unavailable wholesale
                # (restricted sandbox): fall back to in-process
                # workers instead of dying.
                self.backend = "inproc"
                await self._start_inproc_worker(handle)
            else:
                return
        handle.client = WorkerClient(handle.host, handle.port)
        # Pre-warm happens strictly before the ring publish: the worker
        # is reachable (port bound, client up) but owns no arcs yet, so
        # the replay races no live traffic and its first routed request
        # finds hot caches.
        await self._prewarm(handle)
        handle.state = READY
        self.ring.add(worker_id)
        self._up.set(1, worker=worker_id)
        self._publish_ring()

    async def _start_process_worker(self, handle: WorkerHandle) -> None:
        parent, child = worker_pipe()
        handle.process = spawn_process(
            _worker_main,
            (
                str(self.models_dir),
                self.host,
                child,
                handle.worker_id,
                {
                    **self.worker_config,
                    "drain_timeout": self.config.drain_timeout,
                },
            ),
            name=f"psm-worker-{handle.worker_id}",
        )
        child.close()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + READY_TIMEOUT
        try:
            while True:
                if parent.poll(0):
                    kind, value = parent.recv()
                    if kind != "ready":
                        raise RuntimeError(
                            f"worker {handle.worker_id} failed: {value}"
                        )
                    handle.port = int(value)
                    return
                if not handle.process.is_alive():
                    raise RuntimeError(
                        f"worker {handle.worker_id} died during startup"
                    )
                if loop.time() > deadline:
                    handle.process.terminate()
                    raise TimeoutError(
                        f"worker {handle.worker_id} ready handshake "
                        "timed out"
                    )
                await asyncio.sleep(0.02)
        finally:
            parent.close()

    async def _start_inproc_worker(self, handle: WorkerHandle) -> None:
        server = create_server(
            self.models_dir,
            host=self.host,
            port=0,
            worker_id=handle.worker_id,
            **self.worker_config,
        )
        await server.start()
        handle.server = server
        handle.process = None
        handle.port = server.port

    def _publish_ring(self) -> None:
        shares = self.ring.ownership()
        for worker_id in self.workers:
            self._ring_share.set(
                shares.get(worker_id, 0.0), worker=worker_id
            )

    # ------------------------------------------------------------------
    def owned_models(self, worker_id: str) -> List[str]:
        """Model arcs ``worker_id`` will own once published to the ring.

        Built from a *candidate* ring — the live ring's membership plus
        every worker currently starting (so an initial fleet bootstrap
        computes final placements, not first-joiner-owns-everything) —
        intersected with the registry's bundle index.  Covers both
        primary arcs and the ``replicas_hot`` replica walk: a worker
        joining under autoscale receives its first traffic through the
        hot-model fan-out, so a primary-only replay would leave exactly
        the arcs that triggered the scale-up cold.
        """
        candidate = self.ring.clone()
        for wid, handle in self.workers.items():
            if wid not in candidate and handle.state in (STARTING, READY):
                candidate.add(wid)
        if worker_id not in candidate:
            candidate.add(worker_id)
        replicas = max(self.config.replicas_hot, 1)
        return [
            name
            for name in sorted(discover_bundles(self.models_dir))
            if worker_id in candidate.preference(name, replicas)
        ]

    async def _prewarm(self, handle: WorkerHandle) -> None:
        """Replay the handle's future arcs through ``POST /v1/warm``.

        Best-effort by design: a failed or timed-out replay counts a
        failure and the worker joins cold — pre-warm trades cold-start
        latency for nothing else, so it must never keep a worker out of
        the ring.
        """
        if not self.config.prewarm or handle.client is None:
            return
        names = self.owned_models(handle.worker_id)
        if not names:
            return
        loop = asyncio.get_running_loop()
        start = loop.time()
        try:
            status, _, payload = await asyncio.wait_for(
                handle.client.request(
                    "POST",
                    "/v1/warm",
                    json.dumps({"models": names}).encode("utf-8"),
                ),
                PREWARM_TIMEOUT,
            )
            if status != 200:
                raise RuntimeError(f"warm replay answered {status}")
            data = json.loads(payload.decode("utf-8"))
            self._prewarm_models.inc(int(data.get("warmed", 0)))
        except (
            OSError,
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            ValueError,
            RuntimeError,
        ):
            self._prewarm_failures.inc()
        finally:
            self._prewarm_wall.inc(loop.time() - start)

    # ------------------------------------------------------------------
    async def add_worker(self) -> str:
        """Scale-up primitive: spawn one more worker (fresh id).

        Reuses the respawn machinery end to end — spawn, ready
        handshake, pre-warm, minimal-movement ring add — and returns
        the new worker id (ready or not; check the handle).
        """
        worker_id = f"w{self._next_index}"
        self._next_index += 1
        await self._start_worker(worker_id)
        return worker_id

    async def retire_worker(
        self, worker_id: Optional[str] = None
    ) -> Optional[str]:
        """Scale-down primitive: drain and stop one worker.

        The worker leaves the ring *first* (minimal movement: only its
        arcs fall to successors, instantly re-routed), then its
        in-flight forwards drain inside the drain-timeout budget, then
        it is stopped gracefully and forgotten — a retirement is not a
        death, so the monitor never respawns it.  Picks the
        youngest ready worker (highest numeric id) when none is named,
        keeping long-lived members' caches pinned.
        """
        if worker_id is None:
            ready = [h.worker_id for h in self.ready_workers()]
            if not ready:
                return None
            worker_id = max(
                ready,
                key=lambda wid: (
                    int(wid[1:]) if wid[1:].isdigit() else -1
                ),
            )
        handle = self.workers.get(worker_id)
        if handle is None or handle.state != READY:
            return None
        handle.state = DRAINING
        self.ring.remove(worker_id)
        self._up.set(0, worker=worker_id)
        self._publish_ring()
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.drain_timeout
        while (
            handle.client is not None
            and handle.client.inflight > 0
            and loop.time() < deadline
        ):
            await asyncio.sleep(0.02)
        if handle.process is not None:
            if handle.process.is_alive():
                handle.process.terminate()  # SIGTERM -> worker drains
            while handle.process.is_alive() and loop.time() < deadline:
                await asyncio.sleep(0.05)
            if handle.process.is_alive():
                handle.process.kill()
            handle.process.join(timeout=1.0)
        elif handle.server is not None:
            server, handle.server = handle.server, None
            await server.shutdown(max(deadline - loop.time(), 0.0))
        handle.state = DEAD
        if handle.client is not None:
            await handle.client.close()
        self.workers.pop(worker_id, None)
        self._ring_share.set(0.0, worker=worker_id)
        return worker_id

    # ------------------------------------------------------------------
    async def _monitor(self) -> None:
        """Detect dead workers; rebalance and respawn."""
        while not self._closing:
            await asyncio.sleep(POLL_INTERVAL)
            for handle in list(self.workers.values()):
                if handle.state == READY and not handle.alive():
                    self._mark_dead(handle)

    def _mark_dead(self, handle: WorkerHandle, respawn: bool = True) -> None:
        """Remove a lost worker from the ring (the rebalance)."""
        handle.state = DEAD
        self.ring.remove(handle.worker_id)
        self._up.set(0, worker=handle.worker_id)
        self._publish_ring()
        if (
            respawn
            and not self._closing
            and handle.restarts < self.config.max_restarts
        ):
            task = asyncio.get_running_loop().create_task(
                self._respawn(handle),
                name=f"psm-respawn-{handle.worker_id}",
            )
            self._respawns.add(task)
            task.add_done_callback(self._respawns.discard)

    def mark_dead(self, worker_id: str) -> None:
        """Router-observed loss (failed forward): rebalance immediately
        instead of waiting for the next liveness poll."""
        handle = self.workers.get(worker_id)
        if handle is not None and handle.state == READY:
            if not handle.alive():
                self._mark_dead(handle)

    async def _respawn(self, handle: WorkerHandle) -> None:
        await asyncio.sleep(self.config.restart_backoff)
        if self._closing:
            return
        handle.restarts += 1
        self._restarts.inc(worker=handle.worker_id)
        if handle.client is not None:
            await handle.client.close()
        await self._start_worker(handle.worker_id)

    # ------------------------------------------------------------------
    async def kill_worker(
        self,
        worker_id: str,
        graceful: bool = False,
        respawn: bool = True,
    ) -> None:
        """Operational / test hook: take one worker down now."""
        handle = self.workers[worker_id]
        if handle.process is not None:
            if graceful:
                handle.process.terminate()  # SIGTERM -> worker drains
            else:
                handle.process.kill()
        elif handle.server is not None:
            server, handle.server = handle.server, None
            if graceful:
                await server.shutdown(self.config.drain_timeout)
            else:
                await server.stop()
        self._mark_dead(handle, respawn=respawn)

    async def shutdown(self, deadline_s: float) -> None:
        """Drain and stop the whole fleet."""
        self._closing = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except (asyncio.CancelledError, Exception):
                pass
        for task in list(self._respawns):
            task.cancel()
        loop = asyncio.get_running_loop()
        stop_by = loop.time() + max(float(deadline_s), 0.0)
        for handle in self.workers.values():
            handle.state = DRAINING
            self._up.set(0, worker=handle.worker_id)
            if handle.process is not None and handle.process.is_alive():
                handle.process.terminate()
        for handle in self.workers.values():
            if handle.server is not None:
                server, handle.server = handle.server, None
                await server.shutdown(max(stop_by - loop.time(), 0.0))
        for handle in self.workers.values():
            process = handle.process
            if process is None:
                continue
            while process.is_alive() and loop.time() < stop_by:
                await asyncio.sleep(0.05)
            if process.is_alive():
                process.kill()
            process.join(timeout=1.0)
            handle.state = DEAD
        for handle in self.workers.values():
            if handle.client is not None:
                await handle.client.close()

    def ready_workers(self) -> List[WorkerHandle]:
        """Workers currently able to take forwards."""
        return [h for h in self.workers.values() if h.ready]


class Autoscaler:
    """Scales the worker pool between min/max from router signals.

    One control loop, ticking every ``scale_interval`` seconds:

    * **Signals** — per-model rate EWMAs and the hot set from the
      router's :class:`HotTracker` (decayed each tick so silence
      actually cools them), total in-flight forwards per ready worker
      (the queue-depth proxy), and the rolling estimate p95.
    * **Scale-up** — when *sustained* for ``scale_up_ticks``
      consecutive ticks: mean in-flight per worker at or above
      ``scale_up_depth``, hot-model fan-out demanding more distinct
      workers than exist (``hot_models * replicas_hot > ready``), or
      the p95 exceeding ``p95_budget_ms`` (when set).
    * **Scale-down** — only after a full ``idle_drain_s`` window of
      low pressure (quarter of the up threshold — the hysteresis gap),
      an empty hot set and a healthy p95; one worker retires per
      window, youngest first, drained before it stops.
    * **Cooldown** — ``scale_cooldown`` seconds after any event block
      the next one, so the pool never flaps around a threshold.

    Every event lands in :attr:`events` (bounded log, surfaced through
    ``/healthz``) and the ``psmgen_autoscale_events_total{direction=}``
    counter; :meth:`decide` is a pure function of the sampled signals
    and the loop clock, which is what the hysteresis tests drive with a
    synthetic clock.
    """

    #: Scale events retained in the in-memory log.
    EVENT_LOG_CAP = 200

    def __init__(
        self,
        supervisor: ClusterSupervisor,
        router: "ClusterRouter",
        config: ClusterConfig,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.supervisor = supervisor
        self.router = router
        self.config = config
        self.min_workers, self.max_workers = config.resolved_bounds()
        self.events: List[dict] = []
        self.last_reason = ""
        self._task: Optional[asyncio.Task] = None
        self._pressure_ticks = 0
        self._idle_since: Optional[float] = None
        self._last_event: Optional[float] = None
        metrics = metrics or supervisor.metrics
        self._events_total = metrics.counter(
            "psmgen_autoscale_events_total",
            "Worker-pool scale events, by direction.",
            labelnames=("direction",),
        )
        self._target = metrics.gauge(
            "psmgen_autoscale_target_workers",
            "Worker count the autoscaler currently aims for.",
        )
        self._pressure_gauge = metrics.gauge(
            "psmgen_autoscale_pressure",
            "Mean in-flight forwards per ready worker (sampled).",
        )
        self._ready_gauge = metrics.gauge(
            "psmgen_workers_ready",
            "Workers currently ready to take forwards.",
        )
        self._target.set(len(supervisor.workers) or config.workers)

    @property
    def enabled(self) -> bool:
        """False for a fixed-size pool (min == max): loop never runs."""
        return self.max_workers > self.min_workers

    def start(self) -> None:
        """Start the control loop (no-op for a fixed-size pool)."""
        if not self.enabled or self._task is not None:
            return
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name="psm-autoscaler"
        )

    async def stop(self) -> None:
        """Cancel the control loop."""
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except (asyncio.CancelledError, Exception):
            pass
        self._task = None

    # ------------------------------------------------------------------
    def signals(self) -> Tuple[int, float, List[str], float]:
        """Sample ``(ready, pressure, hot_models, p95_ms)`` right now."""
        ready_handles = self.supervisor.ready_workers()
        inflight = sum(
            handle.client.inflight
            for handle in ready_handles
            if handle.client is not None
        )
        pressure = inflight / max(len(ready_handles), 1)
        return (
            len(ready_handles),
            pressure,
            self.router.tracker.hot_models(),
            self.router.recent_p95_ms(),
        )

    def decide(
        self,
        ready: int,
        pressure: float,
        hot_count: int,
        p95_ms: float,
        now: float,
    ) -> Optional[str]:
        """One control-law step: ``"up"``, ``"down"`` or hold.

        Mutates only the hysteresis state (consecutive-pressure tick
        count, idle-window start, cooldown stamp); the caller applies
        the action.  Driven directly by the unit tests with synthetic
        clocks, so keep it free of asyncio and wall-clock reads.
        """
        config = self.config
        hot_demand = hot_count * config.replicas_hot > ready
        breach = (
            config.p95_budget_ms > 0.0 and p95_ms > config.p95_budget_ms
        )
        pressured = (
            pressure >= config.scale_up_depth or hot_demand or breach
        )
        idle = (
            pressure <= 0.25 * config.scale_up_depth
            and hot_count == 0
            and not breach
        )
        if pressured:
            self._pressure_ticks += 1
            self._idle_since = None
        else:
            self._pressure_ticks = 0
            if idle:
                if self._idle_since is None:
                    self._idle_since = now
            else:
                self._idle_since = None
        if (
            self._last_event is not None
            and now - self._last_event < config.scale_cooldown
        ):
            return None
        if (
            self._pressure_ticks >= config.scale_up_ticks
            and ready < self.max_workers
        ):
            reasons = []
            if pressure >= config.scale_up_depth:
                reasons.append(f"queue depth {pressure:.2f}/worker")
            if hot_demand:
                reasons.append(
                    f"{hot_count} hot model(s) want "
                    f"{hot_count * config.replicas_hot} workers"
                )
            if breach:
                reasons.append(
                    f"p95 {p95_ms:.1f}ms > {config.p95_budget_ms:.1f}ms"
                )
            self.last_reason = "; ".join(reasons)
            self._last_event = now
            self._pressure_ticks = 0
            return "up"
        if (
            self._idle_since is not None
            and now - self._idle_since >= config.idle_drain_s
            and ready > self.min_workers
        ):
            self.last_reason = (
                f"idle {now - self._idle_since:.1f}s "
                f"(pressure {pressure:.2f}, no hot models)"
            )
            self._last_event = now
            self._idle_since = None
            return "down"
        return None

    def _record(
        self,
        direction: str,
        from_workers: int,
        to_workers: int,
        pressure: float,
        hot_count: int,
        p95_ms: float,
    ) -> None:
        self.events.append(
            {
                "at": time.time(),
                "direction": direction,
                "from_workers": from_workers,
                "to_workers": to_workers,
                "pressure": round(pressure, 3),
                "hot_models": hot_count,
                "p95_ms": round(p95_ms, 3),
                "reason": self.last_reason,
            }
        )
        del self.events[: -self.EVENT_LOG_CAP]
        self._events_total.inc(direction=direction)
        self._target.set(to_workers)

    async def _run(self) -> None:
        loop = asyncio.get_running_loop()
        while not self.supervisor._closing:
            await asyncio.sleep(self.config.scale_interval)
            now = loop.time()
            self.router.tracker.decay(now)
            ready, pressure, hot, p95_ms = self.signals()
            self._pressure_gauge.set(pressure)
            self._ready_gauge.set(ready)
            action = self.decide(ready, pressure, len(hot), p95_ms, now)
            if action == "up":
                self._record(
                    "up", ready, ready + 1, pressure, len(hot), p95_ms
                )
                await self.supervisor.add_worker()
            elif action == "down":
                retired = await self.supervisor.retire_worker()
                if retired is not None:
                    self._record(
                        "down", ready, ready - 1, pressure, len(hot),
                        p95_ms,
                    )

    def describe(self) -> dict:
        """The ``/healthz`` block for this autoscaler."""
        return {
            "enabled": self.enabled,
            "min_workers": self.min_workers,
            "max_workers": self.max_workers,
            "ready": len(self.supervisor.ready_workers()),
            "events": self.events[-50:],
        }


class ClusterRouter:
    """The front door: accepts clients, routes to workers, aggregates.

    One asyncio process, no simulation work of its own — it parses the
    request head, resolves the model key on the hash ring and relays
    bytes.  Estimate bodies are only JSON-decoded when the key cannot
    be read from the query string (the binary ``.npt`` route keeps the
    hot path parse-free).
    """

    def __init__(
        self,
        supervisor: ClusterSupervisor,
        config: ClusterConfig,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics: Optional[MetricsRegistry] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.supervisor = supervisor
        self.config = config
        self.host = host
        self.port = port
        self.metrics = metrics or supervisor.metrics
        self.rng = rng or random.Random()
        self.tracker = HotTracker(
            config.hot_rps, config.hot_depth, config.replicas_hot
        )
        self.negcache = NegativeCache(
            supervisor.models_dir,
            config.negcache_ttl,
            config.negcache_cap,
            metrics=metrics or supervisor.metrics,
        )
        #: Installed by :class:`ServeCluster` when elasticity is on.
        self.autoscaler: Optional[Autoscaler] = None
        self._recent: Deque[Tuple[float, float]] = deque(maxlen=512)
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._inflight = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._writers: Set[asyncio.StreamWriter] = set()
        self._requests = self.metrics.counter(
            "psmgen_router_requests_total",
            "Requests handled by the cluster router.",
            labelnames=("endpoint", "status"),
        )
        self._latency = self.metrics.histogram(
            "psmgen_router_request_seconds",
            "Router end-to-end latency (forward + relay).",
            labelnames=("endpoint",),
        )
        self._forwards = self.metrics.counter(
            "psmgen_router_forwards_total",
            "Requests forwarded, by worker.",
            labelnames=("worker",),
        )
        self._retries = self.metrics.counter(
            "psmgen_router_retries_total",
            "Forwards replayed on another worker after transport loss.",
        )
        self._no_worker = self.metrics.counter(
            "psmgen_router_no_worker_total",
            "Requests failed because no ready worker remained.",
        )
        self._inflight_gauge = self.metrics.gauge(
            "psmgen_router_inflight",
            "Requests currently forwarded, by worker.",
            labelnames=("worker",),
        )
        self._hot_gauge = self.metrics.gauge(
            "psmgen_hot_models",
            "Models currently fanned out to the replica set.",
        )
        self._scrape_errors = self.metrics.counter(
            "psmgen_router_scrape_errors_total",
            "Worker /metrics scrapes that failed during aggregation.",
        )
        self._estimates = self.metrics.counter(
            "psmgen_router_estimates_total",
            "Estimate requests routed (negative-cache hits included).",
        )

    def recent_p95_ms(self, window_s: float = 5.0) -> float:
        """p95 of estimate latencies inside the trailing window, in ms.

        The autoscaler's budget-breach signal.  Anchored at the newest
        sample rather than the wall clock: after traffic stops there is
        nothing to age the window against, but there is also no
        pressure, so the idle-drain path wins regardless.
        """
        if not self._recent:
            return 0.0
        cutoff = self._recent[-1][0] - window_s
        latencies = sorted(
            elapsed for stamp, elapsed in self._recent if stamp >= cutoff
        )
        if not latencies:
            return 0.0
        index = min(
            int(0.95 * (len(latencies) - 1) + 0.5), len(latencies) - 1
        )
        return latencies[index] * 1000.0

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind the router listener (resolving an ephemeral port)."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Accept and route connections until cancelled."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def shutdown(self, drain_deadline: float = 10.0) -> bool:
        """Stop accepting, drain router in-flight, then the fleet."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + max(float(drain_deadline), 0.0)
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        drained = True
        if not self._idle.is_set():
            try:
                await asyncio.wait_for(
                    self._idle.wait(), max(deadline - loop.time(), 0.001)
                )
            except asyncio.TimeoutError:
                drained = False
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass
        await self.supervisor.shutdown(max(deadline - loop.time(), 0.0))
        return drained

    # ------------------------------------------------------------------
    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        loop = asyncio.get_running_loop()
        self._writers.add(writer)
        try:
            while True:
                start = loop.time()
                try:
                    method, path, query, content_type, body, keep = (
                        await read_request(reader)
                    )
                except BadRequestError as exc:
                    await self._respond(
                        writer, 400, {"error": str(exc)}, "other", start
                    )
                    return
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    asyncio.LimitOverrunError,
                ):
                    return
                endpoint = (
                    "estimate" if path == "/v1/estimate" else
                    path.strip("/").replace("v1/", "") or "other"
                )
                self._inflight += 1
                self._idle.clear()
                try:
                    status, payload, headers, raw = await self._dispatch(
                        method, path, query, content_type, body
                    )
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle.set()
                keep = keep and not self._draining
                await self._respond(
                    writer, status, payload, endpoint, start, headers,
                    close=not keep, raw=raw,
                )
                if not keep:
                    return
        except Exception as exc:
            try:
                await self._respond(
                    writer,
                    500,
                    {"error": f"router error: {exc!r}"},
                    "other",
                    loop.time(),
                )
            except Exception:
                pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload,
        endpoint: str,
        start: float,
        headers: Tuple[Tuple[str, str], ...] = (),
        close: bool = True,
        raw: Optional[Tuple[bytes, str]] = None,
    ) -> None:
        if raw is not None:
            body, content_type = raw
        else:
            body, content_type = encode_body(payload)
        await write_response(
            writer, status, body, content_type, headers, close=close
        )
        now = asyncio.get_running_loop().time()
        self._requests.inc(endpoint=endpoint, status=str(status))
        self._latency.observe(now - start, endpoint=endpoint)
        if endpoint == "estimate":
            self._recent.append((now, now - start))

    # ------------------------------------------------------------------
    async def _dispatch(self, method, path, query, content_type, body):
        """Route one request; ``(status, payload, headers, raw)``."""
        if method == "GET" and path == "/healthz":
            workers = {
                worker_id: handle.describe()
                for worker_id, handle in self.supervisor.workers.items()
            }
            ready = sum(
                1 for handle in self.supervisor.workers.values()
                if handle.ready
            )
            return (
                200 if ready else 503,
                {
                    "status": (
                        "draining" if self._draining
                        else "ok" if ready else "no-workers"
                    ),
                    "role": "router",
                    "workers": workers,
                    "ready": ready,
                    "ring": self.supervisor.ring.ownership(),
                    "hot_models": self.tracker.hot_models(),
                    "autoscaler": (
                        self.autoscaler.describe()
                        if self.autoscaler is not None
                        else None
                    ),
                    "negcache": {
                        "size": len(self.negcache),
                        "ttl_s": self.config.negcache_ttl,
                    },
                },
                (),
                None,
            )
        if method == "GET" and path == "/metrics":
            return 200, await self._render_metrics(), (), None
        if method == "GET" and path == "/v1/models":
            return await self._merge_models()
        if path == "/v1/estimate":
            if method != "POST":
                return 405, {"error": "use POST"}, (), None
            return await self._forward_estimate(query, content_type, body)
        return 404, {"error": f"no such endpoint {path!r}"}, (), None

    def _model_key(self, query: str, content_type: str, body: bytes) -> str:
        """The routing key of one estimate request.

        The binary route carries the model in the query string, so the
        router never touches the body; JSON bodies are decoded only to
        read the ``model`` field.
        """
        if query:
            for param in query.split("&"):
                name, _, value = param.partition("=")
                if name == "model" and value:
                    return value
        if (
            content_type == NPT_CONTENT_TYPE
            or body[: len(BINARY_MAGIC)] == BINARY_MAGIC
        ):
            raise BadRequestError(
                "binary estimate needs a ?model=<name> query parameter"
            )
        try:
            data = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise BadRequestError(f"invalid JSON body: {exc}")
        model = data.get("model") if isinstance(data, dict) else None
        if not isinstance(model, str) or not model:
            raise BadRequestError("body must carry a 'model' name")
        return model

    def _pick_worker(
        self, model: str, exclude: Set[str]
    ) -> Optional[WorkerHandle]:
        """Ring placement + replica fan-out + least-loaded pick-2."""
        ring = self.supervisor.ring
        if not len(ring):
            return None
        preference = ring.preference(model, len(ring))
        candidates = [
            self.supervisor.workers[worker_id]
            for worker_id in preference
            if worker_id not in exclude
            and self.supervisor.workers[worker_id].ready
        ]
        if not candidates:
            return None
        replicas = self.tracker.replicas(model)
        self._hot_gauge.set(len(self.tracker.hot_models()))
        replica_set = candidates[: max(replicas, 1)]
        if len(replica_set) == 1:
            return replica_set[0]
        # Pick two distinct replicas at random, route to the less
        # loaded one — the classic power-of-two-choices balancer.
        first, second = self.rng.sample(range(len(replica_set)), 2)
        a, b = replica_set[first], replica_set[second]
        return a if a.client.inflight <= b.client.inflight else b

    async def _forward_estimate(self, query, content_type, body):
        loop = asyncio.get_running_loop()
        try:
            model = self._model_key(query, content_type, body)
        except BadRequestError as exc:
            return 400, {"error": str(exc)}, (), None
        self._estimates.inc()
        # Negative cache first, *before* the hot tracker sees the
        # request: repeated 404/quarantine traffic must neither reach a
        # worker nor heat the autoscaler's demand signal.
        cached = self.negcache.lookup(model)
        if cached is not None:
            status, payload, cached_type = cached
            return (
                status,
                None,
                ((NEGCACHE_HEADER, "hit"),),
                (payload, cached_type),
            )
        self.tracker.note(model, loop.time())
        self.tracker.inflight[model] = (
            self.tracker.inflight.get(model, 0) + 1
        )
        target = "/v1/estimate" + (f"?{query}" if query else "")
        tried: Set[str] = set()
        try:
            while True:
                handle = self._pick_worker(model, tried)
                if handle is None:
                    self._no_worker.inc()
                    return (
                        503,
                        {"error": "no ready worker for this request"},
                        (),
                        None,
                    )
                tried.add(handle.worker_id)
                client = handle.client
                self._inflight_gauge.set(
                    client.inflight + 1, worker=handle.worker_id
                )
                try:
                    status, headers, payload = await asyncio.wait_for(
                        client.request(
                            "POST", target, body, content_type
                        ),
                        self.config.forward_timeout,
                    )
                except (
                    OSError,
                    asyncio.IncompleteReadError,
                    asyncio.TimeoutError,
                ):
                    # Worker lost mid-flight (or wedged): estimates are
                    # pure, so replay on the next ring worker.  Tell
                    # the supervisor so the ring rebalances now rather
                    # than at the next liveness poll.
                    self._retries.inc()
                    self.supervisor.mark_dead(handle.worker_id)
                    continue
                finally:
                    self._inflight_gauge.set(
                        client.inflight, worker=handle.worker_id
                    )
                self._forwards.inc(worker=handle.worker_id)
                if status == 404 or (
                    status == 503 and b"quarantin" in payload
                ):
                    # Worker-sourced negative verdicts only — the
                    # router's own "no ready worker" 503 is transient
                    # capacity, never a fact about the model.
                    self.negcache.store(
                        model,
                        status,
                        payload,
                        headers.get("content-type", "application/json"),
                    )
                relay = tuple(
                    (name.title(), value)
                    for name, value in headers.items()
                    if name in RELAY_HEADERS
                )
                raw = (
                    payload,
                    headers.get("content-type", "application/json"),
                )
                return status, None, relay, raw
        finally:
            remaining = self.tracker.inflight.get(model, 1) - 1
            if remaining:
                self.tracker.inflight[model] = remaining
            else:
                self.tracker.inflight.pop(model, None)

    # ------------------------------------------------------------------
    async def _scrape_worker(self, handle: WorkerHandle, path: str):
        try:
            status, _, payload = await asyncio.wait_for(
                handle.client.request("GET", path), 5.0
            )
        except (OSError, asyncio.IncompleteReadError, asyncio.TimeoutError):
            self._scrape_errors.inc()
            return None
        if status != 200:
            self._scrape_errors.inc()
            return None
        return payload

    async def _render_metrics(self) -> str:
        """Router series + every worker's exposition, worker-labelled."""
        ready = self.supervisor.ready_workers()
        scraped = await asyncio.gather(
            *(self._scrape_worker(handle, "/metrics") for handle in ready)
        )
        sections = {
            handle.worker_id: payload.decode("utf-8")
            for handle, payload in zip(ready, scraped)
            if payload is not None
        }
        return self.metrics.render() + aggregate_expositions(sections)

    async def _merge_models(self):
        """Union of every worker's ``/v1/models`` view."""
        ready = self.supervisor.ready_workers()
        scraped = await asyncio.gather(
            *(
                self._scrape_worker(handle, "/v1/models")
                for handle in ready
            )
        )
        rows: Dict[str, dict] = {}
        compile_totals = {"compile_hits": 0, "compile_misses": 0,
                          "compile_wall_s": 0.0}
        for handle, payload in zip(ready, scraped):
            if payload is None:
                continue
            data = json.loads(payload.decode("utf-8"))
            for key in compile_totals:
                compile_totals[key] += data.get(key, 0)
            for row in data.get("models", ()):
                name = row.get("name")
                current = rows.get(name)
                loaded = row.get("version") is not None
                if current is None or (
                    loaded and current.get("version") is None
                ):
                    if loaded:
                        row = {**row, "worker": handle.worker_id}
                    rows[name] = row
        compile_totals["compile_wall_s"] = round(
            compile_totals["compile_wall_s"], 6
        )
        return (
            200,
            {
                "models": [rows[name] for name in sorted(rows)],
                "workers": len(ready),
                **compile_totals,
            },
            (),
            None,
        )


class ServeCluster:
    """Supervisor + router, wired: the ``--workers N`` serving object."""

    def __init__(
        self,
        models_dir,
        config: Optional[ClusterConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        worker_config: Optional[dict] = None,
        backend: str = "auto",
        metrics: Optional[MetricsRegistry] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.config = config or ClusterConfig()
        # The initial pool size must live inside the elastic bounds,
        # or the autoscaler's first decision would be a correction.
        low, high = self.config.resolved_bounds()
        self.config.workers = min(max(self.config.workers, low), high)
        self.metrics = metrics or MetricsRegistry()
        self.supervisor = ClusterSupervisor(
            models_dir,
            self.config,
            worker_config=worker_config,
            host=host,
            backend=backend,
            metrics=self.metrics,
        )
        self.router = ClusterRouter(
            self.supervisor,
            self.config,
            host=host,
            port=port,
            metrics=self.metrics,
            rng=rng,
        )
        self.autoscaler = Autoscaler(
            self.supervisor, self.router, self.config, self.metrics
        )
        self.router.autoscaler = self.autoscaler

    @property
    def host(self) -> str:
        return self.router.host

    @property
    def port(self) -> int:
        return self.router.port

    async def start(self) -> None:
        """Spawn the worker fleet, then open the router front door."""
        await self.supervisor.start()
        await self.router.start()
        self.autoscaler.start()

    async def serve_forever(self) -> None:
        """Serve until cancelled or signalled."""
        await self.router.serve_forever()

    async def shutdown(self, drain_deadline: Optional[float] = None) -> bool:
        """Graceful drain of router and fleet; True if fully clean."""
        if drain_deadline is None:
            drain_deadline = self.config.drain_timeout
        await self.autoscaler.stop()
        return await self.router.shutdown(drain_deadline)


def create_cluster(
    models_dir,
    workers: int,
    host: str = "127.0.0.1",
    port: int = 0,
    replicas_hot: int = 2,
    hot_rps: float = 50.0,
    drain_timeout: float = 10.0,
    worker_config: Optional[dict] = None,
    backend: str = "auto",
    metrics: Optional[MetricsRegistry] = None,
    min_workers: int = 0,
    max_workers: int = 0,
    scale_interval: float = 0.5,
    scale_up_depth: float = 2.0,
    scale_up_ticks: int = 3,
    p95_budget_ms: float = 0.0,
    idle_drain_s: float = 10.0,
    scale_cooldown: float = 5.0,
    prewarm: bool = True,
    negcache_ttl: float = 2.0,
) -> ServeCluster:
    """One-call constructor mirroring :func:`~repro.serve.server.create_server`."""
    config = ClusterConfig(
        workers=max(int(workers), 1),
        replicas_hot=max(int(replicas_hot), 1),
        hot_rps=float(hot_rps),
        drain_timeout=float(drain_timeout),
        min_workers=max(int(min_workers), 0),
        max_workers=max(int(max_workers), 0),
        scale_interval=max(float(scale_interval), 0.05),
        scale_up_depth=max(float(scale_up_depth), 0.1),
        scale_up_ticks=max(int(scale_up_ticks), 1),
        p95_budget_ms=max(float(p95_budget_ms), 0.0),
        idle_drain_s=max(float(idle_drain_s), 0.1),
        scale_cooldown=max(float(scale_cooldown), 0.0),
        prewarm=bool(prewarm),
        negcache_ttl=float(negcache_ttl),
    )
    return ServeCluster(
        models_dir,
        config=config,
        host=host,
        port=port,
        worker_config=worker_config,
        backend=backend,
        metrics=metrics,
    )
