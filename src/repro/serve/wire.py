"""Shared HTTP/1.1 wire helpers for the serving layer.

One hand-rolled, dependency-free HTTP implementation serves three
consumers — the single-process estimation server
(:mod:`repro.serve.server`), the cluster front router
(:mod:`repro.serve.cluster`) and the router's per-worker client pool —
so request parsing and response framing live here, once.  The protocol
surface is deliberately tiny: request line + headers + length-framed
body, HTTP/1.1 keep-alive by default, ``Connection: close`` honoured.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Tuple

#: Largest accepted request body (bytes); estimate windows are bounded.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Reason phrases for the status codes the serving layer emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class BadRequestError(ValueError):
    """The request body or target is structurally invalid (-> 400)."""


#: Parsed request head: method, path, query, content type, body, keep.
ParsedRequest = Tuple[str, str, str, str, bytes, bool]


async def read_request(reader: asyncio.StreamReader) -> ParsedRequest:
    """Parse one HTTP/1.1 request head + body from ``reader``.

    Returns ``(method, path, query, content_type, body, keep)`` — the
    query string and content type drive the binary estimate input;
    ``keep`` is whether the connection may serve another request
    afterwards.  Raises :class:`BadRequestError` on malformed input and
    :class:`asyncio.IncompleteReadError` when the peer closed between
    requests.
    """
    request_line = await reader.readline()
    if not request_line:
        raise asyncio.IncompleteReadError(b"", None)
    try:
        method, target, version = (
            request_line.decode("latin-1").strip().split(" ", 2)
        )
    except ValueError:
        raise BadRequestError("malformed request line")
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise BadRequestError("malformed header line")
        headers[name.strip().lower()] = value.strip()
        if len(headers) > 100:
            raise BadRequestError("too many headers")
    try:
        length = int(headers.get("content-length", "0"))
    except ValueError:
        raise BadRequestError("bad Content-Length")
    if length < 0 or length > MAX_BODY_BYTES:
        raise BadRequestError("request body too large")
    body = await reader.readexactly(length) if length else b""
    path, _, query = target.partition("?")
    content_type = headers.get("content-type", "").partition(";")[0]
    connection = headers.get("connection", "").lower()
    keep = version != "HTTP/1.0" and connection != "close"
    return method, path, query, content_type.strip().lower(), body, keep


def encode_body(payload) -> Tuple[bytes, str]:
    """Encode a response payload; ``(body bytes, content type)``.

    Dicts and lists render as compact JSON — estimate responses carry
    per-instant arrays, and the default ``", "`` padding costs both
    bytes and encoder time on the serving hot path — anything else as
    plain text (the Prometheus exposition).
    """
    if isinstance(payload, (dict, list)):
        body = (
            json.dumps(payload, separators=(",", ":")) + "\n"
        ).encode("utf-8")
        return body, "application/json"
    return (
        str(payload).encode("utf-8"),
        "text/plain; version=0.0.4; charset=utf-8",
    )


async def write_response(
    writer: asyncio.StreamWriter,
    status: int,
    body: bytes,
    content_type: str,
    headers: Tuple[Tuple[str, str], ...] = (),
    close: bool = True,
) -> None:
    """Frame and flush one HTTP/1.1 response."""
    head = [
        f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'close' if close else 'keep-alive'}",
    ]
    head.extend(f"{name}: {value}" for name, value in headers)
    writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
    writer.write(body)
    await writer.drain()


async def read_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, str], bytes]:
    """Parse one HTTP/1.1 response: ``(status, headers, body)``."""
    status_line = await reader.readline()
    if not status_line:
        raise asyncio.IncompleteReadError(b"", None)
    status = int(status_line.decode("latin-1").split(" ", 2)[1])
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0"))
    body = await reader.readexactly(length) if length else b""
    return status, headers, body
