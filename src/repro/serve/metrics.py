"""Prometheus-style metrics for the estimation server (stdlib only).

A deliberately small subset of the Prometheus client: counters, gauges
and cumulative histograms with optional labels, rendered in the v0.0.4
text exposition format by :func:`MetricsRegistry.render`.  Everything is
guarded by one lock so executor threads can record observations while
the asyncio loop renders ``/metrics``.

:func:`parse_prometheus` is the matching reader — used by the test
suite and the CI smoke job to assert that the exposition output is
well-formed without a third-party parser.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Optional, Sequence, Tuple

#: Default latency-style histogram buckets (seconds).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

LabelValues = Tuple[Tuple[str, str], ...]


def _label_key(labelnames: Sequence[str], labels: Dict[str, str]) -> LabelValues:
    """Normalise a label dict against the metric's declared label names."""
    unknown = set(labels) - set(labelnames)
    if unknown:
        raise ValueError(f"unknown label(s) {sorted(unknown)}")
    return tuple((name, str(labels.get(name, ""))) for name in labelnames)


def _escape(value: str) -> str:
    """Escape a label value per the Prometheus text format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_labels(key: LabelValues, extra: Sequence[Tuple[str, str]] = ()) -> str:
    """Render a ``{name="value",...}`` label block ('' when empty)."""
    pairs = [f'{name}="{_escape(value)}"' for name, value in (*key, *extra)]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _format_value(value: float) -> str:
    """Prometheus float rendering (``+Inf`` for infinity)."""
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


class Counter:
    """A monotonically increasing metric, optionally labelled."""

    kind = "counter"

    def __init__(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        self._values: Dict[LabelValues, float] = {}
        self._lock = threading.Lock()

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (default 1) to the labelled series."""
        if amount < 0:
            raise ValueError("counters only go up")
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        """Current value of the labelled series (0 when never touched)."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            return self._values.get(key, 0.0)

    def render(self) -> List[str]:
        """Exposition-format lines for this metric."""
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        for key, value in items:
            lines.append(
                f"{self.name}{_format_labels(key)} {_format_value(value)}"
            )
        return lines


class Gauge(Counter):
    """A metric that can go up and down (queue depths, loaded models)."""

    kind = "gauge"

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        """Add ``amount`` (may be negative) to the labelled series."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        """Subtract ``amount`` from the labelled series."""
        self.inc(-amount, **labels)

    def set(self, value: float, **labels: str) -> None:
        """Set the labelled series to ``value``."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            self._values[key] = float(value)


class Histogram:
    """A cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError("a histogram needs at least one bucket")
        self.labelnames = tuple(labelnames)
        # per label-set: (bucket counts, sum, count)
        self._series: Dict[LabelValues, List] = {}
        self._lock = threading.Lock()

    def observe(self, value: float, **labels: str) -> None:
        """Record one observation."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = [[0] * len(self.buckets), 0.0, 0]
                self._series[key] = series
            counts, _, _ = series
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
            series[1] += float(value)
            series[2] += 1

    def count(self, **labels: str) -> int:
        """Number of observations of the labelled series."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            series = self._series.get(key)
            return int(series[2]) if series else 0

    def bucket_count(self, le: float, **labels: str) -> int:
        """Cumulative observations with value <= ``le``."""
        key = _label_key(self.labelnames, labels)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                return 0
            for index, bound in enumerate(self.buckets):
                if bound == float(le):
                    return int(series[0][index])
        raise ValueError(f"no bucket with bound {le!r}")

    def render(self) -> List[str]:
        """Exposition-format lines for this metric."""
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]
        with self._lock:
            items = sorted(
                (key, ([*counts], total, count))
                for key, (counts, total, count) in self._series.items()
            )
        for key, (counts, total, count) in items:
            for bound, cumulative in zip(self.buckets, counts):
                le = ("le", _format_value(bound))
                lines.append(
                    f"{self.name}_bucket{_format_labels(key, (le,))} "
                    f"{cumulative}"
                )
            lines.append(
                f'{self.name}_bucket{_format_labels(key, (("le", "+Inf"),))} '
                f"{count}"
            )
            lines.append(
                f"{self.name}_sum{_format_labels(key)} {_format_value(total)}"
            )
            lines.append(f"{self.name}_count{_format_labels(key)} {count}")
        return lines


class MetricsRegistry:
    """Holds the server's metric instruments and renders ``/metrics``."""

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}
        self._lock = threading.Lock()

    def counter(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Counter:
        """Get or create the named counter."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str, labelnames: Sequence[str] = ()
    ) -> Gauge:
        """Get or create the named gauge."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        """Get or create the named histogram."""
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Histogram(name, help, buckets, labelnames)
                self._metrics[name] = metric
            elif not isinstance(metric, Histogram):
                raise ValueError(f"{name!r} is already a {type(metric).__name__}")
            return metric

    def _get_or_create(self, cls, name, help, labelnames):
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = cls(name, help, labelnames)
                self._metrics[name] = metric
            elif type(metric) is not cls:
                raise ValueError(f"{name!r} is already a {type(metric).__name__}")
            return metric

    def render(self) -> str:
        """The full ``/metrics`` exposition document."""
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        lines: List[str] = []
        for metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


def parse_prometheus(text: str) -> Dict[str, Dict[str, float]]:
    """Parse an exposition document into ``{metric: {labelblock: value}}``.

    A strict-enough reader for tests and CI: every non-comment line must
    be ``name[{labels}] value``; a malformed line raises ``ValueError``.
    """
    samples: Dict[str, Dict[str, float]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        head, _, value_text = line.rpartition(" ")
        if not head:
            raise ValueError(f"malformed sample line: {line!r}")
        if "{" in head:
            name, _, rest = head.partition("{")
            if not rest.endswith("}"):
                raise ValueError(f"malformed label block: {line!r}")
            labels = "{" + rest
        else:
            name, labels = head, ""
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            value = float(value_text)
        samples.setdefault(name, {})[labels] = value
    return samples


def find_sample(
    samples: Dict[str, Dict[str, float]],
    name: str,
    **labels: str,
) -> Optional[float]:
    """Look up one parsed sample whose label block contains ``labels``."""
    for block, value in samples.get(name, {}).items():
        if all(f'{k}="{v}"' in block for k, v in labels.items()):
            return value
    return None


def sum_samples(
    samples: Dict[str, Dict[str, float]],
    name: str,
    **labels: str,
) -> float:
    """Sum every sample of ``name`` whose label block contains ``labels``.

    The cluster-level counterpart of :func:`find_sample`: aggregated
    expositions carry one series per ``worker=`` label, so asserting a
    fleet-wide total (pre-warm replays, autoscale events, negcache
    hits) means summing across label blocks.
    """
    return sum(
        value
        for block, value in samples.get(name, {}).items()
        if all(f'{k}="{v}"' in block for k, v in labels.items())
    )
