"""Asyncio HTTP/1.1 JSON API serving PSM power estimation.

A hand-rolled, dependency-free HTTP server on ``asyncio.start_server``
(the container bakes in no web framework, and the protocol surface we
need is tiny).  Endpoints:

``POST /v1/estimate``
    ``{"model": name, "trace": {...}}`` (the
    :func:`~repro.traces.io.functional_trace_to_json` form) **or**
    ``{"model": name, "vectors": [{var: value, ...}, ...]}`` using the
    variable declarations embedded in the bundle, **or** a raw binary
    ``.npt`` trace container (``Content-Type:
    application/x-psmgen-npt`` or the ``PSMT`` magic) addressed as
    ``POST /v1/estimate?model=<name>`` — the binary body feeds the
    compiled kernel zero-copy through
    :meth:`~repro.traces.io.BinaryTraceReader.from_bytes`.  Responds
    with the per-instant power plus WSP/desync metrics
    (:meth:`~repro.core.simulation.EstimationResult.to_json`), the
    coalesced batch size, the executing engine and the simulation wall
    time.
``GET /v1/models``
    Registry contents: loaded entries (name, version digest, shape),
    unloaded bundles, quarantined files with their validation error.
``GET /healthz``
    Liveness plus basic registry counts.
``GET /metrics``
    Prometheus text exposition (see DESIGN.md for the catalogue).

Error mapping: bad input -> 400, unknown model -> 404, queue full ->
429 with ``Retry-After``, request timeout -> 504, quarantined model ->
503, anything unexpected -> 500.  Connections are HTTP/1.1 keep-alive
by default — sustained clients (the loadgen's persistent lanes) reuse
them request after request — while ``Connection: close`` clients get
the old one-request discipline.

Shutdown is graceful (DESIGN.md §3.7): :meth:`PsmServer.shutdown`
closes the listener, lets in-flight requests and queued micro-batches
finish inside a drain deadline, then force-closes what is left.  The
``psmgen serve`` CLI wires SIGTERM/SIGINT to it, and the cluster
router relies on it to drain workers without dropping requests.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Set, Tuple
from urllib.parse import parse_qs

from ..core.export import ExportSchemaError
from ..traces.io import BINARY_MAGIC, BinaryTraceReader
from .batching import MicroBatcher, QueueFullError
from .metrics import MetricsRegistry
from .registry import (
    ModelRegistry,
    QuarantinedModelError,
    UnknownModelError,
)
from .wire import (  # noqa: F401  (MAX_BODY_BYTES/REASONS re-exported)
    MAX_BODY_BYTES,
    REASONS,
    BadRequestError,
    encode_body,
    read_request,
    write_response,
)

#: Content type selecting the binary ``.npt`` estimate input.
NPT_CONTENT_TYPE = "application/x-psmgen-npt"

#: Response header naming the worker that served an estimate; the
#: cluster router preserves it so clients (and the loadgen's
#: per-worker percentiles) can attribute every response.
WORKER_HEADER = "X-Psm-Worker"


def _endpoint_label(method: str, path: str) -> str:
    """Normalised endpoint label for metrics (bounded cardinality)."""
    if path == "/healthz":
        return "healthz"
    if path == "/metrics":
        return "metrics"
    if path == "/v1/models":
        return "models"
    if path == "/v1/estimate":
        return "estimate"
    if path == "/v1/warm":
        return "warm"
    return "other"


class PsmServer:
    """The estimation service: registry + micro-batcher behind HTTP."""

    def __init__(
        self,
        registry: ModelRegistry,
        batcher: MicroBatcher,
        metrics: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout: float = 30.0,
        worker_id: Optional[str] = None,
    ) -> None:
        self.registry = registry
        self.batcher = batcher
        self.metrics = metrics
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self.worker_id = worker_id
        self._server: Optional[asyncio.AbstractServer] = None
        self._draining = False
        self._inflight = 0
        self._writers: Set[asyncio.StreamWriter] = set()
        self._idle = asyncio.Event()
        self._idle.set()
        self._requests = metrics.counter(
            "psmgen_requests_total",
            "HTTP requests served, by endpoint and status.",
            labelnames=("endpoint", "status"),
        )
        self._latency = metrics.histogram(
            "psmgen_request_seconds",
            "End-to-end request latency.",
            labelnames=("endpoint",),
        )
        self._warm_replayed = metrics.counter(
            "psmgen_warm_replayed_total",
            "Models replayed into the local caches via POST /v1/warm.",
        )
        self._warm_wall = metrics.counter(
            "psmgen_warm_seconds_total",
            "Wall-clock seconds spent replaying /v1/warm model lists.",
        )

    @property
    def draining(self) -> bool:
        """True once shutdown began: no new connections are accepted."""
        return self._draining

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (port 0 = ephemeral)."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI's foreground mode)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting connections and release the executors."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.aclose()

    async def shutdown(self, drain_deadline: float = 10.0) -> bool:
        """Drain gracefully: stop accepting, finish in-flight, stop.

        The sequence the ``psmgen serve`` signal handlers and the
        cluster's worker-drain path both run:

        1. close the listening socket — no new connections;
        2. wait (up to ``drain_deadline`` seconds) for every dispatched
           request and every queued micro-batch to complete — responses
           written while draining carry ``Connection: close`` so
           keep-alive clients re-connect elsewhere;
        3. force-close whatever connections remain (idle keep-alive
           peers, or requests that outlived the deadline), then release
           the executors.

        Returns ``True`` when the drain completed inside the deadline
        (nothing was cut off), ``False`` when the deadline expired
        first.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + max(float(drain_deadline), 0.0)
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        drained = await self.batcher.drain(
            max(deadline - loop.time(), 0.0)
        )
        if not self._idle.is_set():
            try:
                await asyncio.wait_for(
                    self._idle.wait(), max(deadline - loop.time(), 0.001)
                )
            except asyncio.TimeoutError:
                drained = False
        for writer in list(self._writers):
            try:
                writer.close()
            except Exception:
                pass
        await self.batcher.aclose()
        return drained

    # ------------------------------------------------------------------
    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve requests on one connection until the client is done.

        HTTP/1.1 keep-alive: the connection is reused for further
        requests unless the client sends ``Connection: close`` (or
        speaks HTTP/1.0), which spares both sides the per-request
        connect/accept/teardown cost under sustained load.
        """
        loop = asyncio.get_running_loop()
        endpoint = "other"
        self._writers.add(writer)
        try:
            while True:
                start = loop.time()
                try:
                    method, path, query, content_type, body, keep = (
                        await read_request(reader)
                    )
                except BadRequestError as exc:
                    await self._respond(
                        writer, 400, {"error": str(exc)}, "other", start
                    )
                    return
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    asyncio.LimitOverrunError,
                ):
                    return  # client went away / closed between requests
                endpoint = _endpoint_label(method, path)
                self._inflight += 1
                self._idle.clear()
                try:
                    status, payload, headers = await self._dispatch(
                        method, path, query, content_type, body
                    )
                finally:
                    self._inflight -= 1
                    if self._inflight == 0:
                        self._idle.set()
                keep = keep and not self._draining
                await self._respond(
                    writer, status, payload, endpoint, start, headers,
                    close=not keep,
                )
                if not keep:
                    return
        except asyncio.CancelledError:
            # Loop teardown cancelled us mid-read (idle keep-alive
            # connection at shutdown).  Exit normally so the streams
            # protocol callback doesn't log the cancellation as an
            # unhandled error.
            return
        except Exception as exc:  # last-resort 500, never kill the loop
            try:
                await self._respond(
                    writer,
                    500,
                    {"error": f"internal error: {exc!r}"},
                    endpoint,
                    loop.time(),
                )
            except Exception:
                pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload,
        endpoint: str,
        start: float,
        headers: Tuple[Tuple[str, str], ...] = (),
        close: bool = True,
    ) -> None:
        """Write one response and record the request metrics."""
        body, content_type = encode_body(payload)
        if self.worker_id is not None:
            headers = (*headers, (WORKER_HEADER, self.worker_id))
        await write_response(
            writer, status, body, content_type, headers, close=close
        )
        loop = asyncio.get_running_loop()
        self._requests.inc(endpoint=endpoint, status=str(status))
        self._latency.observe(loop.time() - start, endpoint=endpoint)

    # ------------------------------------------------------------------
    async def _dispatch(
        self,
        method: str,
        path: str,
        query: str,
        content_type: str,
        body: bytes,
    ):
        """Route one request; returns ``(status, payload, headers)``."""
        if method == "GET" and path == "/healthz":
            return (
                200,
                {
                    "status": "draining" if self._draining else "ok",
                    "models_loaded": len(self.registry.loaded_models()),
                    "models_available": len(self.registry.discover()),
                    "mode": self.batcher.mode,
                    "engine": self.batcher.engine,
                },
                (),
            )
        if method == "GET" and path == "/v1/models":
            return (
                200,
                {
                    "models": self.registry.list_models(),
                    **self.registry.compile_stats(),
                },
                (),
            )
        if method == "GET" and path == "/metrics":
            return 200, self.metrics.render(), ()
        if path == "/v1/estimate":
            if method != "POST":
                return 405, {"error": "use POST"}, ()
            return await self._handle_estimate(body, query, content_type)
        if path == "/v1/warm":
            if method != "POST":
                return 405, {"error": "use POST"}, ()
            return await self._handle_warm(body)
        return 404, {"error": f"no such endpoint {path!r}"}, ()

    async def _handle_warm(self, body: bytes):
        """The ``POST /v1/warm`` route: replay models into the caches.

        The cluster supervisor's arc pre-warm protocol (DESIGN.md §3.9):
        before a joining worker is published into the hash ring, the
        supervisor posts the model names on the arcs it is about to own
        and this handler loads each bundle into the registry (labeler +
        simulator construction) and lowers it to compiled form, so the
        worker's first real request hits warm caches.  Unknown or
        quarantined bundles are reported per name, never fatal — a bad
        deploy must not keep a worker out of the ring.
        """
        try:
            data = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            return 400, {"error": f"invalid JSON body: {exc}"}, ()
        models = data.get("models") if isinstance(data, dict) else None
        if not isinstance(models, list) or not all(
            isinstance(name, str) and name for name in models
        ):
            return (
                400,
                {"error": "body must carry a 'models' list of names"},
                (),
            )
        loop = asyncio.get_running_loop()
        start = loop.time()
        warmed: list = []
        skipped = {}
        for name in models:
            try:
                entry = await asyncio.to_thread(self.registry.get, name)
                if self.batcher.engine != "object":
                    await asyncio.to_thread(
                        self.registry.compiled_for, entry
                    )
                warmed.append(name)
            except (UnknownModelError, QuarantinedModelError) as exc:
                skipped[name] = str(exc)
            except ExportSchemaError as exc:
                skipped[name] = str(exc)
        wall = loop.time() - start
        if warmed:
            self._warm_replayed.inc(len(warmed))
        self._warm_wall.inc(wall)
        return (
            200,
            {
                "warmed": len(warmed),
                "models": warmed,
                "skipped": skipped,
                "wall_s": round(wall, 6),
            },
            (),
        )

    def _trace_json_from_request(self, data: dict) -> Tuple[str, dict]:
        """Extract ``(model, trace_json)`` from an estimate body.

        Accepts either a full ``"trace"`` document or raw ``"vectors"``
        resolved against the bundle's embedded variable declarations.
        """
        model = data.get("model")
        if not isinstance(model, str) or not model:
            raise BadRequestError("body must carry a 'model' name")
        trace = data.get("trace")
        if trace is not None:
            if not isinstance(trace, dict):
                raise BadRequestError("'trace' must be an object")
            return model, trace
        vectors = data.get("vectors")
        if vectors is None:
            raise BadRequestError("body needs 'trace' or 'vectors'")
        if not isinstance(vectors, list) or not vectors:
            raise BadRequestError("'vectors' must be a non-empty list")
        entry = self.registry.get(model)
        if not entry.variables:
            raise BadRequestError(
                f"bundle {model!r} embeds no variable declarations; "
                "send a full 'trace' document instead of 'vectors'"
            )
        columns = {}
        for spec in entry.variables:
            try:
                columns[spec.name] = [
                    int(vector[spec.name]) for vector in vectors
                ]
            except (KeyError, TypeError, ValueError):
                raise BadRequestError(
                    f"every vector must map variable {spec.name!r} "
                    "to an integer"
                )
        return model, {
            "name": data.get("name", "request"),
            "variables": [
                {
                    "name": v.name,
                    "width": v.width,
                    "direction": v.direction,
                    "kind": v.kind,
                }
                for v in entry.variables
            ],
            "columns": columns,
        }

    async def _handle_estimate(
        self, body: bytes, query: str = "", content_type: str = ""
    ):
        """The ``POST /v1/estimate`` route body (JSON or binary)."""
        is_npt = (
            content_type == NPT_CONTENT_TYPE
            or body[: len(BINARY_MAGIC)] == BINARY_MAGIC
        )
        if not is_npt:
            try:
                data = json.loads(body.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                return 400, {"error": f"invalid JSON body: {exc}"}, ()
            if not isinstance(data, dict):
                return 400, {"error": "body must be a JSON object"}, ()
        try:
            if is_npt:
                params = parse_qs(query)
                model = (params.get("model") or [""])[0]
                if not model:
                    raise BadRequestError(
                        "binary estimate needs a ?model=<name> "
                        "query parameter"
                    )
                # Validate the container header before queueing; the
                # body bytes travel to the kernel untouched.
                reader = BinaryTraceReader.from_bytes(body)
                if not reader.variables:
                    raise BadRequestError(
                        "binary trace carries no functional columns"
                    )
                entry = self.registry.get(model)
                submission = self.batcher.submit(model, npt_bytes=body)
            else:
                model, trace_json = self._trace_json_from_request(data)
                entry = self.registry.get(model)
                submission = self.batcher.submit(model, trace_json)
            payload = await asyncio.wait_for(
                submission,
                timeout=self.request_timeout,
            )
        except BadRequestError as exc:
            return 400, {"error": str(exc)}, ()
        except UnknownModelError as exc:
            return 404, {"error": str(exc)}, ()
        except QuarantinedModelError as exc:
            return 503, {"error": str(exc)}, ()
        except QueueFullError as exc:
            return (
                429,
                {"error": str(exc), "retry_after": exc.retry_after},
                (("Retry-After", str(exc.retry_after)),),
            )
        except asyncio.TimeoutError:
            return (
                504,
                {
                    "error": (
                        "estimate did not complete within "
                        f"{self.request_timeout}s"
                    )
                },
                (),
            )
        except (ExportSchemaError, ValueError, KeyError) as exc:
            # trace decode / simulation input errors surface here
            return 400, {"error": f"bad estimate input: {exc}"}, ()
        payload = {
            "model": model,
            "version": entry.version,
            **payload,
        }
        return 200, payload, ()


def create_server(
    models_dir,
    host: str = "127.0.0.1",
    port: int = 0,
    jobs: int = 1,
    max_queue: int = 64,
    max_batch: int = 8,
    cap: int = 8,
    request_timeout: float = 30.0,
    metrics: Optional[MetricsRegistry] = None,
    engine: str = "auto",
    freshness_interval: float = 0.25,
    worker_id: Optional[str] = None,
) -> PsmServer:
    """Wire registry + batcher + metrics into a ready-to-start server.

    The one-call constructor used by ``psmgen serve`` and the test
    suite; ``port=0`` binds an ephemeral port (read ``server.port``
    after :meth:`PsmServer.start`).  ``freshness_interval`` rate-limits
    the registry's per-lookup hot-reload stat — replaced bundle files
    are still picked up, just at most that many seconds late.
    ``worker_id`` tags every response with ``X-Psm-Worker`` (set by the
    cluster supervisor so responses stay attributable through the
    router).
    """
    metrics = metrics or MetricsRegistry()
    registry = ModelRegistry(
        models_dir,
        cap=cap,
        metrics=metrics,
        freshness_interval=freshness_interval,
    )
    batcher = MicroBatcher(
        registry,
        metrics=metrics,
        jobs=jobs,
        max_queue=max_queue,
        max_batch=max_batch,
        engine=engine,
    )
    return PsmServer(
        registry,
        batcher,
        metrics,
        host=host,
        port=port,
        request_timeout=request_timeout,
        worker_id=worker_id,
    )
