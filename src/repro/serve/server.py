"""Asyncio HTTP/1.1 JSON API serving PSM power estimation.

A hand-rolled, dependency-free HTTP server on ``asyncio.start_server``
(the container bakes in no web framework, and the protocol surface we
need is tiny).  Endpoints:

``POST /v1/estimate``
    ``{"model": name, "trace": {...}}`` (the
    :func:`~repro.traces.io.functional_trace_to_json` form) **or**
    ``{"model": name, "vectors": [{var: value, ...}, ...]}`` using the
    variable declarations embedded in the bundle, **or** a raw binary
    ``.npt`` trace container (``Content-Type:
    application/x-psmgen-npt`` or the ``PSMT`` magic) addressed as
    ``POST /v1/estimate?model=<name>`` — the binary body feeds the
    compiled kernel zero-copy through
    :meth:`~repro.traces.io.BinaryTraceReader.from_bytes`.  Responds
    with the per-instant power plus WSP/desync metrics
    (:meth:`~repro.core.simulation.EstimationResult.to_json`), the
    coalesced batch size, the executing engine and the simulation wall
    time.
``GET /v1/models``
    Registry contents: loaded entries (name, version digest, shape),
    unloaded bundles, quarantined files with their validation error.
``GET /healthz``
    Liveness plus basic registry counts.
``GET /metrics``
    Prometheus text exposition (see DESIGN.md for the catalogue).

Error mapping: bad input -> 400, unknown model -> 404, queue full ->
429 with ``Retry-After``, request timeout -> 504, quarantined model ->
503, anything unexpected -> 500.  Connections are HTTP/1.1 keep-alive
by default — sustained clients (the loadgen's persistent lanes) reuse
them request after request — while ``Connection: close`` clients get
the old one-request discipline.
"""

from __future__ import annotations

import asyncio
import json
from typing import Optional, Tuple
from urllib.parse import parse_qs

from ..core.export import ExportSchemaError
from ..traces.io import BINARY_MAGIC, BinaryTraceReader
from .batching import MicroBatcher, QueueFullError
from .metrics import MetricsRegistry
from .registry import (
    ModelRegistry,
    QuarantinedModelError,
    UnknownModelError,
)

#: Largest accepted request body (bytes); estimate windows are bounded.
MAX_BODY_BYTES = 64 * 1024 * 1024

#: Content type selecting the binary ``.npt`` estimate input.
NPT_CONTENT_TYPE = "application/x-psmgen-npt"

#: Reason phrases for the status codes the server emits.
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class BadRequestError(ValueError):
    """The request body or target is structurally invalid (-> 400)."""


def _endpoint_label(method: str, path: str) -> str:
    """Normalised endpoint label for metrics (bounded cardinality)."""
    if path == "/healthz":
        return "healthz"
    if path == "/metrics":
        return "metrics"
    if path == "/v1/models":
        return "models"
    if path == "/v1/estimate":
        return "estimate"
    return "other"


class PsmServer:
    """The estimation service: registry + micro-batcher behind HTTP."""

    def __init__(
        self,
        registry: ModelRegistry,
        batcher: MicroBatcher,
        metrics: MetricsRegistry,
        host: str = "127.0.0.1",
        port: int = 0,
        request_timeout: float = 30.0,
    ) -> None:
        self.registry = registry
        self.batcher = batcher
        self.metrics = metrics
        self.host = host
        self.port = port
        self.request_timeout = request_timeout
        self._server: Optional[asyncio.AbstractServer] = None
        self._requests = metrics.counter(
            "psmgen_requests_total",
            "HTTP requests served, by endpoint and status.",
            labelnames=("endpoint", "status"),
        )
        self._latency = metrics.histogram(
            "psmgen_request_seconds",
            "End-to-end request latency.",
            labelnames=("endpoint",),
        )

    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections (port 0 = ephemeral)."""
        self._server = await asyncio.start_server(
            self._handle_client, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until cancelled (the CLI's foreground mode)."""
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting connections and release the executors."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.batcher.aclose()

    # ------------------------------------------------------------------
    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Serve requests on one connection until the client is done.

        HTTP/1.1 keep-alive: the connection is reused for further
        requests unless the client sends ``Connection: close`` (or
        speaks HTTP/1.0), which spares both sides the per-request
        connect/accept/teardown cost under sustained load.
        """
        loop = asyncio.get_running_loop()
        endpoint = "other"
        try:
            while True:
                start = loop.time()
                try:
                    method, path, query, content_type, body, keep = (
                        await self._read_request(reader)
                    )
                except BadRequestError as exc:
                    await self._respond(
                        writer, 400, {"error": str(exc)}, "other", start
                    )
                    return
                except (
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    asyncio.LimitOverrunError,
                ):
                    return  # client went away / closed between requests
                endpoint = _endpoint_label(method, path)
                status, payload, headers = await self._dispatch(
                    method, path, query, content_type, body
                )
                await self._respond(
                    writer, status, payload, endpoint, start, headers,
                    close=not keep,
                )
                if not keep:
                    return
        except Exception as exc:  # last-resort 500, never kill the loop
            try:
                await self._respond(
                    writer,
                    500,
                    {"error": f"internal error: {exc!r}"},
                    endpoint,
                    loop.time(),
                )
            except Exception:
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, str, str, bytes, bool]:
        """Parse one HTTP/1.1 request head + body.

        Returns ``(method, path, query, content_type, body, keep)`` —
        the query string and content type drive the binary estimate
        input; ``keep`` is whether the connection may serve another
        request afterwards.
        """
        request_line = await reader.readline()
        if not request_line:
            raise asyncio.IncompleteReadError(b"", None)
        try:
            method, target, version = (
                request_line.decode("latin-1").strip().split(" ", 2)
            )
        except ValueError:
            raise BadRequestError("malformed request line")
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise BadRequestError("malformed header line")
            headers[name.strip().lower()] = value.strip()
            if len(headers) > 100:
                raise BadRequestError("too many headers")
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise BadRequestError("bad Content-Length")
        if length < 0 or length > MAX_BODY_BYTES:
            raise BadRequestError("request body too large")
        body = await reader.readexactly(length) if length else b""
        path, _, query = target.partition("?")
        content_type = headers.get("content-type", "").partition(";")[0]
        connection = headers.get("connection", "").lower()
        keep = version != "HTTP/1.0" and connection != "close"
        return method, path, query, content_type.strip().lower(), body, keep

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload,
        endpoint: str,
        start: float,
        headers: Tuple[Tuple[str, str], ...] = (),
        close: bool = True,
    ) -> None:
        """Write one response and record the request metrics."""
        if isinstance(payload, (dict, list)):
            # Compact separators: estimate responses carry per-instant
            # arrays, and the default ", " padding costs both bytes and
            # encoder time on the serving hot path.
            body = (
                json.dumps(payload, separators=(",", ":")) + "\n"
            ).encode("utf-8")
            content_type = "application/json"
        else:
            body = str(payload).encode("utf-8")
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        head = [
            f"HTTP/1.1 {status} {REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close else 'keep-alive'}",
        ]
        head.extend(f"{name}: {value}" for name, value in headers)
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await writer.drain()
        loop = asyncio.get_running_loop()
        self._requests.inc(endpoint=endpoint, status=str(status))
        self._latency.observe(loop.time() - start, endpoint=endpoint)

    # ------------------------------------------------------------------
    async def _dispatch(
        self,
        method: str,
        path: str,
        query: str,
        content_type: str,
        body: bytes,
    ):
        """Route one request; returns ``(status, payload, headers)``."""
        if method == "GET" and path == "/healthz":
            return (
                200,
                {
                    "status": "ok",
                    "models_loaded": len(self.registry.loaded_models()),
                    "models_available": len(self.registry.discover()),
                    "mode": self.batcher.mode,
                    "engine": self.batcher.engine,
                },
                (),
            )
        if method == "GET" and path == "/v1/models":
            return (
                200,
                {
                    "models": self.registry.list_models(),
                    **self.registry.compile_stats(),
                },
                (),
            )
        if method == "GET" and path == "/metrics":
            return 200, self.metrics.render(), ()
        if path == "/v1/estimate":
            if method != "POST":
                return 405, {"error": "use POST"}, ()
            return await self._handle_estimate(body, query, content_type)
        return 404, {"error": f"no such endpoint {path!r}"}, ()

    def _trace_json_from_request(self, data: dict) -> Tuple[str, dict]:
        """Extract ``(model, trace_json)`` from an estimate body.

        Accepts either a full ``"trace"`` document or raw ``"vectors"``
        resolved against the bundle's embedded variable declarations.
        """
        model = data.get("model")
        if not isinstance(model, str) or not model:
            raise BadRequestError("body must carry a 'model' name")
        trace = data.get("trace")
        if trace is not None:
            if not isinstance(trace, dict):
                raise BadRequestError("'trace' must be an object")
            return model, trace
        vectors = data.get("vectors")
        if vectors is None:
            raise BadRequestError("body needs 'trace' or 'vectors'")
        if not isinstance(vectors, list) or not vectors:
            raise BadRequestError("'vectors' must be a non-empty list")
        entry = self.registry.get(model)
        if not entry.variables:
            raise BadRequestError(
                f"bundle {model!r} embeds no variable declarations; "
                "send a full 'trace' document instead of 'vectors'"
            )
        columns = {}
        for spec in entry.variables:
            try:
                columns[spec.name] = [
                    int(vector[spec.name]) for vector in vectors
                ]
            except (KeyError, TypeError, ValueError):
                raise BadRequestError(
                    f"every vector must map variable {spec.name!r} "
                    "to an integer"
                )
        return model, {
            "name": data.get("name", "request"),
            "variables": [
                {
                    "name": v.name,
                    "width": v.width,
                    "direction": v.direction,
                    "kind": v.kind,
                }
                for v in entry.variables
            ],
            "columns": columns,
        }

    async def _handle_estimate(
        self, body: bytes, query: str = "", content_type: str = ""
    ):
        """The ``POST /v1/estimate`` route body (JSON or binary)."""
        is_npt = (
            content_type == NPT_CONTENT_TYPE
            or body[: len(BINARY_MAGIC)] == BINARY_MAGIC
        )
        if not is_npt:
            try:
                data = json.loads(body.decode("utf-8"))
            except (json.JSONDecodeError, UnicodeDecodeError) as exc:
                return 400, {"error": f"invalid JSON body: {exc}"}, ()
            if not isinstance(data, dict):
                return 400, {"error": "body must be a JSON object"}, ()
        try:
            if is_npt:
                params = parse_qs(query)
                model = (params.get("model") or [""])[0]
                if not model:
                    raise BadRequestError(
                        "binary estimate needs a ?model=<name> "
                        "query parameter"
                    )
                # Validate the container header before queueing; the
                # body bytes travel to the kernel untouched.
                reader = BinaryTraceReader.from_bytes(body)
                if not reader.variables:
                    raise BadRequestError(
                        "binary trace carries no functional columns"
                    )
                entry = self.registry.get(model)
                submission = self.batcher.submit(model, npt_bytes=body)
            else:
                model, trace_json = self._trace_json_from_request(data)
                entry = self.registry.get(model)
                submission = self.batcher.submit(model, trace_json)
            payload = await asyncio.wait_for(
                submission,
                timeout=self.request_timeout,
            )
        except BadRequestError as exc:
            return 400, {"error": str(exc)}, ()
        except UnknownModelError as exc:
            return 404, {"error": str(exc)}, ()
        except QuarantinedModelError as exc:
            return 503, {"error": str(exc)}, ()
        except QueueFullError as exc:
            return (
                429,
                {"error": str(exc), "retry_after": exc.retry_after},
                (("Retry-After", str(exc.retry_after)),),
            )
        except asyncio.TimeoutError:
            return (
                504,
                {
                    "error": (
                        "estimate did not complete within "
                        f"{self.request_timeout}s"
                    )
                },
                (),
            )
        except (ExportSchemaError, ValueError, KeyError) as exc:
            # trace decode / simulation input errors surface here
            return 400, {"error": f"bad estimate input: {exc}"}, ()
        payload = {
            "model": model,
            "version": entry.version,
            **payload,
        }
        return 200, payload, ()


def create_server(
    models_dir,
    host: str = "127.0.0.1",
    port: int = 0,
    jobs: int = 1,
    max_queue: int = 64,
    max_batch: int = 8,
    cap: int = 8,
    request_timeout: float = 30.0,
    metrics: Optional[MetricsRegistry] = None,
    engine: str = "auto",
    freshness_interval: float = 0.25,
) -> PsmServer:
    """Wire registry + batcher + metrics into a ready-to-start server.

    The one-call constructor used by ``psmgen serve`` and the test
    suite; ``port=0`` binds an ephemeral port (read ``server.port``
    after :meth:`PsmServer.start`).  ``freshness_interval`` rate-limits
    the registry's per-lookup hot-reload stat — replaced bundle files
    are still picked up, just at most that many seconds late.
    """
    metrics = metrics or MetricsRegistry()
    registry = ModelRegistry(
        models_dir,
        cap=cap,
        metrics=metrics,
        freshness_interval=freshness_interval,
    )
    batcher = MicroBatcher(
        registry,
        metrics=metrics,
        jobs=jobs,
        max_queue=max_queue,
        max_batch=max_batch,
        engine=engine,
    )
    return PsmServer(
        registry,
        batcher,
        metrics,
        host=host,
        port=port,
        request_timeout=request_timeout,
    )
