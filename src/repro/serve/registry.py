"""Model registry: discovery, validation, caching and hot reload.

The registry turns a directory of exported PSM bundles (``psmgen
generate -o`` / ``psmgen bench -o`` output) into ready-to-serve model
entries.  Loading a bundle is expensive relative to serving one request
— JSON decode, proposition-universe rebuild via
:func:`~repro.core.export.labeler_from_psms`, HMM construction inside
:class:`~repro.core.simulation.MultiPsmSimulator` — so each model is
constructed **once** per file version and cached:

* the cache is an LRU bounded by ``cap``: least-recently-served entries
  are evicted when a new model would exceed it;
* every access stats the backing file; a changed ``(mtime, size)``
  signature triggers a hot reload, so operators can atomically replace a
  bundle under a running server.  A non-zero ``freshness_interval``
  rate-limits that stat: a cached entry verified within the interval is
  served without touching the filesystem, which matters on the serving
  hot path where the registry is consulted per request;
* a bundle that fails schema validation
  (:class:`~repro.core.export.ExportSchemaError`) is **quarantined**:
  the error is recorded, requests for the model fail fast with
  :class:`QuarantinedModelError`, and the file is retried only after it
  changes on disk — one bad deploy cannot crash or wedge the server.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.export import Bundle, ExportSchemaError, labeler_from_psms, load_bundle
from ..core.simulation import MultiPsmSimulator
from ..traces.variables import VariableSpec
from .metrics import MetricsRegistry

PathLike = Union[str, Path]

#: File signature used for hot-reload detection.
Signature = Tuple[int, int]


def discover_bundles(models_dir: PathLike) -> Dict[str, Path]:
    """Bundle files present under ``models_dir``, by model name.

    The registry's bundle index, shared with the cluster supervisor's
    arc pre-warm step (which needs the model universe without holding a
    registry of its own): every ``NAME.json`` directly in the directory
    serves as model ``NAME``.
    """
    models_dir = Path(models_dir)
    if not models_dir.is_dir():
        return {}
    return {path.stem: path for path in sorted(models_dir.glob("*.json"))}


class RegistryError(RuntimeError):
    """Base error of the model registry."""


class UnknownModelError(RegistryError):
    """The requested model has no bundle file in the models directory."""


class QuarantinedModelError(RegistryError):
    """The requested model's bundle failed validation and is quarantined.

    ``reason`` carries the original schema error text so API responses
    can explain what is wrong with the deployed file.
    """

    def __init__(self, name: str, reason: str) -> None:
        super().__init__(f"model {name!r} is quarantined: {reason}")
        self.model = name
        self.reason = reason


@dataclass
class ModelEntry:
    """One ready-to-serve model: bundle + simulator built once, cached."""

    name: str
    path: Path
    signature: Signature
    bundle: Bundle
    labeler: object
    simulator: MultiPsmSimulator
    loaded_at: float
    hits: int = 0
    checked_at: float = 0.0
    compiled: Optional[object] = None
    compiled_digest: Optional[str] = None
    compile_seconds: float = 0.0

    @property
    def version(self) -> str:
        """Content digest identifying this bundle version."""
        return self.bundle.digest

    @property
    def variables(self) -> List[VariableSpec]:
        """Embedded PI/PO declarations ([] for sidecar-less bundles)."""
        return self.bundle.variables

    def describe(self) -> dict:
        """The ``GET /v1/models`` row for this entry."""
        psms = self.bundle.psms
        return {
            "name": self.name,
            "version": self.version,
            "schema": self.bundle.schema,
            "psms": len(psms),
            "states": sum(len(p) for p in psms),
            "transitions": sum(len(p.transitions) for p in psms),
            "variables": [v.name for v in self.variables],
            "deterministic": all(p.is_deterministic() for p in psms),
            "loaded_at": self.loaded_at,
            "hits": self.hits,
            "quarantined": False,
            "compiled": self.compiled is not None,
            "compile_wall_s": self.compile_seconds,
        }


@dataclass
class _QuarantineRecord:
    """Remembers why a bundle version failed, until the file changes."""

    signature: Optional[Signature]
    reason: str
    since: float = field(default_factory=time.time)


class ModelRegistry:
    """Discovers, validates, versions and hot-reloads PSM bundles.

    Models are addressed by file stem: ``<models_dir>/MultSum.json``
    serves as ``MultSum``.  Thread-safe: the asyncio loop and executor
    threads may call :meth:`get` concurrently.
    """

    def __init__(
        self,
        models_dir: PathLike,
        cap: int = 8,
        metrics: Optional[MetricsRegistry] = None,
        freshness_interval: float = 0.0,
    ) -> None:
        self.models_dir = Path(models_dir)
        self.cap = max(int(cap), 1)
        self.freshness_interval = max(float(freshness_interval), 0.0)
        self._entries: "OrderedDict[str, ModelEntry]" = OrderedDict()
        self._quarantine: Dict[str, _QuarantineRecord] = {}
        self._lock = threading.RLock()
        metrics = metrics or MetricsRegistry()
        self._hits = metrics.counter(
            "psmgen_model_cache_hits_total",
            "Model registry lookups served from the cache.",
        )
        self._misses = metrics.counter(
            "psmgen_model_cache_misses_total",
            "Model registry lookups that (re)loaded a bundle from disk.",
        )
        self._evictions = metrics.counter(
            "psmgen_model_cache_evictions_total",
            "Model entries evicted by the LRU cap.",
        )
        self._quarantined = metrics.counter(
            "psmgen_model_quarantined_total",
            "Bundle loads rejected by schema validation.",
        )
        self._loaded_gauge = metrics.gauge(
            "psmgen_models_loaded",
            "Model entries currently resident in the registry cache.",
        )
        self._compile_hits = metrics.counter(
            "psmgen_model_compile_hits_total",
            "Compiled-bundle lookups served from the per-digest cache.",
        )
        self._compile_misses = metrics.counter(
            "psmgen_model_compile_misses_total",
            "Compiled-bundle lookups that lowered a bundle to arrays.",
        )
        self._compile_wall = metrics.counter(
            "psmgen_model_compile_seconds_total",
            "Wall-clock seconds spent lowering bundles to compiled form.",
        )
        self._compiled_dropped = metrics.counter(
            "psmgen_model_compiled_dropped_total",
            "Compiled forms released on eviction, quarantine or reload.",
        )

    def _drop_compiled(self, entry: Optional[ModelEntry]) -> None:
        """Release an entry's compiled form so it cannot stay pinned.

        Called whenever an entry leaves the cache (LRU eviction,
        quarantine, vanished file) or is superseded by a reload: the
        dense arrays of a :class:`~repro.core.compiled.CompiledBundle`
        are the registry's largest per-model allocation, and a caller
        still holding the evicted entry must not keep them alive.
        """
        if entry is None or entry.compiled is None:
            return
        entry.compiled = None
        entry.compiled_digest = None
        entry.compile_seconds = 0.0
        self._compiled_dropped.inc()

    # ------------------------------------------------------------------
    def discover(self) -> Dict[str, Path]:
        """Bundle files currently present, by model name."""
        return discover_bundles(self.models_dir)

    def _path_for(self, name: str) -> Path:
        if (
            not name
            or name != Path(name).name
            or name.startswith(".")
            or "\\" in name
        ):
            raise UnknownModelError(f"invalid model name {name!r}")
        return self.models_dir / f"{name}.json"

    @staticmethod
    def _signature(path: Path) -> Optional[Signature]:
        try:
            stat = path.stat()
        except OSError:
            return None
        return (stat.st_mtime_ns, stat.st_size)

    # ------------------------------------------------------------------
    def get(self, name: str) -> ModelEntry:
        """The cached entry for ``name``, loading/reloading as needed.

        Raises
        ------
        UnknownModelError
            No such bundle file exists.
        QuarantinedModelError
            The bundle failed validation and has not changed since.
        """
        path = self._path_for(name)
        if self.freshness_interval > 0.0:
            # Hot-path fast lane: a stat per lookup is measurable at
            # serving rates, so trust a recently verified entry and
            # defer hot-reload detection by at most the interval.
            entry = self._entries.get(name)
            if (
                entry is not None
                and time.monotonic() - entry.checked_at
                < self.freshness_interval
            ):
                with self._lock:
                    self._entries.move_to_end(name)
                    entry.hits += 1
                    self._hits.inc()
                return entry
        signature = self._signature(path)
        if signature is None:
            with self._lock:
                self._drop_compiled(self._entries.pop(name, None))
                self._quarantine.pop(name, None)
                self._loaded_gauge.set(len(self._entries))
            raise UnknownModelError(
                f"no bundle for model {name!r} under {self.models_dir}"
            )
        with self._lock:
            record = self._quarantine.get(name)
            if record is not None:
                if record.signature == signature:
                    raise QuarantinedModelError(name, record.reason)
                del self._quarantine[name]  # file changed: retry below
            entry = self._entries.get(name)
            if entry is not None and entry.signature == signature:
                self._entries.move_to_end(name)
                entry.hits += 1
                entry.checked_at = time.monotonic()
                self._hits.inc()
                return entry
            return self._load(name, path, signature)

    def _load(self, name: str, path: Path, signature: Signature) -> ModelEntry:
        """Build and cache one entry (caller holds the lock)."""
        self._misses.inc()
        try:
            bundle = load_bundle(path)
        except ExportSchemaError as exc:
            self._drop_compiled(self._entries.pop(name, None))
            self._quarantine[name] = _QuarantineRecord(signature, str(exc))
            self._quarantined.inc()
            self._loaded_gauge.set(len(self._entries))
            raise QuarantinedModelError(name, str(exc)) from exc
        labeler = labeler_from_psms(bundle.psms)
        entry = ModelEntry(
            name=name,
            path=path,
            signature=signature,
            bundle=bundle,
            labeler=labeler,
            simulator=MultiPsmSimulator(bundle.psms, labeler),
            loaded_at=time.time(),
            checked_at=time.monotonic(),
        )
        self._drop_compiled(self._entries.get(name))
        self._entries[name] = entry
        self._entries.move_to_end(name)
        while len(self._entries) > self.cap:
            _, evicted = self._entries.popitem(last=False)
            self._drop_compiled(evicted)
            self._evictions.inc()
        self._loaded_gauge.set(len(self._entries))
        return entry

    # ------------------------------------------------------------------
    def compiled_for(self, entry: ModelEntry):
        """The compiled (dense-array) form of ``entry``, built per digest.

        The first request for a bundle version pays the lowering cost
        (:class:`~repro.core.compiled.CompiledBundle`); later requests —
        and every batch — reuse the cached form.  A hot reload produces
        a fresh entry, and the digest check catches in-place bundle
        swaps, so stale tables can never serve a new model version.
        """
        with self._lock:
            if (
                entry.compiled is not None
                and entry.compiled_digest == entry.version
            ):
                self._compile_hits.inc()
                return entry.compiled
            from ..core.compiled import CompiledBundle

            self._compile_misses.inc()
            compiled = CompiledBundle.from_simulator(entry.simulator)
            entry.compiled = compiled
            entry.compiled_digest = entry.version
            entry.compile_seconds = compiled.compile_wall_s
            self._compile_wall.inc(compiled.compile_wall_s)
            return compiled

    def compile_stats(self) -> Dict[str, float]:
        """Registry-wide compile counters (``GET /v1/models`` payload)."""
        return {
            "compile_hits": int(self._compile_hits.value()),
            "compile_misses": int(self._compile_misses.value()),
            "compile_wall_s": float(self._compile_wall.value()),
        }

    def refresh(self) -> None:
        """Drop entries whose files vanished; reload ones that changed."""
        with self._lock:
            for name in list(self._entries):
                signature = self._signature(self._entries[name].path)
                if signature is None:
                    self._drop_compiled(self._entries.pop(name))
                elif signature != self._entries[name].signature:
                    try:
                        self._load(name, self._path_for(name), signature)
                    except QuarantinedModelError:
                        pass
            self._loaded_gauge.set(len(self._entries))

    def loaded_models(self) -> List[str]:
        """Names currently resident in the cache (LRU order, oldest first)."""
        with self._lock:
            return list(self._entries)

    def list_models(self) -> List[dict]:
        """The ``GET /v1/models`` rows: every discovered bundle's status.

        Resident entries report their full description; on-disk bundles
        not currently cached are listed as unloaded (the registry does
        not force-load every file just to list it); quarantined ones
        carry their error.
        """
        rows: List[dict] = []
        discovered = self.discover()
        with self._lock:
            for name in sorted(discovered):
                entry = self._entries.get(name)
                record = self._quarantine.get(name)
                if record is not None:
                    rows.append(
                        {
                            "name": name,
                            "quarantined": True,
                            "error": record.reason,
                            "since": record.since,
                        }
                    )
                elif entry is not None:
                    rows.append(entry.describe())
                else:
                    rows.append(
                        {"name": name, "loaded": False, "quarantined": False}
                    )
        return rows
