"""Load generator for the estimation server (``psmgen loadgen``).

Replays functional-trace windows against ``POST /v1/estimate`` at a
target request rate and reports throughput and latency percentiles —
the serving-path counterpart of ``psmgen bench --micro``: a schema-
versioned JSON report (``psmgen-loadgen/v1``) that CI can archive and
operators can diff across deployments.

The generator is open-loop with a concurrency cap: requests are
launched on a fixed ``1/rps`` tick schedule regardless of completions
(so the server sees the offered load, not a lock-stepped echo of its
own latency), but at most ``concurrency`` requests are in flight —
excess ticks queue on the semaphore and the *achieved* throughput in
the report exposes the gap.  The HTTP client is hand-rolled over
``asyncio.open_connection``; no third-party dependencies.
"""

from __future__ import annotations

import asyncio
import gc
import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..microbench import check_fields

#: Identifier of the report layout (bump on breaking changes).
SCHEMA = "psmgen-loadgen/v1"

#: Reported latency percentiles.
PERCENTILES = (50.0, 95.0, 99.0)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (linear interpolation, 0 <= q <= 100)."""
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * q / 100.0
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return float(ordered[low] * (1.0 - fraction) + ordered[high] * fraction)


def latency_summary(samples_s: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99/mean/max of a latency sample, in milliseconds."""
    if not samples_s:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    ms = [s * 1e3 for s in samples_s]
    summary = {
        f"p{int(q)}": round(percentile(ms, q), 3) for q in PERCENTILES
    }
    summary["mean"] = round(sum(ms) / len(ms), 3)
    summary["max"] = round(max(ms), 3)
    return summary


async def http_request_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[dict] = None,
    timeout: float = 10.0,
) -> Tuple[int, Dict[str, str], bytes]:
    """One JSON HTTP/1.1 request over a fresh connection."""
    body = (
        json.dumps(payload).encode("utf-8") if payload is not None else b""
    )
    return await http_request_raw(
        host, port, method, path, body, "application/json", timeout
    )


async def http_request_raw(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes,
    content_type: str = "application/json",
    timeout: float = 10.0,
) -> Tuple[int, Dict[str, str], bytes]:
    """One HTTP/1.1 request with a pre-encoded body (stdlib asyncio).

    Returns ``(status, headers, body)``.  Matches the server's
    one-request-per-connection discipline.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        head = [
            f"{method} {path} HTTP/1.1",
            f"Host: {host}:{port}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await asyncio.wait_for(writer.drain(), timeout)

        async def _read_response():
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split(" ", 2)
            status = int(parts[1])
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0"))
            data = await reader.readexactly(length) if length else b""
            return status, headers, data

        return await asyncio.wait_for(_read_response(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass


#: Request encodings the load generator can replay.
PAYLOADS = ("json", "npt")


def _encode_request_bodies(
    model: str, windows: Sequence[dict], payload: str
) -> Tuple[str, str, List[bytes]]:
    """Pre-encoded ``(path, content_type, bodies)`` for the load loop.

    Encoding once up front keeps per-request client cost flat: the JSON
    mode serialises each ``{"model", "trace"}`` document a single time,
    the ``npt`` mode packs each window into the binary container
    (``application/x-psmgen-npt``, model passed via the query string) so
    the timed loop only ships bytes.
    """
    if payload == "json":
        bodies = [
            json.dumps({"model": model, "trace": window}).encode("utf-8")
            for window in windows
        ]
        return "/v1/estimate", "application/json", bodies
    if payload == "npt":
        import tempfile
        from pathlib import Path
        from urllib.parse import quote

        from ..traces.io import (
            functional_trace_from_json,
            save_functional_bin,
        )

        bodies = []
        with tempfile.TemporaryDirectory() as tmp:
            for index, window in enumerate(windows):
                path = Path(tmp) / f"window{index}.npt"
                save_functional_bin(
                    functional_trace_from_json(window), path
                )
                bodies.append(path.read_bytes())
        return (
            f"/v1/estimate?model={quote(model)}",
            "application/x-psmgen-npt",
            bodies,
        )
    raise ValueError(f"unknown payload {payload!r}; want one of {PAYLOADS}")


class _Lane:
    """One persistent keep-alive connection of the load loop.

    Opening a TCP connection per request costs both sides more loop CPU
    than the estimate itself once the compiled kernel is in play, so
    each concurrency lane keeps a single HTTP/1.1 connection open and
    replays requests over it.  A stale connection (server restarted,
    idle drop) is re-opened once; timeouts drop the connection and
    propagate.
    """

    def __init__(self, host: str, port: int, timeout: float) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    def _drop(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
            except Exception:
                pass
        self._reader = None
        self._writer = None

    async def close(self) -> None:
        writer = self._writer
        self._drop()
        if writer is not None:
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def request(
        self, method: str, path: str, body: bytes, content_type: str
    ) -> Tuple[int, Dict[str, str], bytes]:
        for attempt in (0, 1):
            fresh = self._writer is None
            try:
                return await asyncio.wait_for(
                    self._attempt(method, path, body, content_type),
                    self.timeout,
                )
            except asyncio.TimeoutError:
                self._drop()
                raise
            except (OSError, asyncio.IncompleteReadError):
                self._drop()
                if fresh or attempt:
                    raise
        raise OSError("unreachable")

    async def _attempt(
        self, method: str, path: str, body: bytes, content_type: str
    ) -> Tuple[int, Dict[str, str], bytes]:
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        head = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
        ]
        self._writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
        )
        self._writer.write(body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise asyncio.IncompleteReadError(b"", None)
        status = int(status_line.decode("latin-1").split(" ", 2)[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        data = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            self._drop()
        return status, headers, data


async def _run_loadgen_async(
    host: str,
    port: int,
    model: str,
    windows: Sequence[dict],
    rps: float,
    duration_s: float,
    concurrency: int,
    timeout: float,
    warmup: int = 0,
    payload: str = "json",
) -> dict:
    """The load loop behind :func:`run_loadgen`."""
    if rps <= 0:
        raise ValueError("rps must be positive")
    if not windows:
        raise ValueError("loadgen needs at least one trace window")
    path, content_type, bodies = _encode_request_bodies(
        model, windows, payload
    )
    lanes = [
        _Lane(host, port, timeout)
        for _ in range(max(int(concurrency), 1))
    ]
    semaphore = asyncio.Semaphore(max(int(concurrency), 1))
    latencies: List[float] = []
    status_counts: Dict[str, int] = {}
    transport_errors = 0
    launched = 0
    lock = asyncio.Lock()

    # Warm-up window: the first requests pay one-off server costs
    # (bundle load, compile, import caches) that would otherwise skew
    # the max/p99 columns; they run before the timed loop and are
    # excluded from every latency statistic.
    warmup_sent = 0
    warmup_errors = 0
    for index in range(max(int(warmup), 0)):
        warmup_sent += 1
        try:
            await lanes[0].request(
                "POST", path, bodies[index % len(bodies)], content_type
            )
        except (OSError, asyncio.TimeoutError, ValueError):
            warmup_errors += 1

    async def _one(index: int) -> None:
        nonlocal transport_errors
        body = bodies[index % len(bodies)]
        async with semaphore:
            lane = lanes.pop()
            start = time.perf_counter()
            try:
                status, _headers, _body = await lane.request(
                    "POST", path, body, content_type
                )
            except (OSError, asyncio.TimeoutError, ValueError):
                async with lock:
                    transport_errors += 1
                return
            finally:
                lanes.append(lane)
            elapsed = time.perf_counter() - start
            async with lock:
                latencies.append(elapsed)
                key = str(status)
                status_counts[key] = status_counts.get(key, 0) + 1

    interval = 1.0 / rps
    loop = asyncio.get_running_loop()
    # Defer cyclic GC for the timed window: a mid-run collection pause
    # lands in some request's latency sample and pollutes the tail
    # percentiles with client-side noise.  The window is seconds long
    # and the loop allocates modestly, so the deferral is safe.
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    t0 = loop.time()
    tasks: List[asyncio.Task] = []
    try:
        while loop.time() - t0 < duration_s:
            tasks.append(loop.create_task(_one(launched)))
            launched += 1
            next_tick = t0 + launched * interval
            delay = next_tick - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
        if tasks:
            await asyncio.gather(*tasks)
        elapsed = loop.time() - t0
    finally:
        if gc_was_enabled:
            gc.enable()
    for lane in lanes:
        await lane.close()
    completed = len(latencies)
    errors_5xx = sum(
        count
        for status, count in status_counts.items()
        if status.startswith("5")
    )
    return {
        "schema": SCHEMA,
        "model": model,
        "target_rps": float(rps),
        "duration_s": round(elapsed, 3),
        "concurrency": int(concurrency),
        "window_instants": _window_instants(windows[0]),
        "windows": len(windows),
        "requests": launched,
        "completed": completed,
        "payload": payload,
        "warmup_requests": warmup_sent,
        "warmup_errors": warmup_errors,
        "throughput_rps": round(completed / elapsed, 3) if elapsed else 0.0,
        "status_counts": status_counts,
        "errors_5xx": errors_5xx,
        "transport_errors": transport_errors,
        "latency_ms": latency_summary(latencies),
    }


def _window_instants(window: dict) -> int:
    columns = window.get("columns") or {}
    for values in columns.values():
        return len(values)
    return 0


def run_loadgen(
    host: str,
    port: int,
    model: str,
    windows: Sequence[dict],
    rps: float = 20.0,
    duration_s: float = 5.0,
    concurrency: int = 8,
    timeout: float = 10.0,
    warmup: int = 0,
    payload: str = "json",
) -> dict:
    """Drive the server at ``rps`` for ``duration_s``; the v1 report.

    ``windows`` are pre-serialised functional-trace documents
    (:func:`~repro.traces.io.functional_trace_to_json`), replayed
    round-robin.  ``warmup`` requests are sent (and awaited) before the
    timed window and excluded from the latency statistics — the report
    still records how many ran via ``warmup_requests``.  ``payload``
    selects the request encoding: ``"json"`` posts the trace document,
    ``"npt"`` packs each window once into the binary container and
    exercises the server's zero-copy estimate route.
    """
    return asyncio.run(
        _run_loadgen_async(
            host, port, model, list(windows), rps, duration_s,
            concurrency, timeout, warmup, payload,
        )
    )


def validate_loadgen(payload: dict) -> None:
    """Raise ``ValueError`` unless ``payload`` is a well-formed report."""
    if not isinstance(payload, dict):
        raise ValueError("loadgen payload must be a JSON object")
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"unexpected schema {payload.get('schema')!r}; want {SCHEMA!r}"
        )
    check_fields(
        payload,
        (
            ("model", str),
            ("target_rps", (int, float)),
            ("duration_s", (int, float)),
            ("concurrency", int),
            ("requests", int),
            ("completed", int),
            ("throughput_rps", (int, float)),
            ("status_counts", dict),
            ("errors_5xx", int),
            ("transport_errors", int),
            ("latency_ms", dict),
        ),
        context="loadgen report",
    )
    check_fields(
        payload["latency_ms"],
        tuple((key, (int, float)) for key in ("p50", "p95", "p99", "mean", "max")),
        context="latency summary",
    )


def format_report(payload: dict) -> str:
    """Human-readable one-screen rendering of a loadgen report."""
    latency = payload["latency_ms"]
    statuses = ", ".join(
        f"{status}: {count}"
        for status, count in sorted(payload["status_counts"].items())
    ) or "none"
    return "\n".join(
        [
            f"model {payload['model']}: {payload['completed']}/"
            f"{payload['requests']} responses in {payload['duration_s']}s "
            f"({payload['throughput_rps']} rps achieved, "
            f"{payload['target_rps']} targeted)",
            f"status counts: {statuses}",
            f"latency ms: p50 {latency['p50']}  p95 {latency['p95']}  "
            f"p99 {latency['p99']}  mean {latency['mean']}  "
            f"max {latency['max']}",
            f"5xx: {payload['errors_5xx']}  transport errors: "
            f"{payload['transport_errors']}",
        ]
    )
