"""Load generator for the estimation server (``psmgen loadgen``).

Replays functional-trace windows against ``POST /v1/estimate`` at a
target request rate and reports throughput and latency percentiles —
the serving-path counterpart of ``psmgen bench --micro``: a schema-
versioned JSON report (``psmgen-loadgen/v1``) that CI can archive and
operators can diff across deployments.

The generator is open-loop with a concurrency cap: requests are
launched on a fixed ``1/rps`` tick schedule regardless of completions
(so the server sees the offered load, not a lock-stepped echo of its
own latency), but at most ``concurrency`` requests are in flight —
excess ticks queue on the semaphore and the *achieved* throughput in
the report exposes the gap.  The HTTP client is hand-rolled over
``asyncio.open_connection``; no third-party dependencies.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..microbench import check_fields

#: Identifier of the report layout (bump on breaking changes).
SCHEMA = "psmgen-loadgen/v1"

#: Reported latency percentiles.
PERCENTILES = (50.0, 95.0, 99.0)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (linear interpolation, 0 <= q <= 100)."""
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * q / 100.0
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return float(ordered[low] * (1.0 - fraction) + ordered[high] * fraction)


def latency_summary(samples_s: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99/mean/max of a latency sample, in milliseconds."""
    if not samples_s:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    ms = [s * 1e3 for s in samples_s]
    summary = {
        f"p{int(q)}": round(percentile(ms, q), 3) for q in PERCENTILES
    }
    summary["mean"] = round(sum(ms) / len(ms), 3)
    summary["max"] = round(max(ms), 3)
    return summary


async def http_request_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[dict] = None,
    timeout: float = 10.0,
) -> Tuple[int, Dict[str, str], bytes]:
    """One HTTP/1.1 request over a fresh connection (stdlib asyncio).

    Returns ``(status, headers, body)``.  Matches the server's
    one-request-per-connection discipline.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        body = (
            json.dumps(payload).encode("utf-8") if payload is not None else b""
        )
        head = [
            f"{method} {path} HTTP/1.1",
            f"Host: {host}:{port}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await asyncio.wait_for(writer.drain(), timeout)

        async def _read_response():
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split(" ", 2)
            status = int(parts[1])
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0"))
            data = await reader.readexactly(length) if length else b""
            return status, headers, data

        return await asyncio.wait_for(_read_response(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass


async def _run_loadgen_async(
    host: str,
    port: int,
    model: str,
    windows: Sequence[dict],
    rps: float,
    duration_s: float,
    concurrency: int,
    timeout: float,
) -> dict:
    """The load loop behind :func:`run_loadgen`."""
    if rps <= 0:
        raise ValueError("rps must be positive")
    if not windows:
        raise ValueError("loadgen needs at least one trace window")
    semaphore = asyncio.Semaphore(max(int(concurrency), 1))
    latencies: List[float] = []
    status_counts: Dict[str, int] = {}
    transport_errors = 0
    launched = 0
    lock = asyncio.Lock()

    async def _one(index: int) -> None:
        nonlocal transport_errors
        window = windows[index % len(windows)]
        async with semaphore:
            start = time.perf_counter()
            try:
                status, _headers, _body = await http_request_json(
                    host,
                    port,
                    "POST",
                    "/v1/estimate",
                    {"model": model, "trace": window},
                    timeout=timeout,
                )
            except (OSError, asyncio.TimeoutError, ValueError):
                async with lock:
                    transport_errors += 1
                return
            elapsed = time.perf_counter() - start
            async with lock:
                latencies.append(elapsed)
                key = str(status)
                status_counts[key] = status_counts.get(key, 0) + 1

    interval = 1.0 / rps
    loop = asyncio.get_running_loop()
    t0 = loop.time()
    tasks: List[asyncio.Task] = []
    while loop.time() - t0 < duration_s:
        tasks.append(loop.create_task(_one(launched)))
        launched += 1
        next_tick = t0 + launched * interval
        delay = next_tick - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
    if tasks:
        await asyncio.gather(*tasks)
    elapsed = loop.time() - t0
    completed = len(latencies)
    errors_5xx = sum(
        count
        for status, count in status_counts.items()
        if status.startswith("5")
    )
    return {
        "schema": SCHEMA,
        "model": model,
        "target_rps": float(rps),
        "duration_s": round(elapsed, 3),
        "concurrency": int(concurrency),
        "window_instants": _window_instants(windows[0]),
        "windows": len(windows),
        "requests": launched,
        "completed": completed,
        "throughput_rps": round(completed / elapsed, 3) if elapsed else 0.0,
        "status_counts": status_counts,
        "errors_5xx": errors_5xx,
        "transport_errors": transport_errors,
        "latency_ms": latency_summary(latencies),
    }


def _window_instants(window: dict) -> int:
    columns = window.get("columns") or {}
    for values in columns.values():
        return len(values)
    return 0


def run_loadgen(
    host: str,
    port: int,
    model: str,
    windows: Sequence[dict],
    rps: float = 20.0,
    duration_s: float = 5.0,
    concurrency: int = 8,
    timeout: float = 10.0,
) -> dict:
    """Drive the server at ``rps`` for ``duration_s``; the v1 report.

    ``windows`` are pre-serialised functional-trace documents
    (:func:`~repro.traces.io.functional_trace_to_json`), replayed
    round-robin.
    """
    return asyncio.run(
        _run_loadgen_async(
            host, port, model, list(windows), rps, duration_s,
            concurrency, timeout,
        )
    )


def validate_loadgen(payload: dict) -> None:
    """Raise ``ValueError`` unless ``payload`` is a well-formed report."""
    if not isinstance(payload, dict):
        raise ValueError("loadgen payload must be a JSON object")
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"unexpected schema {payload.get('schema')!r}; want {SCHEMA!r}"
        )
    check_fields(
        payload,
        (
            ("model", str),
            ("target_rps", (int, float)),
            ("duration_s", (int, float)),
            ("concurrency", int),
            ("requests", int),
            ("completed", int),
            ("throughput_rps", (int, float)),
            ("status_counts", dict),
            ("errors_5xx", int),
            ("transport_errors", int),
            ("latency_ms", dict),
        ),
        context="loadgen report",
    )
    check_fields(
        payload["latency_ms"],
        tuple((key, (int, float)) for key in ("p50", "p95", "p99", "mean", "max")),
        context="latency summary",
    )


def format_report(payload: dict) -> str:
    """Human-readable one-screen rendering of a loadgen report."""
    latency = payload["latency_ms"]
    statuses = ", ".join(
        f"{status}: {count}"
        for status, count in sorted(payload["status_counts"].items())
    ) or "none"
    return "\n".join(
        [
            f"model {payload['model']}: {payload['completed']}/"
            f"{payload['requests']} responses in {payload['duration_s']}s "
            f"({payload['throughput_rps']} rps achieved, "
            f"{payload['target_rps']} targeted)",
            f"status counts: {statuses}",
            f"latency ms: p50 {latency['p50']}  p95 {latency['p95']}  "
            f"p99 {latency['p99']}  mean {latency['mean']}  "
            f"max {latency['max']}",
            f"5xx: {payload['errors_5xx']}  transport errors: "
            f"{payload['transport_errors']}",
        ]
    )
