"""Load generator for the estimation server (``psmgen loadgen``).

Replays functional-trace windows against ``POST /v1/estimate`` at a
target request rate and reports throughput and latency percentiles —
the serving-path counterpart of ``psmgen bench --micro``: a schema-
versioned JSON report (``psmgen-loadgen/v1``) that CI can archive and
operators can diff across deployments.

The generator is open-loop with a concurrency cap: requests are
launched on a fixed ``1/rps`` tick schedule regardless of completions
(so the server sees the offered load, not a lock-stepped echo of its
own latency), but at most ``concurrency`` requests are in flight —
excess ticks queue on the semaphore and the *achieved* throughput in
the report exposes the gap.  The HTTP client is hand-rolled over
``asyncio.open_connection``; no third-party dependencies.
"""

from __future__ import annotations

import asyncio
import gc
import json
import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..microbench import check_fields

#: Identifier of the report layout (bump on breaking changes).
SCHEMA = "psmgen-loadgen/v1"

#: Reported latency percentiles.
PERCENTILES = (50.0, 95.0, 99.0)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (linear interpolation, 0 <= q <= 100)."""
    if not values:
        raise ValueError("percentile of an empty sample")
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (len(ordered) - 1) * q / 100.0
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return float(ordered[low] * (1.0 - fraction) + ordered[high] * fraction)


def latency_summary(samples_s: Sequence[float]) -> Dict[str, float]:
    """p50/p95/p99/mean/max of a latency sample, in milliseconds."""
    if not samples_s:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0, "mean": 0.0, "max": 0.0}
    ms = [s * 1e3 for s in samples_s]
    summary = {
        f"p{int(q)}": round(percentile(ms, q), 3) for q in PERCENTILES
    }
    summary["mean"] = round(sum(ms) / len(ms), 3)
    summary["max"] = round(max(ms), 3)
    return summary


async def http_request_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[dict] = None,
    timeout: float = 10.0,
) -> Tuple[int, Dict[str, str], bytes]:
    """One JSON HTTP/1.1 request over a fresh connection."""
    body = (
        json.dumps(payload).encode("utf-8") if payload is not None else b""
    )
    return await http_request_raw(
        host, port, method, path, body, "application/json", timeout
    )


async def http_request_raw(
    host: str,
    port: int,
    method: str,
    path: str,
    body: bytes,
    content_type: str = "application/json",
    timeout: float = 10.0,
) -> Tuple[int, Dict[str, str], bytes]:
    """One HTTP/1.1 request with a pre-encoded body (stdlib asyncio).

    Returns ``(status, headers, body)``.  Matches the server's
    one-request-per-connection discipline.
    """
    reader, writer = await asyncio.wait_for(
        asyncio.open_connection(host, port), timeout
    )
    try:
        head = [
            f"{method} {path} HTTP/1.1",
            f"Host: {host}:{port}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        writer.write(body)
        await asyncio.wait_for(writer.drain(), timeout)

        async def _read_response():
            status_line = await reader.readline()
            parts = status_line.decode("latin-1").split(" ", 2)
            status = int(parts[1])
            headers: Dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0"))
            data = await reader.readexactly(length) if length else b""
            return status, headers, data

        return await asyncio.wait_for(_read_response(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:
            pass


#: Request encodings the load generator can replay.
PAYLOADS = ("json", "npt")


def _encode_request_bodies(
    model: str, windows: Sequence[dict], payload: str
) -> Tuple[str, str, List[bytes]]:
    """Pre-encoded ``(path, content_type, bodies)`` for the load loop.

    Encoding once up front keeps per-request client cost flat: the JSON
    mode serialises each ``{"model", "trace"}`` document a single time,
    the ``npt`` mode packs each window into the binary container
    (``application/x-psmgen-npt``, model passed via the query string) so
    the timed loop only ships bytes.
    """
    if payload == "json":
        bodies = [
            json.dumps({"model": model, "trace": window}).encode("utf-8")
            for window in windows
        ]
        return "/v1/estimate", "application/json", bodies
    if payload == "npt":
        import tempfile
        from pathlib import Path
        from urllib.parse import quote

        from ..traces.io import (
            functional_trace_from_json,
            save_functional_bin,
        )

        bodies = []
        with tempfile.TemporaryDirectory() as tmp:
            for index, window in enumerate(windows):
                path = Path(tmp) / f"window{index}.npt"
                save_functional_bin(
                    functional_trace_from_json(window), path
                )
                bodies.append(path.read_bytes())
        return (
            f"/v1/estimate?model={quote(model)}",
            "application/x-psmgen-npt",
            bodies,
        )
    raise ValueError(f"unknown payload {payload!r}; want one of {PAYLOADS}")


class _Lane:
    """One persistent keep-alive connection of the load loop.

    Opening a TCP connection per request costs both sides more loop CPU
    than the estimate itself once the compiled kernel is in play, so
    each concurrency lane keeps a single HTTP/1.1 connection open and
    replays requests over it.  A stale connection (server restarted,
    idle drop) is re-opened once; timeouts drop the connection and
    propagate.
    """

    def __init__(self, host: str, port: int, timeout: float) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    def _drop(self) -> None:
        if self._writer is not None:
            try:
                self._writer.close()
            except Exception:
                pass
        self._reader = None
        self._writer = None

    async def close(self) -> None:
        writer = self._writer
        self._drop()
        if writer is not None:
            try:
                await writer.wait_closed()
            except Exception:
                pass

    async def request(
        self, method: str, path: str, body: bytes, content_type: str
    ) -> Tuple[int, Dict[str, str], bytes]:
        for attempt in (0, 1):
            fresh = self._writer is None
            try:
                return await asyncio.wait_for(
                    self._attempt(method, path, body, content_type),
                    self.timeout,
                )
            except asyncio.TimeoutError:
                self._drop()
                raise
            except (OSError, asyncio.IncompleteReadError):
                self._drop()
                if fresh or attempt:
                    raise
        raise OSError("unreachable")

    async def _attempt(
        self, method: str, path: str, body: bytes, content_type: str
    ) -> Tuple[int, Dict[str, str], bytes]:
        if self._writer is None:
            self._reader, self._writer = await asyncio.open_connection(
                self.host, self.port
            )
        head = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
        ]
        self._writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1")
        )
        self._writer.write(body)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise asyncio.IncompleteReadError(b"", None)
        status = int(status_line.decode("latin-1").split(" ", 2)[1])
        headers: Dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0"))
        data = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            self._drop()
        return status, headers, data


async def _run_loadgen_async(
    host: str,
    port: int,
    model: str,
    windows: Sequence[dict],
    rps: float,
    duration_s: float,
    concurrency: int,
    timeout: float,
    warmup: int = 0,
    payload: str = "json",
    seed: Optional[int] = None,
    samples_out: Optional[List[Tuple[float, str, float]]] = None,
) -> dict:
    """The load loop behind :func:`run_loadgen`.

    When ``samples_out`` is given, every completed request appends a
    ``(start_perf_counter, worker_tag, elapsed_s)`` row — the elastic
    bench uses these to split a joining worker's first request from its
    steady state.
    """
    if rps <= 0:
        raise ValueError("rps must be positive")
    if not windows:
        raise ValueError("loadgen needs at least one trace window")
    path, content_type, bodies = _encode_request_bodies(
        model, windows, payload
    )
    # Window selection: sequential round-robin by default; with a seed,
    # a seeded RNG draws the window per request — runs with the same
    # seed replay the identical request sequence (windows are sampled
    # in launch order, which is deterministic).
    rng = random.Random(seed) if seed is not None else None
    lanes = [
        _Lane(host, port, timeout)
        for _ in range(max(int(concurrency), 1))
    ]
    semaphore = asyncio.Semaphore(max(int(concurrency), 1))
    latencies: List[float] = []
    worker_latencies: Dict[str, List[float]] = {}
    status_counts: Dict[str, int] = {}
    transport_errors = 0
    launched = 0
    lock = asyncio.Lock()

    # Warm-up window: the first requests pay one-off server costs
    # (bundle load, compile, import caches) that would otherwise skew
    # the max/p99 columns; they run before the timed loop and are
    # excluded from every latency statistic.
    warmup_sent = 0
    warmup_errors = 0
    for index in range(max(int(warmup), 0)):
        warmup_sent += 1
        try:
            await lanes[0].request(
                "POST", path, bodies[index % len(bodies)], content_type
            )
        except (OSError, asyncio.TimeoutError, ValueError):
            warmup_errors += 1

    async def _one(body: bytes) -> None:
        nonlocal transport_errors
        async with semaphore:
            lane = lanes.pop()
            start = time.perf_counter()
            try:
                status, headers, _body = await lane.request(
                    "POST", path, body, content_type
                )
            except (OSError, asyncio.TimeoutError, ValueError):
                async with lock:
                    transport_errors += 1
                return
            finally:
                lanes.append(lane)
            elapsed = time.perf_counter() - start
            # Cluster workers self-tag responses; grouping by the tag
            # yields per-worker latency percentiles from one client run.
            worker = headers.get("x-psm-worker")
            async with lock:
                latencies.append(elapsed)
                if worker:
                    worker_latencies.setdefault(worker, []).append(elapsed)
                if samples_out is not None:
                    samples_out.append((start, worker or "", elapsed))
                key = str(status)
                status_counts[key] = status_counts.get(key, 0) + 1

    interval = 1.0 / rps
    loop = asyncio.get_running_loop()
    # Defer cyclic GC for the timed window: a mid-run collection pause
    # lands in some request's latency sample and pollutes the tail
    # percentiles with client-side noise.  The window is seconds long
    # and the loop allocates modestly, so the deferral is safe.
    gc.collect()
    gc_was_enabled = gc.isenabled()
    gc.disable()
    t0 = loop.time()
    tasks: List[asyncio.Task] = []
    try:
        while loop.time() - t0 < duration_s:
            choice = (
                rng.randrange(len(bodies))
                if rng is not None
                else launched % len(bodies)
            )
            tasks.append(loop.create_task(_one(bodies[choice])))
            launched += 1
            next_tick = t0 + launched * interval
            delay = next_tick - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
        if tasks:
            await asyncio.gather(*tasks)
        elapsed = loop.time() - t0
    finally:
        if gc_was_enabled:
            gc.enable()
    for lane in lanes:
        await lane.close()
    completed = len(latencies)
    errors_5xx = sum(
        count
        for status, count in status_counts.items()
        if status.startswith("5")
    )
    per_worker = {
        worker: {
            "completed": len(samples),
            "latency_ms": latency_summary(samples),
        }
        for worker, samples in sorted(worker_latencies.items())
    }
    return {
        "schema": SCHEMA,
        "model": model,
        "target_rps": float(rps),
        "duration_s": round(elapsed, 3),
        "concurrency": int(concurrency),
        "window_instants": _window_instants(windows[0]),
        "windows": len(windows),
        "requests": launched,
        "completed": completed,
        "payload": payload,
        "warmup_requests": warmup_sent,
        "warmup_errors": warmup_errors,
        "throughput_rps": round(completed / elapsed, 3) if elapsed else 0.0,
        "status_counts": status_counts,
        "errors_5xx": errors_5xx,
        "transport_errors": transport_errors,
        "latency_ms": latency_summary(latencies),
        "seed": seed,
        "workers": per_worker,
    }


def _window_instants(window: dict) -> int:
    columns = window.get("columns") or {}
    for values in columns.values():
        return len(values)
    return 0


def run_loadgen(
    host: str,
    port: int,
    model: str,
    windows: Sequence[dict],
    rps: float = 20.0,
    duration_s: float = 5.0,
    concurrency: int = 8,
    timeout: float = 10.0,
    warmup: int = 0,
    payload: str = "json",
    seed: Optional[int] = None,
) -> dict:
    """Drive the server at ``rps`` for ``duration_s``; the v1 report.

    ``windows`` are pre-serialised functional-trace documents
    (:func:`~repro.traces.io.functional_trace_to_json`), replayed
    round-robin — or sampled by a seeded RNG when ``seed`` is given, so
    two runs with the same seed offer the identical request sequence.
    ``warmup`` requests are sent (and awaited) before the timed window
    and excluded from the latency statistics — the report still records
    how many ran via ``warmup_requests``.  ``payload`` selects the
    request encoding: ``"json"`` posts the trace document, ``"npt"``
    packs each window once into the binary container and exercises the
    server's zero-copy estimate route.  Responses tagged with
    ``X-Psm-Worker`` (cluster mode) are grouped into a per-worker
    ``workers`` section with individual latency summaries.
    """
    return asyncio.run(
        _run_loadgen_async(
            host, port, model, list(windows), rps, duration_s,
            concurrency, timeout, warmup, payload, seed,
        )
    )


#: Identifier of the cluster scaling-report layout.
CLUSTER_SCHEMA = "psmgen-loadgen-cluster/v1"


def _spawn_serve(models_dir, workers: int, serve_args: Sequence[str]):
    """Start ``psmgen serve --workers N`` as a subprocess; ``(proc, port)``.

    The server prints its bound address (``http://host:port``) on one
    flushed banner line; we scan stdout for it with a deadline instead
    of blocking, so a worker that dies during startup surfaces as an
    error rather than a hang.
    """
    import re
    import select
    import subprocess
    import sys

    command = [
        sys.executable,
        "-c",
        "from repro.cli import main; raise SystemExit(main())",
        "serve",
        "--models-dir",
        str(models_dir),
        "--port",
        "0",
        "--workers",
        str(workers),
        *serve_args,
    ]
    proc = subprocess.Popen(
        command,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + 120.0
    banner = re.compile(r"http://[\w.\-]+:(\d+)")
    collected = []
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise RuntimeError(
                f"psmgen serve exited {proc.returncode} during startup:\n"
                + "".join(collected)
            )
        readable, _, _ = select.select([proc.stdout], [], [], 0.25)
        if not readable:
            continue
        line = proc.stdout.readline()
        collected.append(line)
        match = banner.search(line)
        if match:
            return proc, int(match.group(1))
    proc.kill()
    raise TimeoutError(
        "psmgen serve never printed its address:\n" + "".join(collected)
    )


def run_scaling_bench(
    models_dir,
    model: str,
    windows: Sequence[dict],
    worker_counts: Sequence[int],
    rps_per_worker: float,
    duration_s: float = 5.0,
    concurrency: int = 8,
    timeout: float = 10.0,
    warmup: int = 0,
    payload: str = "json",
    seed: Optional[int] = None,
    serve_args: Sequence[str] = (),
) -> dict:
    """Throughput-scaling sweep: one ``psmgen serve --workers N``
    subprocess per worker count, loaded at ``N * rps_per_worker``.

    Each server is stopped with SIGTERM after its run — exercising the
    graceful drain path — and must exit 0 (recorded per run as
    ``serve_exit``).  The returned ``psmgen-loadgen-cluster/v1`` section
    records per-run aggregate and per-worker latency summaries plus the
    measured speedup over the single-worker baseline.  ``host_cpus`` is
    part of the record because shared-nothing workers scale with
    physical cores: on a 1-core host every worker timeshares the same
    CPU and throughput stays flat by construction.
    """
    import os
    import signal as signal_module

    runs: List[dict] = []
    for workers in worker_counts:
        proc, port = _spawn_serve(models_dir, workers, serve_args)
        try:
            report = run_loadgen(
                "127.0.0.1",
                port,
                model,
                windows,
                rps=rps_per_worker * workers,
                duration_s=duration_s,
                concurrency=max(int(concurrency), workers),
                timeout=timeout,
                warmup=warmup,
                payload=payload,
                seed=seed,
            )
        finally:
            proc.send_signal(signal_module.SIGTERM)
            try:
                exit_code = proc.wait(timeout=60.0)
            except Exception:
                proc.kill()
                exit_code = proc.wait(timeout=10.0)
        runs.append(
            {
                "workers": workers,
                "target_rps": report["target_rps"],
                "throughput_rps": report["throughput_rps"],
                "completed": report["completed"],
                "requests": report["requests"],
                "errors_5xx": report["errors_5xx"],
                "transport_errors": report["transport_errors"],
                "latency_ms": report["latency_ms"],
                "per_worker": report.get("workers", {}),
                "serve_exit": exit_code,
            }
        )
    baseline = next(
        (run for run in runs if run["workers"] == 1), runs[0]
    )
    best = max(runs, key=lambda run: run["throughput_rps"])
    speedup = (
        best["throughput_rps"] / baseline["throughput_rps"]
        if baseline["throughput_rps"]
        else 0.0
    )
    return {
        "schema": CLUSTER_SCHEMA,
        "model": model,
        "payload": payload,
        "seed": seed,
        "rps_per_worker": float(rps_per_worker),
        "duration_s": float(duration_s),
        "host_cpus": os.cpu_count(),
        "runs": runs,
        "speedup_vs_single": round(speedup, 3),
        "best_workers": best["workers"],
    }


#: Identifier of the elastic (autoscale) report layout.
ELASTIC_SCHEMA = "psmgen-loadgen-elastic/v1"


async def _run_elastic_async(
    host: str,
    port: int,
    model: str,
    windows: Sequence[dict],
    min_workers: int,
    max_workers: int,
    rps: float,
    duration_s: float,
    concurrency: int,
    timeout: float,
    warmup: int,
    payload: str,
    seed: Optional[int],
    settle_s: float,
) -> dict:
    """Drive one elastic cluster through a grow/drain cycle."""
    from .metrics import find_sample, parse_prometheus

    loop = asyncio.get_running_loop()
    t0 = loop.time()
    trajectory: List[dict] = []
    stop = asyncio.Event()

    async def _poll_ready() -> None:
        """Sample ``/healthz`` ready-worker counts every 250 ms."""
        while not stop.is_set():
            try:
                _status, _headers, body = await http_request_json(
                    host, port, "GET", "/healthz", timeout=5.0
                )
                doc = json.loads(body.decode("utf-8"))
                trajectory.append(
                    {
                        "t": round(loop.time() - t0, 3),
                        "ready": int(doc.get("ready", 0)),
                    }
                )
            except (OSError, asyncio.TimeoutError, ValueError):
                pass
            try:
                await asyncio.wait_for(stop.wait(), 0.25)
            except asyncio.TimeoutError:
                pass

    poller = loop.create_task(_poll_ready())
    samples: List[Tuple[float, str, float]] = []
    try:
        report = await _run_loadgen_async(
            host, port, model, list(windows), rps, duration_s,
            concurrency, timeout, warmup, payload, seed,
            samples_out=samples,
        )
        load_end = loop.time() - t0

        # Convergence down: the autoscaler must drain the pool back to
        # the floor once traffic stops (hot set decays, idle window
        # elapses) — poll the trajectory until it does or settle_s runs
        # out.
        drained_at: Optional[float] = None
        deadline = loop.time() + max(float(settle_s), 0.0)
        while loop.time() < deadline:
            await asyncio.sleep(0.25)
            if trajectory and trajectory[-1]["ready"] <= min_workers:
                drained_at = trajectory[-1]["t"]
                break

        # Negative-cache probe: repeated lookups of a model that does
        # not exist must start answering from the router cache.
        probe_requests = 4
        probe_hits = 0
        for _ in range(probe_requests):
            try:
                _status, headers, _body = await http_request_json(
                    host,
                    port,
                    "POST",
                    "/v1/estimate",
                    {"model": "__elastic_bench_absent__", "trace": {}},
                    timeout=5.0,
                )
                if headers.get("x-psm-negcache") == "hit":
                    probe_hits += 1
            except (OSError, asyncio.TimeoutError, ValueError):
                pass

        events: List[dict] = []
        try:
            _status, _headers, body = await http_request_json(
                host, port, "GET", "/healthz", timeout=5.0
            )
            doc = json.loads(body.decode("utf-8"))
            events = (doc.get("autoscaler") or {}).get("events", [])
        except (OSError, asyncio.TimeoutError, ValueError):
            pass
        counters: Dict[str, float] = {}
        try:
            _status, _headers, body = await http_request_raw(
                host, port, "GET", "/metrics", b"", timeout=10.0
            )
            metric_samples = parse_prometheus(body.decode("utf-8"))
            for key, name, labels in (
                ("autoscale_up", "psmgen_autoscale_events_total",
                 {"direction": "up"}),
                ("autoscale_down", "psmgen_autoscale_events_total",
                 {"direction": "down"}),
                ("prewarm_models", "psmgen_prewarm_models_total", {}),
                ("prewarm_failures", "psmgen_prewarm_failures_total", {}),
                ("negcache_hits", "psmgen_negcache_hits_total", {}),
                ("negcache_misses", "psmgen_negcache_misses_total", {}),
            ):
                value = find_sample(metric_samples, name, **labels)
                counters[key] = value if value is not None else 0.0
        except (OSError, asyncio.TimeoutError, ValueError):
            pass
    finally:
        stop.set()
        await poller

    # Cold-start split for workers that joined mid-run: their first
    # request (post-pre-warm) against their own steady state.
    initial = {f"w{index}" for index in range(min_workers)}
    joined_rows: Dict[str, List[Tuple[float, float]]] = {}
    for start, worker, elapsed in samples:
        if worker and worker not in initial:
            joined_rows.setdefault(worker, []).append((start, elapsed))
    joined_workers = {}
    for worker, rows in sorted(joined_rows.items()):
        rows.sort()
        first_ms = round(rows[0][1] * 1e3, 3)
        steady = latency_summary([elapsed for _, elapsed in rows[1:]])
        joined_workers[worker] = {
            "requests": len(rows),
            "first_request_ms": first_ms,
            "steady_latency_ms": steady,
            "first_vs_steady_p95": (
                round(first_ms / steady["p95"], 3)
                if steady["p95"] else None
            ),
        }

    max_ready = max(
        (point["ready"] for point in trajectory), default=min_workers
    )
    scale_up_at = next(
        (
            point["t"] for point in trajectory
            if point["ready"] > min_workers
        ),
        None,
    )
    return {
        "schema": ELASTIC_SCHEMA,
        "model": model,
        "min_workers": int(min_workers),
        "max_workers": int(max_workers),
        "target_rps": float(rps),
        "duration_s": float(duration_s),
        "payload": payload,
        "seed": seed,
        "load": {
            "requests": report["requests"],
            "completed": report["completed"],
            "throughput_rps": report["throughput_rps"],
            "errors_5xx": report["errors_5xx"],
            "transport_errors": report["transport_errors"],
            "status_counts": report["status_counts"],
            "latency_ms": report["latency_ms"],
            "per_worker": report.get("workers", {}),
        },
        "max_ready": max_ready,
        "scaled_up": max_ready > min_workers,
        "scale_up_s": scale_up_at,
        "drained_down": drained_at is not None,
        "drain_s": (
            round(drained_at - load_end, 3)
            if drained_at is not None and drained_at >= load_end
            else (0.0 if drained_at is not None else None)
        ),
        "trajectory": trajectory,
        "events": events,
        "counters": counters,
        "negcache_probe": {
            "requests": probe_requests,
            "hits": probe_hits,
        },
        "joined_workers": joined_workers,
    }


def run_elastic_bench(
    models_dir,
    model: str,
    windows: Sequence[dict],
    min_workers: int = 1,
    max_workers: int = 3,
    rps: float = 80.0,
    duration_s: float = 6.0,
    concurrency: int = 16,
    timeout: float = 10.0,
    warmup: int = 0,
    payload: str = "json",
    seed: Optional[int] = None,
    serve_args: Sequence[str] = (),
    settle_s: float = 20.0,
) -> dict:
    """Autoscale convergence bench: the ``elastic`` report section.

    Starts one ``psmgen serve`` subprocess at ``min_workers`` with an
    elastic ceiling of ``max_workers`` and deliberately fast control-
    loop knobs (200 ms ticks, 1 s cooldown, 2 s idle-drain, a low hot
    threshold), drives it above the scale-up threshold for
    ``duration_s``, then waits up to ``settle_s`` for the pool to drain
    back to the floor.  The ``psmgen-loadgen-elastic/v1`` document
    records the ready-worker trajectory, the autoscaler's own event
    log, pre-warm/negcache/autoscale counters from ``/metrics``, a
    negative-cache probe, and — for every worker that joined mid-run —
    its first-request latency against its steady-state summary (the
    pre-warm cold-start measurement).  ``host_cpus`` is recorded
    because convergence *speed* depends on real cores; on a 1-CPU host
    the workers timeshare and only queueing, not throughput, improves.
    """
    import os
    import signal as signal_module

    elastic_args = [
        "--min-workers", str(int(min_workers)),
        "--max-workers", str(int(max_workers)),
        "--scale-interval", "0.2",
        "--scale-cooldown", "1.0",
        "--idle-drain", "2.0",
        "--scale-up-depth", "1.5",
        "--scale-up-ticks", "2",
        "--hot-rps", "5",
        *serve_args,
    ]
    proc, port = _spawn_serve(models_dir, min_workers, elastic_args)
    try:
        document = asyncio.run(
            _run_elastic_async(
                "127.0.0.1", port, model, windows,
                int(min_workers), int(max_workers),
                rps, duration_s, concurrency, timeout, warmup,
                payload, seed, settle_s,
            )
        )
    finally:
        proc.send_signal(signal_module.SIGTERM)
        try:
            exit_code = proc.wait(timeout=60.0)
        except Exception:
            proc.kill()
            exit_code = proc.wait(timeout=10.0)
    document["serve_exit"] = exit_code
    document["host_cpus"] = os.cpu_count()
    return document


def validate_elastic(payload: dict) -> None:
    """Raise ``ValueError`` unless ``payload`` is a well-formed elastic
    report."""
    if not isinstance(payload, dict):
        raise ValueError("elastic payload must be a JSON object")
    if payload.get("schema") != ELASTIC_SCHEMA:
        raise ValueError(
            f"unexpected schema {payload.get('schema')!r}; "
            f"want {ELASTIC_SCHEMA!r}"
        )
    check_fields(
        payload,
        (
            ("model", str),
            ("min_workers", int),
            ("max_workers", int),
            ("target_rps", (int, float)),
            ("duration_s", (int, float)),
            ("load", dict),
            ("max_ready", int),
            ("scaled_up", bool),
            ("drained_down", bool),
            ("trajectory", list),
            ("events", list),
            ("counters", dict),
            ("negcache_probe", dict),
            ("joined_workers", dict),
        ),
        context="elastic report",
    )
    check_fields(
        payload["load"],
        (
            ("requests", int),
            ("completed", int),
            ("throughput_rps", (int, float)),
            ("errors_5xx", int),
            ("latency_ms", dict),
        ),
        context="elastic load section",
    )


def validate_loadgen(payload: dict) -> None:
    """Raise ``ValueError`` unless ``payload`` is a well-formed report."""
    if not isinstance(payload, dict):
        raise ValueError("loadgen payload must be a JSON object")
    if payload.get("schema") != SCHEMA:
        raise ValueError(
            f"unexpected schema {payload.get('schema')!r}; want {SCHEMA!r}"
        )
    check_fields(
        payload,
        (
            ("model", str),
            ("target_rps", (int, float)),
            ("duration_s", (int, float)),
            ("concurrency", int),
            ("requests", int),
            ("completed", int),
            ("throughput_rps", (int, float)),
            ("status_counts", dict),
            ("errors_5xx", int),
            ("transport_errors", int),
            ("latency_ms", dict),
        ),
        context="loadgen report",
    )
    check_fields(
        payload["latency_ms"],
        tuple((key, (int, float)) for key in ("p50", "p95", "p99", "mean", "max")),
        context="latency summary",
    )


def format_report(payload: dict) -> str:
    """Human-readable one-screen rendering of a loadgen report."""
    latency = payload["latency_ms"]
    statuses = ", ".join(
        f"{status}: {count}"
        for status, count in sorted(payload["status_counts"].items())
    ) or "none"
    return "\n".join(
        [
            f"model {payload['model']}: {payload['completed']}/"
            f"{payload['requests']} responses in {payload['duration_s']}s "
            f"({payload['throughput_rps']} rps achieved, "
            f"{payload['target_rps']} targeted)",
            f"status counts: {statuses}",
            f"latency ms: p50 {latency['p50']}  p95 {latency['p95']}  "
            f"p99 {latency['p99']}  mean {latency['mean']}  "
            f"max {latency['max']}",
            f"5xx: {payload['errors_5xx']}  transport errors: "
            f"{payload['transport_errors']}",
        ]
    )
