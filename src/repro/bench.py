"""Benchmark harness regenerating the paper's Tables I-III.

Every table of the evaluation section has one function here returning
structured rows; the ``benchmarks/`` pytest-benchmark suites, the CLI and
the examples all drive these.  Trace lengths are scaled down from the
paper's 500k instants (pure-Python cycle simulation); set the
``REPRO_SCALE`` environment variable to multiply them.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .core.metrics import mre
from .core.pipeline import PsmFlow
from .core.psm import reset_state_ids, total_states, total_transitions
from .parallel import parallel_map
from .power.estimator import PowerSimulationResult, run_power_simulation
from .power.synthesis import synthesize
from .sysc.cosim import measure_overhead
from .testbench import BENCHMARKS, BenchmarkSpec

#: Default long-TS length (the paper uses 500,000; scaled for Python).
DEFAULT_LONG_CYCLES = 12000


def scale_factor() -> float:
    """The ``REPRO_SCALE`` multiplier (default 1.0)."""
    try:
        return float(os.environ.get("REPRO_SCALE", "1"))
    except ValueError:
        return 1.0


def long_cycles() -> int:
    """Scaled long-TS length."""
    return max(int(DEFAULT_LONG_CYCLES * scale_factor()), 1000)


# ----------------------------------------------------------------------
# Table I — benchmark characteristics
# ----------------------------------------------------------------------
def table1_rows() -> List[dict]:
    """Characteristics of the benchmarks (paper Table I)."""
    rows = []
    for spec in BENCHMARKS.values():
        report = synthesize(spec.module_class())
        rows.append(
            {
                "ip": report.name,
                "lines": report.lines,
                "pis": report.pi_bits,
                "pos": report.po_bits,
                "syn_time": report.synthesis_time,
                "memory_elements": report.memory_elements,
            }
        )
    return rows


# ----------------------------------------------------------------------
# Table II — characteristics of the generated PSMs
# ----------------------------------------------------------------------
@dataclass
class FittedBenchmark:
    """A fitted flow plus its reference traces (shared across tables)."""

    spec: BenchmarkSpec
    flow: PsmFlow
    short_ref: PowerSimulationResult
    ts: int
    px_time: float
    train_mre: float


def fit_benchmark(
    name: str,
    stimulus: Optional[list] = None,
    jobs: int = 1,
    seed: Optional[int] = None,
) -> FittedBenchmark:
    """Run the full flow for one IP on its short-TS (or given) stimulus.

    ``jobs`` sets the flow's internal parallelism degree (see
    :class:`~repro.core.pipeline.FlowConfig`); the fitted model is
    bit-identical regardless of the value.  ``seed`` overrides the
    short-TS builder's default seed (ignored when an explicit
    ``stimulus`` is given), which is how ``psmgen bench --seed`` makes a
    run reproducible from the command line.
    """
    spec = BENCHMARKS[name]
    if stimulus is None:
        stimulus = (
            spec.short_ts() if seed is None else spec.short_ts(seed=seed)
        )
    reference = run_power_simulation(spec.module_class(), stimulus)
    config = spec.flow_config()
    config.jobs = jobs
    flow = PsmFlow(config).fit([reference.trace], [reference.power])
    result = flow.estimate(reference.trace)
    return FittedBenchmark(
        spec=spec,
        flow=flow,
        short_ref=reference,
        ts=len(reference.trace),
        px_time=reference.total_time,
        train_mre=mre(result.estimated, reference.power),
    )


def evaluation_trace(name: str, cycles: Optional[int] = None):
    """The long-TS functional trace of one IP (no power simulation).

    The cheap way to obtain realistic serving traffic: a fresh
    ``cycles``-instant stimulus replayed through the cycle simulator
    with activity recording off.  Shared by the micro-bench labelling
    stages and the ``psmgen loadgen`` client.
    """
    from .hdl.simulator import Simulator

    spec = BENCHMARKS[name]
    cycles = cycles or long_cycles()
    return (
        Simulator(spec.module_class(), record_activity=False)
        .run(spec.long_ts(cycles), name=f"{name}.long")
        .trace
    )


def _table2_rows_for_ip(args: tuple) -> List[dict]:
    """Worker: the Table II row(s) of one IP (picklable, order-stable).

    State ids come from a process-global counter, so every worker resets
    it first; serial and parallel runs therefore produce identical PSMs
    and identical rows.
    """
    name, include_long, cycles = args
    reset_state_ids()
    spec = BENCHMARKS[name]
    rows = [_table2_row(name, "short-TS", fit_benchmark(name))]
    if include_long:
        long_fitted = fit_benchmark(name, spec.long_ts(cycles))
        rows.append(_table2_row(name, "long-TS", long_fitted))
    return rows


def table2_rows(include_long: bool = True, jobs: int = 1) -> List[dict]:
    """Characteristics of the generated PSMs (paper Table II).

    Rows above the paper's dashed line use the short-TS verification
    suites; rows below use the extended long-TS suites (both as training
    sets, as in the paper).  ``jobs > 1`` fits the IPs in parallel
    worker processes; the fitted models (and hence every non-timing
    column) are bit-identical to a serial run.
    """
    work = [(name, include_long, long_cycles()) for name in BENCHMARKS]
    per_ip = parallel_map(_table2_rows_for_ip, work, jobs=jobs)
    return [row for rows in per_ip for row in rows]


def _table2_row(name: str, testset: str, fitted: FittedBenchmark) -> dict:
    report = fitted.flow.report
    times = report.stage_times()
    optimise = sum(times.get(s, 0.0) for s in ("simplify", "join", "refine"))
    return {
        "ip": name,
        "testset": testset,
        "ts": fitted.ts,
        "px_time": round(fitted.px_time, 3),
        "gen_time": round(report.generation_time, 3),
        "mine_time": round(times.get("mine", 0.0), 3),
        "opt_time": round(optimise, 3),
        "states": report.n_states,
        "transitions": report.n_transitions,
        "mre": round(fitted.train_mre, 2),
    }


def stage_time_rows(fitted_by_ip: Dict[str, FittedBenchmark]) -> List[dict]:
    """Per-stage wall times of fitted benchmarks (pipeline diagnostics).

    One row per IP with one column per executed stage — the structured
    replacement for eyeballing ``generation_time`` when deciding what to
    optimise next (mining dominates on the long-TS sweeps).
    """
    rows = []
    for name, fitted in fitted_by_ip.items():
        row: Dict[str, object] = {"ip": name}
        for report in fitted.flow.report.stages:
            row[report.name] = round(report.wall_time, 4)
        rows.append(row)
    return rows


# ----------------------------------------------------------------------
# Table III — simulation times and accuracy evaluation
# ----------------------------------------------------------------------
def _table3_row_for_ip(args: tuple) -> dict:
    """Worker: the Table III row of one IP (picklable, order-stable)."""
    name, cycles, repeats = args
    reset_state_ids()
    spec = BENCHMARKS[name]
    fitted = fit_benchmark(name)
    stimulus = spec.long_ts(cycles)
    overhead = measure_overhead(
        spec.module_class, stimulus, fitted.flow, repeats=repeats
    )
    reference = run_power_simulation(spec.module_class(), stimulus)
    start = time.perf_counter()
    result = fitted.flow.estimate(reference.trace)
    psm_time = time.perf_counter() - start
    # The paper states that during resynchronisation "the power
    # estimation provided by the PSM is not reliable"; the MRE is
    # therefore measured over the synchronised instants, with the
    # unreliable share reported as WSP.
    reliable = result.reliable
    if reliable.any():
        accuracy = mre(
            result.estimated.values[reliable],
            reference.power.values[reliable],
        )
    else:  # pragma: no cover - fully desynchronised model
        accuracy = float("nan")
    return {
        "ip": name,
        "cycles": cycles,
        "ip_time": round(overhead.ip_time, 3),
        "cosim_time": round(overhead.cosim_time, 3),
        "overhead_pct": round(overhead.overhead_pct, 1),
        "mre": round(accuracy, 2),
        "wsp": round(result.wrong_state_fraction, 2),
        "px_time": round(reference.total_time, 3),
        "psm_time": round(psm_time, 4),
        "speedup": round(reference.total_time / psm_time, 1)
        if psm_time > 0
        else float("inf"),
    }


def table3_rows(
    cycles: Optional[int] = None, repeats: int = 3, jobs: int = 1
) -> List[dict]:
    """Simulation overhead and short-TS-model accuracy on the long-TS.

    For every IP: fit on short-TS, then (i) measure the IP-only and
    IP+PSM co-simulation times over the long-TS, and (ii) replay the
    long-TS through the model to obtain its MRE and WSP — exactly the
    paper's Table III setup.  ``jobs > 1`` fans the IPs out over worker
    processes (note that co-simulation *timings* then contend for CPU;
    accuracy columns are unaffected).
    """
    cycles = cycles or long_cycles()
    work = [(name, cycles, repeats) for name in BENCHMARKS]
    return parallel_map(_table3_row_for_ip, work, jobs=jobs)


# ----------------------------------------------------------------------
# formatting
# ----------------------------------------------------------------------
def format_table(rows: List[dict], title: str) -> str:
    """Plain-text rendering of a row list."""
    if not rows:
        return f"{title}\n (no rows)"
    columns = list(rows[0])
    widths = {
        c: max(len(str(c)), *(len(str(r[c])) for r in rows)) for c in columns
    }
    header = " | ".join(str(c).ljust(widths[c]) for c in columns)
    rule = "-+-".join("-" * widths[c] for c in columns)
    body = "\n".join(
        " | ".join(str(r[c]).ljust(widths[c]) for c in columns) for r in rows
    )
    return f"{title}\n{header}\n{rule}\n{body}"


def run_all_tables(
    include_long: bool = True, repeats: int = 3, jobs: int = 1
) -> str:
    """Regenerate Tables I-III and return the report text."""
    sections = [
        format_table(table1_rows(), "Table I — benchmark characteristics"),
        format_table(
            table2_rows(include_long=include_long, jobs=jobs),
            "Table II — characteristics of the generated PSMs",
        ),
        format_table(
            table3_rows(repeats=repeats, jobs=jobs),
            "Table III — simulation times and accuracy evaluation",
        ),
    ]
    return "\n\n".join(sections)
