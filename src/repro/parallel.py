"""Process-parallel fan-out with a deterministic serial fallback.

The flow's embarrassingly parallel loops — per-IP benchmark fitting, the
miner's per-trace truth-matrix evaluation — all funnel through
:func:`parallel_map`, which preserves input order (so parallel and
serial runs produce identical result lists) and degrades to an in-process
loop whenever process parallelism is pointless or unsafe:

* ``jobs`` resolves to 1 (the default);
* there are fewer than two work items;
* the process is a pytest-xdist worker (nested process pools under the
  test runner oversubscribe the machine and can deadlock on teardown);
* the platform cannot start a process pool at all (restricted sandboxes)
  — the work still completes, just serially.

Workers are separate interpreters, so callables and items must be
picklable module-level objects.  Bit-identical parallel/serial output is
a contract of the callers: any global state a worker depends on (e.g.
the PSM state-id counter) must be reset inside the work function itself,
so that the result does not depend on which process ran it.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, List, Optional, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


def default_jobs() -> int:
    """Number of usable CPUs (the ``jobs=0`` / ``jobs=None`` meaning)."""
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalise a ``jobs`` knob: None/0 -> all CPUs, floor at 1."""
    if jobs is None or jobs == 0:
        return default_jobs()
    return max(int(jobs), 1)


def under_test_worker() -> bool:
    """True inside a pytest-xdist worker process."""
    return "PYTEST_XDIST_WORKER" in os.environ


def make_pool(jobs: Optional[int]) -> Optional[ProcessPoolExecutor]:
    """A long-lived worker pool, or ``None`` when serial rules apply.

    The persistent-executor counterpart of :func:`parallel_map` for the
    serving layer: the same fallback rules (``jobs <= 1``, pytest-xdist
    workers, platforms without process support) yield ``None``, telling
    the caller to execute in-process instead.  The caller owns the pool
    and must ``shutdown()`` it.
    """
    workers = resolve_jobs(jobs)
    if workers <= 1 or under_test_worker():
        return None
    try:
        return ProcessPoolExecutor(max_workers=workers)
    except (OSError, ValueError, PermissionError):
        return None


def mp_context():
    """The multiprocessing context for long-lived server workers.

    Prefers ``fork`` (starts in milliseconds and inherits the parent's
    already-imported numpy/repro modules — the cluster supervisor
    respawns dead workers on this path, so start latency is part of the
    recovery time) and falls back to ``spawn`` on platforms without
    fork.
    """
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def spawn_process(target, args=(), name: Optional[str] = None):
    """Start one supervised long-lived child process running ``target``.

    The cluster-serving counterpart of :func:`make_pool`: instead of a
    pool executing short tasks, the child runs an entire server loop
    until signalled.  The caller owns the returned ``Process`` handle —
    supervision (liveness polling, respawn, SIGTERM on drain) lives in
    :class:`repro.serve.cluster.ClusterSupervisor`.  Children are
    daemonic so an abandoned supervisor cannot leak workers.  Raises
    ``OSError`` where process support is unavailable (restricted
    sandboxes) — callers fall back to in-process serving.
    """
    process = mp_context().Process(
        target=target, args=tuple(args), name=name, daemon=True
    )
    process.start()
    return process


def worker_pipe():
    """A ``(parent, child)`` duplex pipe matching :func:`spawn_process`.

    Used for the one-shot ready handshake: a freshly spawned serving
    worker reports its bound ephemeral port (or a startup error) before
    the supervisor adds it to the hash ring.
    """
    return mp_context().Pipe()


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    jobs: Optional[int] = 1,
    chunksize: int = 1,
) -> List[R]:
    """``[fn(x) for x in items]``, fanned out over worker processes.

    Results come back in input order regardless of completion order, and
    a worker exception propagates to the caller (the pool is torn down).
    Falls back to the serial loop per the module rules above.
    """
    work: Sequence[T] = list(items)
    workers = min(resolve_jobs(jobs), len(work))
    if workers <= 1 or len(work) <= 1 or under_test_worker():
        return [fn(item) for item in work]
    try:
        executor = ProcessPoolExecutor(max_workers=workers)
    except (OSError, ValueError, PermissionError):
        # No process support (sandbox, missing /dev/shm, ...): run serial.
        return [fn(item) for item in work]
    with executor:
        return list(executor.map(fn, work, chunksize=chunksize))
