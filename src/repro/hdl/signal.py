"""Registers and bit-level helpers for the cycle-based HDL kernel.

The kernel substitutes the RTL/gate-level simulator used by the paper: IPs
are modelled as clocked modules whose sequential state lives in
:class:`Register` objects.  Every register load records the number of bits
that toggled, which is exactly the switching activity ``alpha(t)`` the
power estimator (the PrimeTime PX substitute) integrates per cycle.
"""

from __future__ import annotations


def mask_for(width: int) -> int:
    """Bit mask for an unsigned value of ``width`` bits."""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    return (1 << width) - 1


def popcount_int(value: int) -> int:
    """Number of set bits of a non-negative integer."""
    if value < 0:
        raise ValueError("popcount of negative value")
    return bin(value).count("1")


def hamming(a: int, b: int) -> int:
    """Hamming distance between two non-negative integers."""
    return popcount_int(a ^ b)


class Register:
    """A clocked storage element with toggle accounting.

    Parameters
    ----------
    name:
        Instance name, unique within the owning module.
    width:
        Bit width of the stored value.
    init:
        Reset value.
    component:
        Name of the sub-component (power domain) this register belongs to;
        activity is aggregated per component so hierarchical IPs such as
        Camellia can expose per-subcomponent power behaviour.
    """

    def __init__(
        self, name: str, width: int, init: int = 0, component: str = "core"
    ) -> None:
        self.name = name
        self.width = width
        self.component = component
        self._mask = mask_for(width)
        self._init = init & self._mask
        self.value = self._init
        self._toggles = 0

    def load(self, value: int) -> None:
        """Clock a new value in, accumulating the toggled-bit count."""
        value = int(value) & self._mask
        self._toggles += popcount_int(self.value ^ value)
        self.value = value

    def reset(self) -> None:
        """Return to the reset value without recording activity."""
        self.value = self._init
        self._toggles = 0

    def collect_toggles(self) -> int:
        """Return and clear the toggles accumulated since the last call."""
        toggles = self._toggles
        self._toggles = 0
        return toggles

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Register({self.name!r}, width={self.width}, value={self.value})"


class Wire:
    """A named combinational value, useful for VCD dumping.

    Wires carry no state between cycles and record no activity by
    themselves; modules may report their switching through
    :meth:`repro.hdl.module.Module.add_activity`.
    """

    def __init__(self, name: str, width: int) -> None:
        self.name = name
        self.width = width
        self._mask = mask_for(width)
        self.value = 0

    def drive(self, value: int) -> int:
        """Set the wire value (masked to the declared width)."""
        self.value = int(value) & self._mask
        return self.value
