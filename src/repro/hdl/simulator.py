"""Cycle-based simulation of HDL modules.

The :class:`Simulator` drives a :class:`~repro.hdl.module.Module` with a
stimulus (a sequence of primary-input assignments), producing:

* a :class:`~repro.traces.FunctionalTrace` over the module's PIs and POs —
  the paper's functional trace; and
* an :class:`ActivityRecord` with the per-cycle, per-component switching
  activity — the raw material the power estimator turns into the paper's
  power trace.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional

import numpy as np

from ..traces.functional import FunctionalTrace
from .module import Module


class ActivityRecord:
    """Per-cycle switching activity, grouped by module component."""

    def __init__(self, components: Iterable[str]) -> None:
        self._columns: Dict[str, List[float]] = {c: [] for c in components}
        self._length = 0
        # Frozen-array cache, mirroring FunctionalTrace: the power
        # estimator reads every column several times, and re-converting
        # the per-cycle lists on each read dominated its runtime.
        self._frozen: Dict[str, np.ndarray] = {}
        self._total: Optional[np.ndarray] = None

    @property
    def components(self) -> List[str]:
        """Component (power-domain) names."""
        return list(self._columns)

    def __len__(self) -> int:
        return self._length

    def append(self, activity: Mapping[str, float]) -> None:
        """Record one cycle of activity (missing components count 0)."""
        self._frozen.clear()
        self._total = None
        for component in activity:
            if component not in self._columns:
                # A component can first report activity mid-simulation
                # (e.g. combinational-only domains); backfill with zeros.
                self._columns[component] = [0.0] * self._length
        for component, column in self._columns.items():
            column.append(float(activity.get(component, 0.0)))
        self._length += 1

    def column(self, component: str) -> np.ndarray:
        """Activity of one component across all cycles (immutable array)."""
        cached = self._frozen.get(component)
        if cached is None:
            cached = np.asarray(self._columns[component], dtype=np.float64)
            cached.setflags(write=False)
            self._frozen[component] = cached
        return cached

    def total(self) -> np.ndarray:
        """Total activity per cycle, summed over components (immutable)."""
        if self._total is None:
            if not self._columns:
                total = np.zeros(self._length)
            else:
                total = np.sum(
                    [self.column(c) for c in self._columns], axis=0
                )
            total.setflags(write=False)
            self._total = total
        return self._total


@dataclass
class SimulationResult:
    """Everything produced by one simulation run."""

    trace: FunctionalTrace
    activity: ActivityRecord
    cycles: int
    wall_time: float = field(default=0.0)


class Simulator:
    """Drives a module cycle by cycle and records traces.

    Parameters
    ----------
    module:
        The device under test.
    record_activity:
        When False, activity collection is skipped (used to time the bare
        functional simulation for the Table III overhead measurement).
    """

    def __init__(self, module: Module, record_activity: bool = True) -> None:
        self.module = module
        self.record_activity = record_activity

    def run(
        self,
        stimulus: Iterable[Mapping[str, int]],
        reset: bool = True,
        name: Optional[str] = None,
        observer=None,
        include_probes: bool = False,
    ) -> SimulationResult:
        """Simulate the module over a stimulus sequence.

        Parameters
        ----------
        stimulus:
            Iterable of primary-input assignments, one per clock cycle.
        reset:
            Apply a synchronous reset before the first cycle.
        name:
            Label for the produced functional trace.
        observer:
            Optional callable ``observer(cycle, row)`` invoked after each
            cycle with the full PI+PO assignment; used by the co-simulation
            kernel to feed an attached PSM monitor.
        include_probes:
            Record the module's declared internal probes as additional
            trace variables (hierarchical power modelling).
        """
        module = self.module
        if reset:
            module.reset()
            module.collect_activity()  # discard reset activity
        specs = module.trace_specs()
        if include_probes:
            specs = specs + module.probe_specs()
        trace = FunctionalTrace(specs, name=name or module.NAME)
        activity = ActivityRecord(module.components)
        start = time.perf_counter()
        cycle = 0
        for raw_inputs in stimulus:
            inputs = module.check_inputs(raw_inputs)
            outputs = module.step(inputs)
            row = dict(inputs)
            row.update(outputs)
            if include_probes:
                row.update(module.probe_values())
            trace.append(row)
            if self.record_activity:
                activity.append(module.collect_activity())
            if observer is not None:
                observer(cycle, row)
            cycle += 1
        wall = time.perf_counter() - start
        return SimulationResult(
            trace=trace, activity=activity, cycles=cycle, wall_time=wall
        )
