"""Cycle-based HDL simulation kernel (RTL-simulator substitute)."""

from .module import Module
from .signal import Register, Wire, hamming, mask_for, popcount_int
from .simulator import ActivityRecord, SimulationResult, Simulator
from .vcd import read_vcd, write_vcd

__all__ = [
    "Module",
    "Register",
    "Wire",
    "Simulator",
    "SimulationResult",
    "ActivityRecord",
    "write_vcd",
    "read_vcd",
    "mask_for",
    "popcount_int",
    "hamming",
]
