"""Minimal VCD (Value Change Dump) reader/writer for functional traces.

Lets users inspect the traces produced by the HDL kernel in a standard
waveform viewer, and import waveforms dumped by an external RTL
simulator into the flow.  Only the subset of VCD needed for unsigned
scalar/vector nets is implemented.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..traces.functional import FunctionalTrace
from ..traces.variables import VariableSpec

PathLike = Union[str, Path]

# Printable identifier characters per the VCD grammar.
_ID_CHARS = [chr(c) for c in range(33, 127)]


def _identifier(index: int) -> str:
    """Short VCD identifier for the ``index``-th variable."""
    chars = []
    index += 1
    while index:
        index, rem = divmod(index - 1, len(_ID_CHARS))
        chars.append(_ID_CHARS[rem])
    return "".join(reversed(chars))


def _format_value(value: int, width: int, ident: str) -> str:
    if width == 1:
        return f"{value}{ident}"
    return f"b{value:b} {ident}"


def write_vcd(
    trace: FunctionalTrace,
    path: PathLike,
    timescale: str = "1ns",
    scope: str = "dut",
) -> None:
    """Dump a functional trace to a VCD file.

    Values are emitted only when they change, as VCD requires; instant
    ``i`` of the trace maps to VCD time ``#i``.
    """
    path = Path(path)
    idents = {
        spec.name: _identifier(i) for i, spec in enumerate(trace.variables)
    }
    lines = [
        "$date today $end",
        "$version repro HDL kernel $end",
        f"$timescale {timescale} $end",
        f"$scope module {scope} $end",
    ]
    for spec in trace.variables:
        kind = "wire"
        lines.append(
            f"$var {kind} {spec.width} {idents[spec.name]} {spec.name} $end"
        )
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    previous = {}
    for instant in range(len(trace)):
        row = trace.at(instant)
        changes = [
            spec
            for spec in trace.variables
            if previous.get(spec.name) != row[spec.name]
        ]
        if changes or instant == 0:
            lines.append(f"#{instant}")
            if instant == 0:
                lines.append("$dumpvars")
            for spec in changes if instant else trace.variables:
                lines.append(
                    _format_value(
                        row[spec.name], spec.width, idents[spec.name]
                    )
                )
            if instant == 0:
                lines.append("$end")
        for spec in trace.variables:
            previous[spec.name] = row[spec.name]
    lines.append(f"#{len(trace)}")
    path.write_text("\n".join(lines) + "\n")

def read_vcd(
    path: PathLike,
    inputs: Sequence[str] = (),
    sample_period: int = 1,
) -> FunctionalTrace:
    """Read a VCD file back into a :class:`FunctionalTrace`.

    The dump is sampled every ``sample_period`` time units (VCD is
    event-based; a functional trace is cycle-based).  Variables listed in
    ``inputs`` are marked as primary inputs, everything else as outputs.
    ``x``/``z`` bits are read as 0, as a two-valued cycle simulator would
    resolve them.

    Supports the subset emitted by :func:`write_vcd` plus the common
    constructs of RTL simulator dumps (nested scopes, ``$dumpvars``
    blocks, ``b``-prefixed vectors and scalar changes).
    """
    path = Path(path)
    specs: List[VariableSpec] = []
    by_ident: Dict[str, str] = {}
    widths: Dict[str, int] = {}
    current: Dict[str, int] = {}
    samples: Dict[str, List[int]] = {}
    end_time = 0
    input_set = set(inputs)

    def _sample_until(target_time: int) -> None:
        """Record the held values for every elapsed sample period."""
        nonlocal end_time
        while end_time + sample_period <= target_time:
            end_time += sample_period
            for name in samples:
                samples[name].append(current[name])

    in_definitions = True
    with path.open() as handle:
        tokens: List[str] = []
        for line in handle:
            tokens.extend(line.split())
        position = 0
        while position < len(tokens):
            token = tokens[position]
            if in_definitions:
                if token == "$var":
                    # $var <type> <width> <ident> <name...> $end
                    width = int(tokens[position + 2])
                    ident = tokens[position + 3]
                    name_parts = []
                    cursor = position + 4
                    while tokens[cursor] != "$end":
                        name_parts.append(tokens[cursor])
                        cursor += 1
                    name = "".join(name_parts)
                    # strip a [msb:lsb] suffix if present
                    if "[" in name:
                        name = name.split("[", 1)[0]
                    if name not in widths:
                        direction = "in" if name in input_set else "out"
                        kind = "bool" if width == 1 else "int"
                        specs.append(
                            VariableSpec(name, width, direction, kind)
                        )
                        widths[name] = width
                        current[name] = 0
                        samples[name] = []
                    by_ident[ident] = name
                    position = cursor + 1
                    continue
                if token == "$enddefinitions":
                    in_definitions = False
                position += 1
                continue
            if token.startswith("#"):
                _sample_until(int(token[1:]))
                position += 1
                continue
            if token.startswith("$"):
                position += 1
                continue
            if token.startswith("b") or token.startswith("B"):
                bits = token[1:].lower().replace("x", "0").replace("z", "0")
                ident = tokens[position + 1]
                name = by_ident.get(ident)
                if name is not None:
                    current[name] = int(bits, 2) if bits else 0
                position += 2
                continue
            # scalar change: <value><ident>
            value_char = token[0].lower()
            ident = token[1:]
            name = by_ident.get(ident)
            if name is not None:
                current[name] = 1 if value_char == "1" else 0
            position += 1
    if not specs:
        raise ValueError(f"no variables declared in {path}")
    # order columns: declared inputs first, then outputs
    ordered = sorted(specs, key=lambda s: (0 if s.is_input else 1))
    columns = {spec.name: samples[spec.name] for spec in ordered}
    return FunctionalTrace(ordered, columns, name=path.stem)
