"""Base class for clocked hardware modules.

A :class:`Module` is the unit the whole flow observes: the simulator applies
primary-input values, calls :meth:`Module.step` once per clock cycle, records
primary-output values into the functional trace, and collects per-component
switching activity for the power estimator.

Modules model the *RTL Verilog descriptions* of the paper's benchmarks; the
functional trace only ever exposes PIs and POs, so the methodology remains
black-box exactly as in the paper.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence

from ..traces.variables import VariableSpec
from .signal import Register


class Module:
    """Abstract clocked module with activity accounting.

    Subclasses declare ``INPUTS`` and ``OUTPUTS`` (sequences of
    :class:`VariableSpec`), create registers with :meth:`reg` in
    ``__init__`` and implement :meth:`step`.
    """

    #: Human-readable module name (subclasses override).
    NAME = "module"
    #: Primary-input specifications.
    INPUTS: Sequence[VariableSpec] = ()
    #: Primary-output specifications.
    OUTPUTS: Sequence[VariableSpec] = ()
    #: Internal probe points exposed to hierarchical power modelling
    #: (paper Sec. VII future work): sub-component boundary signals that
    #: a white-box characterisation may observe.  Each spec must name a
    #: register of the module; probes are *not* part of the PI/PO
    #: interface and do not count toward Table I widths.
    PROBES: Sequence[VariableSpec] = ()

    def __init__(self) -> None:
        self._registers: Dict[str, Register] = {}
        self._extra_activity: Dict[str, float] = {}

    # ------------------------------------------------------------------
    # structural declaration
    # ------------------------------------------------------------------
    def reg(
        self, name: str, width: int, init: int = 0, component: str = "core"
    ) -> Register:
        """Declare a register; called from subclass ``__init__``."""
        if name in self._registers:
            raise ValueError(f"duplicate register name {name!r}")
        register = Register(name, width, init, component)
        self._registers[name] = register
        return register

    @property
    def registers(self) -> Dict[str, Register]:
        """All declared registers, by name."""
        return dict(self._registers)

    @property
    def components(self) -> List[str]:
        """Names of the sub-components (power domains) of the module."""
        names: List[str] = []
        for register in self._registers.values():
            if register.component not in names:
                names.append(register.component)
        for name in self._extra_activity:
            if name not in names:
                names.append(name)
        return names

    def state_bits(self) -> int:
        """Total number of memory elements (Table I column)."""
        return sum(r.width for r in self._registers.values())

    # ------------------------------------------------------------------
    # behaviour (subclass responsibility)
    # ------------------------------------------------------------------
    def reset(self) -> None:
        """Synchronous reset: all registers back to their init values."""
        for register in self._registers.values():
            register.reset()
        self._extra_activity.clear()

    def step(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """Advance one clock cycle; return the primary-output values."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # activity accounting
    # ------------------------------------------------------------------
    def add_activity(self, component: str, toggles: float) -> None:
        """Report combinational switching (e.g. datapath glitching).

        Registers record their own toggles; this hook lets a module add an
        estimate for activity that has no storage element, such as a RAM
        bitline discharge or an S-box evaluation network.
        """
        self._extra_activity[component] = (
            self._extra_activity.get(component, 0.0) + float(toggles)
        )

    def collect_activity(self) -> Dict[str, float]:
        """Per-component switching activity accumulated over the last cycle.

        Clears the accumulators so each simulation cycle starts fresh.
        """
        activity: Dict[str, float] = {}
        for register in self._registers.values():
            toggles = register.collect_toggles()
            if toggles:
                activity[register.component] = (
                    activity.get(register.component, 0.0) + toggles
                )
        for component, toggles in self._extra_activity.items():
            if toggles:
                activity[component] = activity.get(component, 0.0) + toggles
        self._extra_activity = {}
        return activity

    # ------------------------------------------------------------------
    # interface helpers
    # ------------------------------------------------------------------
    @classmethod
    def input_specs(cls) -> List[VariableSpec]:
        """Primary-input variable specifications."""
        return list(cls.INPUTS)

    @classmethod
    def output_specs(cls) -> List[VariableSpec]:
        """Primary-output variable specifications."""
        return list(cls.OUTPUTS)

    @classmethod
    def trace_specs(cls) -> List[VariableSpec]:
        """All variables observed by a functional trace (PIs then POs)."""
        return list(cls.INPUTS) + list(cls.OUTPUTS)

    @classmethod
    def probe_specs(cls) -> List[VariableSpec]:
        """Internal probe specifications (hierarchical modelling)."""
        return list(cls.PROBES)

    def probe_values(self) -> Dict[str, int]:
        """Current values of the declared probe registers."""
        return {
            spec.name: self._registers[spec.name].value
            for spec in self.PROBES
        }

    @classmethod
    def input_bits(cls) -> int:
        """Total PI width in bits (Table I column)."""
        return sum(v.width for v in cls.INPUTS)

    @classmethod
    def output_bits(cls) -> int:
        """Total PO width in bits (Table I column)."""
        return sum(v.width for v in cls.OUTPUTS)

    def check_inputs(self, inputs: Mapping[str, int]) -> Dict[str, int]:
        """Validate and normalise an input assignment."""
        values: Dict[str, int] = {}
        for spec in self.INPUTS:
            if spec.name not in inputs:
                raise KeyError(f"missing input {spec.name!r}")
            values[spec.name] = spec.validate_value(inputs[spec.name])
        return values

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"<{type(self).__name__} {self.NAME!r}>"
