"""RAM testbenches.

The short-TS suite mirrors a functional-verification testbench: directed
write/read bursts, address sweeps, walking-ones data patterns and idle
gaps.  The long-TS suite repeats the same access modes many times with
fresh random data, as the paper's extended test sequences do.
"""

from __future__ import annotations

from .stimuli import Stimulus, StimulusBuilder

#: Default (inactive) input values.
RAM_DEFAULTS = {
    "rst": 0,
    "cs": 1,
    "en": 0,
    "we": 0,
    "addr": 0,
    "wdata": 0,
}


def _write_burst(
    tb: StimulusBuilder, base: int, length: int, sequential: bool = True
) -> dict:
    """A burst of writes with random data; returns the final bus values."""
    last = {}
    for k in range(length):
        addr = (base + k) & 0xFF if sequential else tb.rand_bits(8)
        last = dict(en=1, we=1, addr=addr, wdata=tb.rand_bits(32))
        tb.cycle(**last)
    return last


def _read_burst(
    tb: StimulusBuilder, base: int, length: int, sequential: bool = True
) -> dict:
    """A burst of reads; returns the final bus values."""
    last = {}
    for k in range(length):
        addr = (base + k) & 0xFF if sequential else tb.rand_bits(8)
        last = dict(en=1, we=0, addr=addr)
        tb.cycle(**last)
    return last


def _gap(tb: StimulusBuilder, count: int, last: dict) -> None:
    """An idle window with the buses held at their last values.

    A paused testbench leaves the buses where they were; dropping them to
    zero would inject artificial switching into the idle cycles.
    """
    held = dict(last)
    held["en"] = 0
    tb.hold(count, **held)


def ram_short_ts(seed: int = 1) -> Stimulus:
    """Directed verification suite for the RAM (~1.7k cycles)."""
    tb = StimulusBuilder(RAM_DEFAULTS, seed=seed)
    tb.cycle(rst=1)
    tb.hold(8)  # power-up idle
    # Walking-ones data on a fixed address.
    for bit in range(32):
        tb.cycle(en=1, we=1, addr=3, wdata=1 << bit)
    _read_burst(tb, 3, 4)
    # Full-array sequential write then read-back.
    last = _write_burst(tb, 0, 256, sequential=True)
    _gap(tb, 6, last)
    last = _read_burst(tb, 0, 256, sequential=True)
    _gap(tb, 10, last)
    # Random-address mixed bursts.
    for _ in range(24):
        if tb.maybe(0.5):
            last = _write_burst(tb, tb.rand_bits(8), 16, sequential=False)
        else:
            last = _read_burst(tb, tb.rand_bits(8), 16, sequential=False)
        _gap(tb, 4, last)
    # Data-extremes phase (all-zeros / all-ones toggling).
    for _ in range(32):
        tb.cycle(en=1, we=1, addr=7, wdata=0)
        tb.cycle(en=1, we=1, addr=7, wdata=0xFFFFFFFF)
    _gap(tb, 12, dict(we=1, addr=7, wdata=0xFFFFFFFF))
    return tb.build()


def ram_long_ts(cycles: int = 20000, seed: int = 101) -> Stimulus:
    """Extended random suite: repeated access modes with fresh data."""
    tb = StimulusBuilder(RAM_DEFAULTS, seed=seed)
    tb.cycle(rst=1)
    while len(tb) < cycles:
        mode = tb.choice([0, 1, 2, 3])
        burst = 8 + int(tb.rng.integers(0, 25))
        if mode == 0:
            last = _write_burst(tb, tb.rand_bits(8), burst, sequential=True)
        elif mode == 1:
            last = _read_burst(tb, tb.rand_bits(8), burst, sequential=True)
        elif mode == 2:
            last = _write_burst(tb, tb.rand_bits(8), burst, sequential=False)
        else:
            last = _read_burst(tb, tb.rand_bits(8), burst, sequential=False)
        _gap(tb, 2 + int(tb.rng.integers(0, 9)), last)
    return tb.build()[:cycles]
