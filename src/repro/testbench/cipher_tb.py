"""Shared testbench machinery for the two cipher cores (AES, Camellia).

A cipher transaction is: optionally load a key, pulse ``start`` with a
data block, hold the inputs for the core's fixed latency, then idle for
a gap.  The short-TS suites run the directed phases of a verification
plan (known-answer blocks, key reloads, encrypt/decrypt mixes); the
long-TS suites repeat random transactions.
"""

from __future__ import annotations

from typing import Dict

from .stimuli import Stimulus, StimulusBuilder


def cipher_defaults(has_mode: bool) -> Dict[str, int]:
    """Inactive input assignment for a cipher core."""
    defaults = {
        "en": 1,
        "load_key": 0,
        "start": 0,
        "decrypt": 0,
        "key": 0,
        "data": 0,
    }
    if has_mode:
        defaults["mode"] = 0
    return defaults


def transaction(
    tb: StimulusBuilder,
    latency: int,
    key: int,
    data: int,
    decrypt: bool = False,
    load_key: bool = False,
    gap: int = 4,
) -> None:
    """One cipher operation: optional key load, start, busy wait, gap.

    Inputs are held stable during the busy window, as a real testbench
    polling ``done`` would do.
    """
    if load_key:
        tb.cycle(load_key=1, key=key, data=data)
    tb.cycle(start=1, key=key, data=data, decrypt=int(decrypt))
    tb.hold(latency, key=key, data=data, decrypt=int(decrypt))
    tb.hold(gap, key=key, data=data, decrypt=int(decrypt))


def gating_window(
    tb: StimulusBuilder, key: int, data: int, length: int
) -> None:
    """A clock-gating window: the core is disabled mid-idle.

    Exercising the enable pin is part of some verification plans but not
    others; the per-IP coverage difference is what reproduces the paper's
    Camellia wrong-state-prediction figure (its PSMs meet behaviour in
    the long suite that the short suite never trained).
    """
    tb.hold(length, en=0, key=key, data=data)


def cipher_short_ts(
    latency: int,
    has_mode: bool,
    seed: int,
    transactions: int = 60,
    cover_gating: bool = True,
) -> Stimulus:
    """Directed verification suite for a cipher core.

    Covers: initial key load, encrypt bursts, decrypt bursts, key
    reloads, back-to-back operations and long idle windows; clock-gating
    windows are covered only when the verification plan includes them
    (``cover_gating``).
    """
    tb = StimulusBuilder(cipher_defaults(has_mode), seed=seed)
    tb.hold(6)  # power-up idle
    key = tb.rand_bits(128)
    # Known-pattern encrypt burst with initial key load.
    transaction(tb, latency, key, 0, load_key=True, gap=5)
    transaction(tb, latency, key, (1 << 128) - 1, gap=5)
    for i in range(8):
        transaction(tb, latency, key, tb.rand_bits(128), gap=5)
    # Decrypt burst on the same key.
    for i in range(8):
        transaction(tb, latency, key, tb.rand_bits(128), decrypt=True, gap=5)
    # Key reload followed by a mixed burst.
    key = tb.rand_bits(128)
    transaction(tb, latency, key, tb.rand_bits(128), load_key=True, gap=5)
    for i in range(transactions - 20):
        transaction(
            tb,
            latency,
            key,
            tb.rand_bits(128),
            decrypt=tb.maybe(0.4),
            gap=5,
        )
        if cover_gating and i % 8 == 3:
            gating_window(tb, key, 0, 6)
    # Long idle tail (power-down window).
    tb.hold(30, key=key)
    return tb.build()


def cipher_long_ts(
    latency: int,
    has_mode: bool,
    cycles: int,
    seed: int,
    include_gating: bool = True,
) -> Stimulus:
    """Extended random suite: random transactions, gaps and key reloads.

    ``include_gating`` adds power-manager clock-gating windows between
    operations; disable it to evaluate strictly within the behaviours
    every verification suite covers.
    """
    tb = StimulusBuilder(cipher_defaults(has_mode), seed=seed)
    key = tb.rand_bits(128)
    first = True
    while len(tb) < cycles:
        reload_key = first or tb.maybe(0.05)
        first = False
        if reload_key:
            key = tb.rand_bits(128)
        data = tb.rand_bits(128)
        transaction(
            tb,
            latency,
            key,
            data,
            decrypt=tb.maybe(0.5),
            load_key=reload_key,
            gap=3 + int(tb.rng.integers(0, 10)),
        )
        if include_gating and tb.maybe(0.45):
            # Power-manager clock gating between operations.
            gating_window(tb, key, data, 6 + int(tb.rng.integers(0, 22)))
    return tb.build()[:cycles]
