"""Stimulus-building helpers.

A *stimulus* is a list of primary-input assignments, one per clock
cycle.  The builders here give the per-IP testbenches a compact way to
express directed phases (the short-TS verification suites) and
constrained-random phases (the long-TS extended suites), with seeded
generators for full reproducibility.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

import numpy as np

Stimulus = List[Dict[str, int]]


class StimulusBuilder:
    """Accumulates cycles of input assignments with default values."""

    def __init__(self, defaults: Mapping[str, int], seed: int = 0) -> None:
        self.defaults = dict(defaults)
        self.rng = np.random.default_rng(seed)
        self._cycles: Stimulus = []

    def __len__(self) -> int:
        return len(self._cycles)

    def cycle(self, **overrides: int) -> "StimulusBuilder":
        """Append one cycle: defaults overridden by ``overrides``."""
        row = dict(self.defaults)
        row.update(overrides)
        self._cycles.append(row)
        return self

    def hold(self, count: int, **overrides: int) -> "StimulusBuilder":
        """Append ``count`` identical cycles."""
        for _ in range(max(count, 0)):
            self.cycle(**overrides)
        return self

    def rand_bits(self, width: int) -> int:
        """A uniformly random unsigned value of ``width`` bits."""
        if width <= 62:
            return int(self.rng.integers(0, 1 << width))
        value = 0
        remaining = width
        while remaining > 0:
            chunk = min(remaining, 62)
            value = (value << chunk) | int(self.rng.integers(0, 1 << chunk))
            remaining -= chunk
        return value

    def choice(self, options: Iterable[int]) -> int:
        """A random element of ``options``."""
        options = list(options)
        return options[int(self.rng.integers(0, len(options)))]

    def maybe(self, probability: float) -> bool:
        """True with the given probability."""
        return bool(self.rng.random() < probability)

    def build(self) -> Stimulus:
        """The accumulated stimulus."""
        return list(self._cycles)


def total_cycles(stimulus: Stimulus) -> int:
    """Length of a stimulus in clock cycles."""
    return len(stimulus)


# ----------------------------------------------------------------------
# perturbation families
# ----------------------------------------------------------------------
#
# The counterexample search (`repro.refine`) mutates the worst-scoring
# windows of an evaluation trace looking for stimuli where the mined PSM
# is even worse.  Each family below takes the window's input rows and
# returns a new seeded stimulus built with :class:`StimulusBuilder`:
# same interface, so they also serve as generic workload shapers.
#
# Every family is a function ``(rows, defaults, widths, seed) -> Stimulus``
# where ``rows`` are complete input-assignment rows, ``defaults`` is the
# idle row used for padding, and ``widths`` maps input names to their
# bit widths (for value-flipping families).


def perturb_replay(
    rows: Stimulus,
    defaults: Mapping[str, int],
    widths: Mapping[str, int],
    seed: int = 0,
) -> Stimulus:
    """The identity family: replay the window's rows unchanged.

    The anchor of every search round — when the oracle flags a window
    the model mis-estimates, the window's own behaviour (replayed from
    reset) is the most direct counterexample, and folding it back into
    training is the classic active-learning move.  The mutating
    families below search *beyond* the observed behaviours.
    """
    builder = StimulusBuilder(defaults, seed=seed)
    for row in rows:
        builder.cycle(**row)
    return builder.build()


def perturb_bursty(
    rows: Stimulus,
    defaults: Mapping[str, int],
    widths: Mapping[str, int],
    seed: int = 0,
) -> Stimulus:
    """Replay the window as dense activity bursts split by short idles.

    The rows are chopped into four chunks; each chunk is repeated two or
    three times back-to-back, then the inputs fall back to the idle
    defaults for a few cycles — stressing rapid state re-entry.
    """
    builder = StimulusBuilder(defaults, seed=seed)
    if not rows:
        return builder.build()
    chunk = max(len(rows) // 4, 1)
    for start in range(0, len(rows), chunk):
        repeats = 2 + int(builder.maybe(0.5))
        for _ in range(repeats):
            for row in rows[start : start + chunk]:
                builder.cycle(**row)
        builder.hold(int(builder.rng.integers(1, 4)))
    return builder.build()


def perturb_idle_heavy(
    rows: Stimulus,
    defaults: Mapping[str, int],
    widths: Mapping[str, int],
    seed: int = 0,
) -> Stimulus:
    """Stretch the window with random idle gaps between its rows.

    Long holds on the idle defaults probe the model's low-power states
    and every re-activation edge out of them.
    """
    builder = StimulusBuilder(defaults, seed=seed)
    for row in rows:
        builder.cycle(**row)
        if builder.maybe(0.35):
            builder.hold(int(builder.rng.integers(2, 9)))
    return builder.build()


def perturb_phase_alternating(
    rows: Stimulus,
    defaults: Mapping[str, int],
    widths: Mapping[str, int],
    seed: int = 0,
) -> Stimulus:
    """Interleave short chunks of the window's two halves.

    Behaviours the training trace exercised in long separate phases are
    forced to alternate rapidly, probing transitions between them that
    the original ordering never took.
    """
    builder = StimulusBuilder(defaults, seed=seed)
    if not rows:
        return builder.build()
    half = max(len(rows) // 2, 1)
    first, second = rows[:half], rows[half:]
    phase = max(int(builder.rng.integers(2, 9)), 1)
    chunks_a = [first[i : i + phase] for i in range(0, len(first), phase)]
    chunks_b = [second[i : i + phase] for i in range(0, len(second), phase)]
    for index in range(max(len(chunks_a), len(chunks_b))):
        for chunk in (chunks_a, chunks_b):
            if index < len(chunk):
                for row in chunk[index]:
                    builder.cycle(**row)
    return builder.build()


def perturb_toggle_max(
    rows: Stimulus,
    defaults: Mapping[str, int],
    widths: Mapping[str, int],
    seed: int = 0,
) -> Stimulus:
    """Adversarial maximum-toggle variant of the window.

    Each original row is followed by a copy with (most of) its inputs
    bitwise-complemented within their declared widths — near-maximal
    Hamming distance cycle to cycle, the worst case for switching-based
    power models.
    """
    builder = StimulusBuilder(defaults, seed=seed)
    for row in rows:
        builder.cycle(**row)
        flipped = {}
        for name, value in row.items():
            mask = (1 << max(widths.get(name, 1), 1)) - 1
            flipped[name] = (value ^ mask) if builder.maybe(0.75) else value
        builder.cycle(**flipped)
    return builder.build()


#: Registry of seedable stimulus perturbation families, by CLI name.
PERTURBATION_FAMILIES = {
    "replay": perturb_replay,
    "bursty": perturb_bursty,
    "idle-heavy": perturb_idle_heavy,
    "phase-alternating": perturb_phase_alternating,
    "toggle-max": perturb_toggle_max,
}
