"""Stimulus-building helpers.

A *stimulus* is a list of primary-input assignments, one per clock
cycle.  The builders here give the per-IP testbenches a compact way to
express directed phases (the short-TS verification suites) and
constrained-random phases (the long-TS extended suites), with seeded
generators for full reproducibility.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping

import numpy as np

Stimulus = List[Dict[str, int]]


class StimulusBuilder:
    """Accumulates cycles of input assignments with default values."""

    def __init__(self, defaults: Mapping[str, int], seed: int = 0) -> None:
        self.defaults = dict(defaults)
        self.rng = np.random.default_rng(seed)
        self._cycles: Stimulus = []

    def __len__(self) -> int:
        return len(self._cycles)

    def cycle(self, **overrides: int) -> "StimulusBuilder":
        """Append one cycle: defaults overridden by ``overrides``."""
        row = dict(self.defaults)
        row.update(overrides)
        self._cycles.append(row)
        return self

    def hold(self, count: int, **overrides: int) -> "StimulusBuilder":
        """Append ``count`` identical cycles."""
        for _ in range(max(count, 0)):
            self.cycle(**overrides)
        return self

    def rand_bits(self, width: int) -> int:
        """A uniformly random unsigned value of ``width`` bits."""
        if width <= 62:
            return int(self.rng.integers(0, 1 << width))
        value = 0
        remaining = width
        while remaining > 0:
            chunk = min(remaining, 62)
            value = (value << chunk) | int(self.rng.integers(0, 1 << chunk))
            remaining -= chunk
        return value

    def choice(self, options: Iterable[int]) -> int:
        """A random element of ``options``."""
        options = list(options)
        return options[int(self.rng.integers(0, len(options)))]

    def maybe(self, probability: float) -> bool:
        """True with the given probability."""
        return bool(self.rng.random() < probability)

    def build(self) -> Stimulus:
        """The accumulated stimulus."""
        return list(self._cycles)


def total_cycles(stimulus: Stimulus) -> int:
    """Length of a stimulus in clock cycles."""
    return len(stimulus)
