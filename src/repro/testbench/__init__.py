"""Per-IP training/evaluation stimuli and the benchmark registry.

``short_ts`` suites mirror the testbenches used for functional
verification (the paper's assumption for high-quality training traces);
``long_ts`` suites stimulate the same functionality many more times with
different data, as the paper's extended test sequences do.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Type

from ..core.mergeability import MergePolicy
from ..core.mining import MinerConfig
from ..core.pipeline import FlowConfig
from ..core.regression import RefinePolicy
from ..hdl.module import Module
from ..ips import Aes, Camellia, MultSum, Ram
from .cipher_tb import cipher_long_ts, cipher_short_ts, transaction
from .multsum_tb import multsum_long_ts, multsum_short_ts
from .ram_tb import ram_long_ts, ram_short_ts
from .stimuli import Stimulus, StimulusBuilder

#: Busy cycles of the AES core after ``start`` (10 rounds).
AES_LATENCY = 10
#: Busy cycles of the Camellia core (18 rounds + 2 FL layers).
CAMELLIA_LATENCY = 20


def aes_short_ts(seed: int = 3) -> Stimulus:
    """Directed verification suite for the AES core.

    The AES verification plan covers clock gating, so its PSMs see every
    behaviour the long suite exercises.
    """
    return cipher_short_ts(
        AES_LATENCY, has_mode=False, seed=seed, cover_gating=True
    )


def aes_long_ts(
    cycles: int = 20000, seed: int = 103, include_gating: bool = True
) -> Stimulus:
    """Extended random suite for the AES core."""
    return cipher_long_ts(
        AES_LATENCY,
        has_mode=False,
        cycles=cycles,
        seed=seed,
        include_gating=include_gating,
    )


def camellia_short_ts(seed: int = 4) -> Stimulus:
    """Directed verification suite for the Camellia core.

    This verification plan does *not* exercise clock gating — the long
    suite therefore exposes behaviours the PSMs never trained on, which
    reproduces the paper's high Camellia wrong-state-prediction rate
    (the paper attributes WSP to training traces that were incomplete
    with respect to the simulated ones).
    """
    return cipher_short_ts(
        CAMELLIA_LATENCY, has_mode=True, seed=seed, cover_gating=False
    )


def camellia_long_ts(
    cycles: int = 20000, seed: int = 104, include_gating: bool = True
) -> Stimulus:
    """Extended random suite for the Camellia core."""
    return cipher_long_ts(
        CAMELLIA_LATENCY,
        has_mode=True,
        cycles=cycles,
        seed=seed,
        include_gating=include_gating,
    )


def default_flow_config() -> FlowConfig:
    """The flow configuration used by the benchmark harness."""
    return FlowConfig(
        miner=MinerConfig(min_avg_run=3.0, max_distinct_for_const=8),
        merge=MergePolicy(epsilon_rel=0.05, alpha=0.05, max_cv=None),
        refine=RefinePolicy(
            cv_threshold=0.05, corr_threshold=0.7, min_samples=6
        ),
    )


@dataclass
class BenchmarkSpec:
    """Everything the benchmark harness needs for one IP."""

    name: str
    module_class: Type[Module]
    short_ts: Callable[..., Stimulus]
    long_ts: Callable[..., Stimulus]
    flow_config: Callable[[], FlowConfig] = field(
        default=default_flow_config
    )


#: The paper's four benchmarks, in Table I order.
BENCHMARKS: Dict[str, BenchmarkSpec] = {
    "RAM": BenchmarkSpec("RAM", Ram, ram_short_ts, ram_long_ts),
    "MultSum": BenchmarkSpec(
        "MultSum", MultSum, multsum_short_ts, multsum_long_ts
    ),
    "AES": BenchmarkSpec("AES", Aes, aes_short_ts, aes_long_ts),
    "Camellia": BenchmarkSpec(
        "Camellia", Camellia, camellia_short_ts, camellia_long_ts
    ),
}

__all__ = [
    "Stimulus",
    "StimulusBuilder",
    "transaction",
    "ram_short_ts",
    "ram_long_ts",
    "multsum_short_ts",
    "multsum_long_ts",
    "aes_short_ts",
    "aes_long_ts",
    "camellia_short_ts",
    "camellia_long_ts",
    "cipher_short_ts",
    "cipher_long_ts",
    "default_flow_config",
    "BenchmarkSpec",
    "BENCHMARKS",
    "AES_LATENCY",
    "CAMELLIA_LATENCY",
]
