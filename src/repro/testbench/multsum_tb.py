"""MultSum testbenches.

The MAC has no idle control: its behaviours are accumulate streams
punctuated by ``clear`` pulses.  The short-TS suite exercises directed
operand patterns (walking ones, extremes) and random streams; the
long-TS suite repeats random streams with fresh data.
"""

from __future__ import annotations

from .stimuli import Stimulus, StimulusBuilder

MULTSUM_DEFAULTS = {"a": 0, "b": 0, "c": 0, "clear": 0}


def _stream(tb: StimulusBuilder, length: int, gap: int = 0) -> None:
    """A clear pulse, a random accumulate stream, then a hold window.

    During the hold window the operand buses keep their last values, as a
    paused testbench would leave them; the MAC keeps accumulating the
    same product, which is its real idle-bus behaviour.
    """
    tb.cycle(clear=1, a=tb.rand_bits(16), b=tb.rand_bits(16), c=tb.rand_bits(16))
    a = b = c = 0
    for _ in range(length - 1):
        a, b, c = tb.rand_bits(16), tb.rand_bits(16), tb.rand_bits(16)
        tb.cycle(a=a, b=b, c=c)
    if gap:
        tb.hold(gap, a=a, b=b, c=c)


def multsum_short_ts(seed: int = 2) -> Stimulus:
    """Directed verification suite for the MAC (~1.2k cycles)."""
    tb = StimulusBuilder(MULTSUM_DEFAULTS, seed=seed)
    tb.cycle(clear=1)
    tb.hold(8)  # zero-operand settle
    # Short walking-ones sanity phase (functional corner checks).
    for bit in range(0, 16, 4):
        tb.cycle(a=1 << bit, b=1, c=0)
        tb.cycle(a=1, b=1 << bit, c=0)
    tb.cycle(clear=1)
    tb.hold(8)
    # Random streams of varying length — the workload the MAC is built
    # for, and the bulk of the verification suite.
    for _ in range(20):
        _stream(tb, 32 + int(tb.rng.integers(0, 33)), gap=4)
    return tb.build()


def multsum_long_ts(cycles: int = 20000, seed: int = 102) -> Stimulus:
    """Extended random suite: repeated accumulate streams."""
    tb = StimulusBuilder(MULTSUM_DEFAULTS, seed=seed)
    while len(tb) < cycles:
        _stream(
            tb,
            24 + int(tb.rng.integers(0, 80)),
            gap=2 + int(tb.rng.integers(0, 7)),
        )
    return tb.build()[:cycles]
