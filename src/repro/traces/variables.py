"""Variable metadata for functional traces.

A functional trace (paper Def. 2) records, per simulation instant, the value
of every observed variable: the primary inputs (PIs) and primary outputs
(POs) of the model under analysis.  ``VariableSpec`` carries the static
metadata of one such variable: its name, direction, kind and bit width.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Allowed variable directions.
DIRECTIONS = ("in", "out")

#: Allowed variable kinds.  ``bool`` variables take values {0, 1}; ``int``
#: variables take unsigned values representable on ``width`` bits.
KINDS = ("bool", "int")


@dataclass(frozen=True)
class VariableSpec:
    """Static description of one trace variable (a PI or a PO).

    Parameters
    ----------
    name:
        Unique identifier of the variable inside a trace.
    width:
        Bit width.  Must be 1 for ``bool`` variables.
    direction:
        ``"in"`` for primary inputs, ``"out"`` for primary outputs.
    kind:
        ``"bool"`` or ``"int"``.
    """

    name: str
    width: int = 1
    direction: str = "in"
    kind: str = "bool"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"direction must be one of {DIRECTIONS}, got {self.direction!r}"
            )
        if self.kind not in KINDS:
            raise ValueError(f"kind must be one of {KINDS}, got {self.kind!r}")
        if self.width < 1:
            raise ValueError(f"width must be >= 1, got {self.width}")
        if self.kind == "bool" and self.width != 1:
            raise ValueError("bool variables must have width 1")

    @property
    def is_input(self) -> bool:
        """True when the variable is a primary input."""
        return self.direction == "in"

    @property
    def is_output(self) -> bool:
        """True when the variable is a primary output."""
        return self.direction == "out"

    @property
    def max_value(self) -> int:
        """Largest unsigned value representable on this variable."""
        return (1 << self.width) - 1

    def validate_value(self, value: int) -> int:
        """Check that ``value`` fits the declared width and return it.

        Raises
        ------
        ValueError
            If the value is negative or does not fit ``width`` bits.
        """
        value = int(value)
        if value < 0 or value > self.max_value:
            raise ValueError(
                f"value {value} out of range for {self.name} "
                f"(width {self.width})"
            )
        return value


def bool_in(name: str) -> VariableSpec:
    """Shorthand for a 1-bit input variable."""
    return VariableSpec(name, 1, "in", "bool")


def bool_out(name: str) -> VariableSpec:
    """Shorthand for a 1-bit output variable."""
    return VariableSpec(name, 1, "out", "bool")


def int_in(name: str, width: int) -> VariableSpec:
    """Shorthand for a multi-bit input variable."""
    return VariableSpec(name, width, "in", "int")


def int_out(name: str, width: int) -> VariableSpec:
    """Shorthand for a multi-bit output variable."""
    return VariableSpec(name, width, "out", "int")
