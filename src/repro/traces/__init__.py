"""Trace data structures (paper Definition 2) and their serialisation."""

from .functional import FunctionalTrace, popcount
from .io import (
    load_functional_csv,
    load_power_csv,
    load_training_pair,
    save_functional_csv,
    save_power_csv,
    save_training_pair,
)
from .power import PowerTrace
from .variables import (
    VariableSpec,
    bool_in,
    bool_out,
    int_in,
    int_out,
)

__all__ = [
    "FunctionalTrace",
    "PowerTrace",
    "VariableSpec",
    "bool_in",
    "bool_out",
    "int_in",
    "int_out",
    "popcount",
    "save_functional_csv",
    "load_functional_csv",
    "save_power_csv",
    "load_power_csv",
    "save_training_pair",
    "load_training_pair",
]
