"""Power traces (paper Definition 2).

A power trace is a finite sequence ``<delta_1 ... delta_n>`` where
``delta_i`` is the dynamic energy consumption of the model at simulation
instant ``t_i`` according to

    delta_i = 1/2 * Vdd^2 * f * C * alpha(t_i)

with ``C`` the total switched capacitance, ``Vdd`` the supply voltage,
``f`` the clock frequency and ``alpha(t_i)`` the switching activity.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence, Tuple

import numpy as np


class PowerTrace:
    """A sequence of per-instant dynamic power values.

    Values are stored as an immutable float64 array.  All statistics used by
    the paper (mean / standard deviation over an inclusive interval, the
    *power attributes* of a PSM state) are provided as methods.
    """

    def __init__(self, values: Sequence[float], name: str = "power") -> None:
        self.name = name
        if isinstance(values, np.ndarray):
            arr = np.array(values, dtype=np.float64, copy=True)
        else:
            arr = np.asarray(list(values), dtype=np.float64)
        if arr.ndim != 1:
            raise ValueError("power trace must be one-dimensional")
        if not np.all(np.isfinite(arr)):
            raise ValueError("power values must be finite")
        if np.any(arr < 0):
            raise ValueError("dynamic power values must be non-negative")
        arr.setflags(write=False)
        self._values = arr

    @property
    def values(self) -> np.ndarray:
        """The raw per-instant power values."""
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __getitem__(self, instant: int) -> float:
        return float(self._values[instant])

    def __iter__(self) -> Iterable[float]:
        return iter(self._values)

    def segment(self, start: int, stop: int) -> np.ndarray:
        """Values over the inclusive interval ``[start, stop]``."""
        self._check_interval(start, stop)
        return self._values[start : stop + 1]

    def attributes(self, start: int, stop: int) -> Tuple[float, float, int]:
        """Power attributes ``(mu, sigma, n)`` over ``[start, stop]``.

        ``n = stop - start + 1`` is the number of instants, ``mu`` the mean
        of the power values in the interval and ``sigma`` their (population)
        standard deviation, exactly as used by ``getPowerAttributes`` in the
        paper's Fig. 4 procedure.
        """
        seg = self.segment(start, stop)
        n = stop - start + 1
        mu = float(np.mean(seg))
        sigma = float(np.std(seg))
        return mu, sigma, n

    def mean(self) -> float:
        """Mean power over the whole trace."""
        return float(np.mean(self._values)) if len(self) else 0.0

    def slice(self, start: int, stop: int) -> "PowerTrace":
        """A copy restricted to the inclusive interval ``[start, stop]``."""
        return PowerTrace(
            self.segment(start, stop), name=f"{self.name}[{start}:{stop}]"
        )

    def concat(self, other: "PowerTrace") -> "PowerTrace":
        """A new trace that plays ``self`` followed by ``other``."""
        return PowerTrace(
            np.concatenate([self._values, other._values]),
            name=f"{self.name}+{other.name}",
        )

    def with_noise(
        self, sigma: float, seed: Optional[int] = None
    ) -> "PowerTrace":
        """A copy with additive Gaussian noise (clipped at zero).

        Used by tests and ablations to model measurement noise of the
        reference power simulator.
        """
        rng = np.random.default_rng(seed)
        noisy = np.clip(
            self._values + rng.normal(0.0, sigma, size=len(self)), 0.0, None
        )
        return PowerTrace(noisy, name=f"{self.name}+noise")

    def _check_interval(self, start: int, stop: int) -> None:
        if start < 0 or stop >= len(self) or start > stop:
            raise IndexError(
                f"bad interval [{start}, {stop}] for trace of length {len(self)}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"PowerTrace({self.name!r}, len={len(self)})"
