"""Functional traces (paper Definition 2).

A functional trace of a model ``M`` is a finite sequence ``<phi_1 ... phi_n>``
where ``phi_i = eval(V, t_i)`` is the evaluation of the observed variables
``V`` (primary inputs and outputs of ``M``) at simulation instant ``t_i``.

The trace is stored column-wise as one :class:`numpy.ndarray` per variable so
the assertion miner can evaluate candidate atomic propositions with
vectorised operations over the whole trace.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from .variables import VariableSpec


class FunctionalTrace:
    """Column-oriented store of variable values over simulation instants.

    Parameters
    ----------
    variables:
        Ordered variable specifications.
    columns:
        Optional mapping ``name -> sequence of values``; all columns must
        share the same length.  When omitted an empty trace is created and
        rows can be appended with :meth:`append`.
    name:
        Optional label (used in reports and serialised files).
    """

    def __init__(
        self,
        variables: Sequence[VariableSpec],
        columns: Optional[Mapping[str, Sequence[int]]] = None,
        name: str = "trace",
    ) -> None:
        if not variables:
            raise ValueError("a functional trace needs at least one variable")
        names = [v.name for v in variables]
        if len(set(names)) != len(names):
            raise ValueError("duplicate variable names in trace")
        self.name = name
        self._variables: List[VariableSpec] = list(variables)
        self._index: Dict[str, VariableSpec] = {v.name: v for v in variables}
        self._columns: Dict[str, List[int]] = {v.name: [] for v in variables}
        self._frozen: Dict[str, np.ndarray] = {}
        self._hd_cache: Dict[tuple, np.ndarray] = {}
        self._derived: Dict[object, object] = {}
        if columns is not None:
            missing = [v.name for v in variables if v.name not in columns]
            if missing:
                raise ValueError(f"missing columns for variables: {missing}")
            lengths = {len(columns[v.name]) for v in variables}
            if len(lengths) > 1:
                raise ValueError("all columns must have the same length")
            for var in variables:
                self._columns[var.name] = [int(x) for x in columns[var.name]]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def append(self, row: Mapping[str, int]) -> None:
        """Append one simulation instant; ``row`` maps name -> value."""
        self._frozen.clear()
        self._hd_cache.clear()
        self._derived.clear()
        for var in self._variables:
            if var.name not in row:
                raise KeyError(f"row is missing variable {var.name!r}")
            self._columns[var.name].append(var.validate_value(row[var.name]))

    def extend(self, rows: Iterable[Mapping[str, int]]) -> None:
        """Append several simulation instants in one bulk operation.

        The rows are validated column-wise into staging lists first and
        committed together, so a bad row leaves the trace unchanged and
        the frozen column cache is invalidated once per call instead of
        once per row.
        """
        staged: Dict[str, List[int]] = {v.name: [] for v in self._variables}
        for row in rows:
            for var in self._variables:
                if var.name not in row:
                    raise KeyError(f"row is missing variable {var.name!r}")
                staged[var.name].append(var.validate_value(row[var.name]))
        if not staged[self._variables[0].name]:
            return
        self._frozen.clear()
        self._hd_cache.clear()
        self._derived.clear()
        for name, values in staged.items():
            self._columns[name].extend(values)

    def extend_columns(self, columns: Mapping[str, Sequence]) -> None:
        """Append whole columns at once, validating them vectorised.

        ``columns`` maps every variable name to an equal-length sequence
        of values — ints, decimal strings (as read from CSV) or a numpy
        array.  Narrow variables (width <= 62) are range-checked as one
        int64 array instead of one ``validate_value`` call per row, which
        is what makes million-cycle trace ingestion Python-loop free;
        wide (cipher-bus) variables keep the per-value path.  Validation
        is staged: a bad value leaves the trace unchanged.
        """
        missing = [v.name for v in self._variables if v.name not in columns]
        if missing:
            raise KeyError(f"columns missing for variables: {missing}")
        staged: Dict[str, List[int]] = {}
        lengths = set()
        for var in self._variables:
            values = columns[var.name]
            staged[var.name] = self._validate_column(var, values)
            lengths.add(len(staged[var.name]))
        if len(lengths) > 1:
            raise ValueError("all columns must have the same length")
        if not lengths or lengths == {0}:
            return
        self._frozen.clear()
        self._hd_cache.clear()
        self._derived.clear()
        for name, values in staged.items():
            self._columns[name].extend(values)

    @staticmethod
    def _validate_column(var: VariableSpec, values: Sequence) -> List[int]:
        """Range-check one column; vectorised for narrow variables."""
        if var.width <= 62:
            try:
                arr = np.asarray(values, dtype=np.int64)
            except (OverflowError, ValueError, TypeError):
                # Out-of-int64 or non-numeric values: the scalar path
                # produces the canonical per-value error message.
                return [var.validate_value(x) for x in values]
            if arr.ndim != 1:
                raise ValueError(f"column {var.name!r} must be 1-D")
            bad = np.nonzero((arr < 0) | (arr > var.max_value))[0]
            if len(bad):
                value = int(arr[bad[0]])
                raise ValueError(
                    f"value {value} out of range for {var.name} "
                    f"(width {var.width})"
                )
            return arr.tolist()
        return [var.validate_value(x) for x in values]

    @classmethod
    def from_arrays(
        cls,
        variables: Sequence[VariableSpec],
        columns: Mapping[str, Sequence],
        name: str = "trace",
    ) -> "FunctionalTrace":
        """Build a trace from whole columns with vectorised validation.

        The bulk counterpart of the row-oriented constructor: equivalent
        to ``FunctionalTrace(variables, columns, name)`` but without a
        Python-level ``int()``/``validate_value`` call per cell.
        """
        trace = cls(variables, name=name)
        trace.extend_columns(columns)
        return trace

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def variables(self) -> List[VariableSpec]:
        """The ordered variable specifications."""
        return list(self._variables)

    @property
    def variable_names(self) -> List[str]:
        """The ordered variable names."""
        return [v.name for v in self._variables]

    @property
    def inputs(self) -> List[VariableSpec]:
        """Specifications of the primary-input variables."""
        return [v for v in self._variables if v.is_input]

    @property
    def outputs(self) -> List[VariableSpec]:
        """Specifications of the primary-output variables."""
        return [v for v in self._variables if v.is_output]

    def spec(self, name: str) -> VariableSpec:
        """The :class:`VariableSpec` for ``name``."""
        return self._index[name]

    def __len__(self) -> int:
        return len(self._columns[self._variables[0].name])

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def column(self, name: str) -> np.ndarray:
        """All values of variable ``name`` as an immutable array.

        Variables up to 62 bits use an int64 array; wider variables (the
        ciphers' 128-bit buses) fall back to an object array of Python
        ints, which numpy comparison/xor ufuncs still handle.
        """
        if name not in self._frozen:
            if self._index[name].width <= 62:
                arr = np.asarray(self._columns[name], dtype=np.int64)
            else:
                arr = np.empty(len(self._columns[name]), dtype=object)
                arr[:] = self._columns[name]
            arr.setflags(write=False)
            self._frozen[name] = arr
        return self._frozen[name]

    def at(self, instant: int) -> Dict[str, int]:
        """The variable assignment at a given simulation instant."""
        n = len(self)
        if instant < 0 or instant >= n:
            raise IndexError(f"instant {instant} out of range [0, {n})")
        return {
            v.name: self._columns[v.name][instant] for v in self._variables
        }

    def rows(self) -> Iterator[Dict[str, int]]:
        """Iterate over instants as variable assignments."""
        for i in range(len(self)):
            yield self.at(i)

    def input_vector(self, instant: int) -> Dict[str, int]:
        """Values of only the input variables at ``instant``."""
        row = self.at(instant)
        return {v.name: row[v.name] for v in self.inputs}

    def slice(self, start: int, stop: int) -> "FunctionalTrace":
        """A copy of the trace restricted to instants ``[start, stop]``.

        Both bounds are inclusive, matching the interval convention used by
        the paper's power attributes.
        """
        if start < 0 or stop >= len(self) or start > stop:
            raise IndexError(f"bad interval [{start}, {stop}] for len {len(self)}")
        cols = {
            v.name: self._columns[v.name][start : stop + 1]
            for v in self._variables
        }
        return FunctionalTrace(
            self._variables, cols, name=f"{self.name}[{start}:{stop}]"
        )

    def concat(self, other: "FunctionalTrace") -> "FunctionalTrace":
        """A new trace that plays ``self`` followed by ``other``."""
        if self.variable_names != other.variable_names:
            raise ValueError("traces have different variable sets")
        cols = {
            name: self._columns[name] + other._columns[name]
            for name in self.variable_names
        }
        return FunctionalTrace(
            self._variables, cols, name=f"{self.name}+{other.name}"
        )

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------
    def cache_get(self, key):
        """Look up derived data attached to this trace (or ``None``).

        Consumers (the proposition labeler, the compiled simulators)
        memoise whole-trace derivations here; the cache is invalidated
        whenever the trace mutates, exactly like the frozen-column and
        Hamming-distance caches.
        """
        return self._derived.get(key)

    def cache_set(self, key, value) -> None:
        """Attach derived data to this trace (see :meth:`cache_get`)."""
        self._derived[key] = value

    def hamming_distances(
        self, names: Optional[Sequence[str]] = None
    ) -> np.ndarray:
        """Hamming distance between consecutive instants.

        ``result[i]`` is the number of bits that changed between instants
        ``i-1`` and ``i`` over the selected variables; ``result[0]`` is 0.
        This is the predictor used by the data-dependent linear-regression
        refinement (paper Sec. IV).  The default observes all variables —
        PIs and POs — matching the paper's RAM discussion, where the
        regression "relates the RAM's internal switching activity with the
        power consumption by observing the behaviours of PIs and POs".
        """
        if names is None:
            names = [v.name for v in self._variables]
        key = tuple(names)
        cached = self._hd_cache.get(key)
        if cached is not None:
            return cached
        n = len(self)
        total = np.zeros(n, dtype=np.int64)
        for name in names:
            col = self.column(name)
            if col.dtype == object:
                # Wide (cipher-bus) columns hold Python ints; int.bit_count
                # is a single CPython opcode per value.
                values = self._columns[name]
                pops = [0] * n
                for i in range(1, n):
                    pops[i] = (values[i] ^ values[i - 1]).bit_count()
                total += np.asarray(pops, dtype=np.int64)
            else:
                diff = np.zeros(n, dtype=np.int64)
                diff[1:] = col[1:] ^ col[:-1]
                total += popcount(diff)
        total.setflags(write=False)
        self._hd_cache[key] = total
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"FunctionalTrace({self.name!r}, vars={len(self._variables)}, "
            f"len={len(self)})"
        )


class ArrayTrace:
    """Read-only trace view over pre-built numpy columns (zero-copy).

    Implements the subset of the :class:`FunctionalTrace` protocol the
    labeler and the simulators consume — ``variables`` / ``column`` /
    ``hamming_distances`` / ``__len__`` / the derived-data cache — while
    borrowing the caller's arrays instead of copying them into Python
    lists.  This is the serving layer's ``.npt`` fast path: columns
    decoded by :class:`~repro.traces.io.BinaryTraceReader` (memmap or
    ``frombuffer`` views) feed the compiled kernels without a row-wise
    rebuild.

    Narrow columns must already be ``int64``; wide (>62-bit) columns are
    object arrays of Python ints.  Values are trusted, not re-validated:
    the binary container's writer validated them once.
    """

    def __init__(
        self,
        variables: Sequence[VariableSpec],
        columns: Mapping[str, np.ndarray],
        name: str = "trace",
    ) -> None:
        if not variables:
            raise ValueError("a trace needs at least one variable")
        self.name = name
        self._variables: List[VariableSpec] = list(variables)
        self._index: Dict[str, VariableSpec] = {v.name: v for v in variables}
        self._frozen: Dict[str, np.ndarray] = {}
        lengths = set()
        for var in self._variables:
            if var.name not in columns:
                raise KeyError(f"missing column for variable {var.name!r}")
            arr = columns[var.name]
            if not isinstance(arr, np.ndarray) or arr.ndim != 1:
                raise ValueError(f"column {var.name!r} must be a 1-D array")
            if var.width <= 62 and arr.dtype != np.int64:
                arr = arr.astype(np.int64)  # normalise, copies only if needed
            if arr.flags.writeable:
                try:
                    arr.setflags(write=False)
                except ValueError:
                    arr = arr.copy()
                    arr.setflags(write=False)
            lengths.add(len(arr))
            self._frozen[var.name] = arr
        if len(lengths) > 1:
            raise ValueError("all columns must have the same length")
        self._n = lengths.pop() if lengths else 0
        self._hd_cache: Dict[tuple, np.ndarray] = {}
        self._derived: Dict[object, object] = {}

    # -- FunctionalTrace protocol subset -------------------------------
    @property
    def variables(self) -> List[VariableSpec]:
        return list(self._variables)

    @property
    def variable_names(self) -> List[str]:
        return [v.name for v in self._variables]

    def spec(self, name: str) -> VariableSpec:
        """The :class:`VariableSpec` for ``name``."""
        return self._index[name]

    def __len__(self) -> int:
        return self._n

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def column(self, name: str) -> np.ndarray:
        """All values of variable ``name`` — the borrowed array itself."""
        return self._frozen[name]

    def cache_get(self, key):
        """Derived-data cache (never invalidated: the view is immutable)."""
        return self._derived.get(key)

    def cache_set(self, key, value) -> None:
        """Attach derived data to this view (see :meth:`cache_get`)."""
        self._derived[key] = value

    def hamming_distances(
        self, names: Optional[Sequence[str]] = None
    ) -> np.ndarray:
        """Same definition (and bit-identical result) as the list-backed
        trace: per-instant popcount of the XOR between consecutive rows."""
        if names is None:
            names = [v.name for v in self._variables]
        key = tuple(names)
        cached = self._hd_cache.get(key)
        if cached is not None:
            return cached
        n = self._n
        total = np.zeros(n, dtype=np.int64)
        for name in names:
            col = self.column(name)
            if col.dtype == object:
                values = col
                pops = [0] * n
                for i in range(1, n):
                    pops[i] = (values[i] ^ values[i - 1]).bit_count()
                total += np.asarray(pops, dtype=np.int64)
            else:
                diff = np.zeros(n, dtype=np.int64)
                diff[1:] = col[1:] ^ col[:-1]
                total += popcount(diff)
        total.setflags(write=False)
        self._hd_cache[key] = total
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"ArrayTrace({self.name!r}, vars={len(self._variables)}, "
            f"len={self._n})"
        )


def popcount(values: np.ndarray) -> np.ndarray:
    """Vectorised population count of non-negative int64 values."""
    if hasattr(np, "bitwise_count"):  # numpy >= 2.0
        return np.bitwise_count(values).astype(np.int64)
    out = np.zeros_like(values)
    work = values.copy()
    while np.any(work):
        out += work & 1
        work >>= 1
    return out
