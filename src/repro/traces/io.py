"""Serialisation of functional and power traces.

Traces are exchanged as plain CSV (one column per variable, one row per
instant) with a JSON sidecar describing the variables, or as a single JSON
document.  The CSV form is what the command-line tool consumes so traces
produced by external simulators can be fed to the flow.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Tuple, Union

from .functional import FunctionalTrace
from .power import PowerTrace
from .variables import VariableSpec

PathLike = Union[str, Path]


def save_functional_csv(trace: FunctionalTrace, path: PathLike) -> None:
    """Write a functional trace as CSV plus a ``.vars.json`` sidecar."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(trace.variable_names)
        for row in trace.rows():
            writer.writerow([row[name] for name in trace.variable_names])
    sidecar = path.with_suffix(path.suffix + ".vars.json")
    spec = [
        {
            "name": v.name,
            "width": v.width,
            "direction": v.direction,
            "kind": v.kind,
        }
        for v in trace.variables
    ]
    sidecar.write_text(json.dumps({"name": trace.name, "variables": spec}))


def load_functional_csv(path: PathLike) -> FunctionalTrace:
    """Read a functional trace written by :func:`save_functional_csv`."""
    path = Path(path)
    sidecar = path.with_suffix(path.suffix + ".vars.json")
    meta = json.loads(sidecar.read_text())
    variables = [VariableSpec(**v) for v in meta["variables"]]
    columns = {v.name: [] for v in variables}
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        if header != [v.name for v in variables]:
            raise ValueError("CSV header does not match variable sidecar")
        for row in reader:
            for name, value in zip(header, row):
                columns[name].append(int(value))
    return FunctionalTrace(variables, columns, name=meta.get("name", "trace"))


def functional_trace_to_json(trace: FunctionalTrace) -> dict:
    """One-document JSON form of a functional trace.

    The wire format of the estimation server (``POST /v1/estimate``):
    variable declarations plus column vectors, self-contained — no
    ``.vars.json`` sidecar needed.  Round-trips exactly through
    :func:`functional_trace_from_json`.
    """
    return {
        "name": trace.name,
        "variables": [
            {
                "name": v.name,
                "width": v.width,
                "direction": v.direction,
                "kind": v.kind,
            }
            for v in trace.variables
        ],
        "columns": {
            v.name: [int(x) for x in trace.column(v.name)]
            for v in trace.variables
        },
    }


def functional_trace_from_json(data: dict) -> FunctionalTrace:
    """Rebuild a functional trace from :func:`functional_trace_to_json`."""
    variables = [VariableSpec(**v) for v in data["variables"]]
    return FunctionalTrace(
        variables, data["columns"], name=data.get("name", "trace")
    )


def save_power_csv(trace: PowerTrace, path: PathLike) -> None:
    """Write a power trace as a one-column CSV."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["power"])
        for value in trace.values:
            writer.writerow([repr(float(value))])


def load_power_csv(path: PathLike) -> PowerTrace:
    """Read a power trace written by :func:`save_power_csv`."""
    path = Path(path)
    values = []
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        if header != ["power"]:
            raise ValueError("expected single 'power' column")
        for row in reader:
            values.append(float(row[0]))
    return PowerTrace(values, name=path.stem)


def save_training_pair(
    functional: FunctionalTrace,
    power: PowerTrace,
    prefix: PathLike,
) -> Tuple[Path, Path]:
    """Persist a matching (functional, power) training pair.

    Returns the two file paths ``<prefix>.func.csv`` / ``<prefix>.power.csv``.
    """
    if len(functional) != len(power):
        raise ValueError("functional and power traces must have equal length")
    prefix = Path(prefix)
    func_path = prefix.with_suffix(".func.csv")
    power_path = prefix.with_suffix(".power.csv")
    save_functional_csv(functional, func_path)
    save_power_csv(power, power_path)
    return func_path, power_path


def load_training_pair(prefix: PathLike) -> Tuple[FunctionalTrace, PowerTrace]:
    """Load a pair written by :func:`save_training_pair`."""
    prefix = Path(prefix)
    functional = load_functional_csv(prefix.with_suffix(".func.csv"))
    power = load_power_csv(prefix.with_suffix(".power.csv"))
    if len(functional) != len(power):
        raise ValueError("functional and power traces must have equal length")
    return functional, power
