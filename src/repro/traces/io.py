"""Serialisation of functional and power traces.

Traces are exchanged as plain CSV (one column per variable, one row per
instant) with a JSON sidecar describing the variables, or as a single JSON
document.  The CSV form is what the command-line tool consumes so traces
produced by external simulators can be fed to the flow.

For long training traces there is additionally a packed binary container
(``.npt``): a JSON header describing the variables followed by raw
little-endian column blocks, so million-cycle training pairs load as
single ``numpy`` reads — optionally memory-mapped or streamed in chunks —
instead of one Python ``csv`` row at a time.  CSV remains the
compatibility path; ``psmgen convert`` translates between the two and the
round trip is exact.
"""

from __future__ import annotations

import csv
import json
import struct
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from .functional import ArrayTrace, FunctionalTrace
from .power import PowerTrace
from .variables import VariableSpec

PathLike = Union[str, Path]

#: Magic prefix of the packed binary trace container.
BINARY_MAGIC = b"PSMT\x01\n"

#: Schema identifier stored in the binary container's JSON header.
BINARY_FORMAT = "psmgen-trace/v1"

#: Data blocks are aligned to this many bytes so memory-mapped column
#: views start on cache-line boundaries.
_BINARY_ALIGN = 64


def save_functional_csv(trace: FunctionalTrace, path: PathLike) -> None:
    """Write a functional trace as CSV plus a ``.vars.json`` sidecar."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(trace.variable_names)
        for row in trace.rows():
            writer.writerow([row[name] for name in trace.variable_names])
    sidecar = path.with_suffix(path.suffix + ".vars.json")
    spec = [
        {
            "name": v.name,
            "width": v.width,
            "direction": v.direction,
            "kind": v.kind,
        }
        for v in trace.variables
    ]
    sidecar.write_text(json.dumps({"name": trace.name, "variables": spec}))


def load_functional_csv(path: PathLike) -> FunctionalTrace:
    """Read a functional trace written by :func:`save_functional_csv`.

    Rows are transposed into whole columns and range-checked through the
    vectorised :meth:`FunctionalTrace.extend_columns` fast path (numpy
    parses decimal strings directly) instead of one ``int()`` call per
    cell.
    """
    path = Path(path)
    sidecar = path.with_suffix(path.suffix + ".vars.json")
    meta = json.loads(sidecar.read_text())
    variables = [VariableSpec(**v) for v in meta["variables"]]
    with path.open(newline="") as fh:
        reader = csv.reader(fh)
        header = next(reader)
        if header != [v.name for v in variables]:
            raise ValueError("CSV header does not match variable sidecar")
        rows = list(reader)
    trace = FunctionalTrace(variables, name=meta.get("name", "trace"))
    if rows:
        width = len(header)
        for k, row in enumerate(rows):
            if len(row) != width:
                raise ValueError(
                    f"CSV row {k + 2} has {len(row)} fields; "
                    f"expected {width}"
                )
        trace.extend_columns(dict(zip(header, zip(*rows))))
    return trace


def functional_trace_to_json(trace: FunctionalTrace) -> dict:
    """One-document JSON form of a functional trace.

    The wire format of the estimation server (``POST /v1/estimate``):
    variable declarations plus column vectors, self-contained — no
    ``.vars.json`` sidecar needed.  Round-trips exactly through
    :func:`functional_trace_from_json`.
    """
    return {
        "name": trace.name,
        "variables": [
            {
                "name": v.name,
                "width": v.width,
                "direction": v.direction,
                "kind": v.kind,
            }
            for v in trace.variables
        ],
        "columns": {
            v.name: [int(x) for x in trace.column(v.name)]
            for v in trace.variables
        },
    }


def functional_trace_from_json(data: dict) -> FunctionalTrace:
    """Rebuild a functional trace from :func:`functional_trace_to_json`."""
    variables = [VariableSpec(**v) for v in data["variables"]]
    return FunctionalTrace(
        variables, data["columns"], name=data.get("name", "trace")
    )


def save_power_csv(trace: PowerTrace, path: PathLike) -> None:
    """Write a power trace as a one-column CSV."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["power"])
        for value in trace.values:
            writer.writerow([repr(float(value))])


def load_power_csv(path: PathLike) -> PowerTrace:
    """Read a power trace written by :func:`save_power_csv`.

    The single column is parsed as one numpy array instead of one
    ``float()`` call per row; ``repr`` round-tripping keeps every value
    bit-exact.
    """
    path = Path(path)
    lines = path.read_text().splitlines()
    if not lines or lines[0] != "power":
        raise ValueError("expected single 'power' column")
    body = [line for line in lines[1:] if line]
    values = (
        np.asarray(body, dtype=np.float64)
        if body
        else np.zeros(0, dtype=np.float64)
    )
    return PowerTrace(values, name=path.stem)


def save_training_pair(
    functional: FunctionalTrace,
    power: PowerTrace,
    prefix: PathLike,
) -> Tuple[Path, Path]:
    """Persist a matching (functional, power) training pair.

    Returns the two file paths ``<prefix>.func.csv`` / ``<prefix>.power.csv``.
    """
    if len(functional) != len(power):
        raise ValueError("functional and power traces must have equal length")
    prefix = Path(prefix)
    func_path = prefix.with_suffix(".func.csv")
    power_path = prefix.with_suffix(".power.csv")
    save_functional_csv(functional, func_path)
    save_power_csv(power, power_path)
    return func_path, power_path


def load_training_pair(prefix: PathLike) -> Tuple[FunctionalTrace, PowerTrace]:
    """Load a pair written by :func:`save_training_pair`."""
    prefix = Path(prefix)
    functional = load_functional_csv(prefix.with_suffix(".func.csv"))
    power = load_power_csv(prefix.with_suffix(".power.csv"))
    if len(functional) != len(power):
        raise ValueError("functional and power traces must have equal length")
    return functional, power


# ----------------------------------------------------------------------
# packed binary container (.npt)
# ----------------------------------------------------------------------


def _limb_count(width: int) -> int:
    """uint64 limbs needed for an unsigned value of ``width`` bits."""
    return (width + 63) // 64


def _align_up(offset: int) -> int:
    return (offset + _BINARY_ALIGN - 1) & ~(_BINARY_ALIGN - 1)


def _pack_wide(values: Sequence[int], limbs: int) -> np.ndarray:
    """Pack arbitrary-width unsigned ints into an ``(n, limbs)`` matrix.

    Limb ``l`` of row ``k`` holds bits ``[64 * l, 64 * (l + 1))`` of
    ``values[k]`` (little-endian limb order).
    """
    obj = np.empty(len(values), dtype=object)
    obj[:] = list(values)
    mask = (1 << 64) - 1
    out = np.empty((len(values), limbs), dtype=np.uint64)
    for limb in range(limbs):
        out[:, limb] = ((obj >> (64 * limb)) & mask).astype(np.uint64)
    return out


def _unpack_wide(matrix: np.ndarray) -> List[int]:
    """Inverse of :func:`_pack_wide`: rows back to Python ints."""
    total = np.zeros(len(matrix), dtype=object)
    for limb in range(matrix.shape[1]):
        total += matrix[:, limb].astype(object) << (64 * limb)
    return total.tolist()


def _variable_spec_json(variables: Sequence[VariableSpec]) -> List[dict]:
    return [
        {
            "name": v.name,
            "width": v.width,
            "direction": v.direction,
            "kind": v.kind,
        }
        for v in variables
    ]


def _write_container(
    path: Path,
    name: str,
    length: int,
    variables: Sequence[VariableSpec],
    column_blocks: Sequence[np.ndarray],
    power_values: Optional[np.ndarray],
) -> None:
    """Serialise header + aligned raw blocks to ``path``."""
    records: List[dict] = []
    blocks: List[Tuple[int, bytes]] = []
    offset = 0

    def add_block(record: dict, raw: bytes) -> None:
        nonlocal offset
        offset = _align_up(offset)
        record["offset"] = offset
        record["nbytes"] = len(raw)
        records.append(record)
        blocks.append((offset, raw))
        offset += len(raw)

    for var, block in zip(variables, column_blocks):
        if block.dtype == np.int64:
            record = {"name": var.name, "dtype": "<i8", "limbs": 0}
            raw = np.ascontiguousarray(block, dtype="<i8").tobytes()
        else:
            record = {
                "name": var.name,
                "dtype": "<u8",
                "limbs": int(block.shape[1]),
            }
            raw = np.ascontiguousarray(block, dtype="<u8").tobytes()
        add_block(record, raw)
    power_record: Optional[dict] = None
    if power_values is not None:
        power_record = {"dtype": "<f8", "limbs": 0}
        add_block(
            power_record,
            np.ascontiguousarray(power_values, dtype="<f8").tobytes(),
        )
        records.pop()  # the power block is described separately

    header = {
        "format": BINARY_FORMAT,
        "name": name,
        "length": length,
        "variables": _variable_spec_json(variables),
        "columns": records,
        "power": power_record,
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    data_start = _align_up(len(BINARY_MAGIC) + 8 + len(header_bytes))
    with path.open("wb") as fh:
        fh.write(BINARY_MAGIC)
        fh.write(struct.pack("<Q", len(header_bytes)))
        fh.write(header_bytes)
        position = len(BINARY_MAGIC) + 8 + len(header_bytes)
        for block_offset, raw in blocks:
            target = data_start + block_offset
            fh.write(b"\x00" * (target - position))
            fh.write(raw)
            position = target + len(raw)


def _functional_blocks(
    trace: FunctionalTrace,
) -> List[np.ndarray]:
    """One raw block per variable: int64 vector or uint64 limb matrix."""
    blocks: List[np.ndarray] = []
    for var in trace.variables:
        if var.width <= 62:
            blocks.append(
                np.asarray(trace.column(var.name), dtype=np.int64)
            )
        else:
            blocks.append(
                _pack_wide(
                    list(trace.column(var.name)), _limb_count(var.width)
                )
            )
    return blocks


def save_functional_bin(trace: FunctionalTrace, path: PathLike) -> None:
    """Write a functional trace as a packed binary container."""
    _write_container(
        Path(path),
        trace.name,
        len(trace),
        trace.variables,
        _functional_blocks(trace),
        None,
    )


def save_power_bin(trace: PowerTrace, path: PathLike) -> None:
    """Write a power trace as a packed binary container."""
    _write_container(
        Path(path), trace.name, len(trace), [], [], trace.values
    )


def save_training_bin(
    functional: FunctionalTrace, power: PowerTrace, path: PathLike
) -> Path:
    """Persist a (functional, power) training pair as one ``.npt`` file."""
    if len(functional) != len(power):
        raise ValueError("functional and power traces must have equal length")
    path = Path(path)
    _write_container(
        path,
        functional.name,
        len(functional),
        functional.variables,
        _functional_blocks(functional),
        power.values,
    )
    return path


class BinaryTraceReader:
    """Random-access reader of the packed binary trace container.

    Parses the JSON header once; column and power data are then read on
    demand — fully, in ``[start, start + count)`` windows for chunked
    streaming, or as read-only memory maps that never materialise the
    file in RAM.  :meth:`from_bytes` reads the same container straight
    out of an in-memory buffer (e.g. an HTTP request body) with
    ``np.frombuffer`` views instead of file reads.
    """

    def __init__(self, path: PathLike) -> None:
        self.path: Optional[Path] = Path(path)
        self._buffer: Optional[bytes] = None
        with self.path.open("rb") as fh:
            magic = fh.read(len(BINARY_MAGIC))
            if magic != BINARY_MAGIC:
                raise ValueError(f"{self.path}: not a psmgen binary trace")
            (header_len,) = struct.unpack("<Q", fh.read(8))
            header = json.loads(fh.read(header_len).decode("utf-8"))
        self._init_header(header, header_len)

    @classmethod
    def from_bytes(cls, data) -> "BinaryTraceReader":
        """Reader over an in-memory container (zero-copy column views)."""
        reader = cls.__new__(cls)
        reader.path = None
        reader._buffer = (
            data if isinstance(data, bytes) else bytes(data)
        )
        prefix = len(BINARY_MAGIC)
        if reader._buffer[:prefix] != BINARY_MAGIC:
            raise ValueError("buffer is not a psmgen binary trace")
        if len(reader._buffer) < prefix + 8:
            raise ValueError("truncated binary trace buffer")
        (header_len,) = struct.unpack_from("<Q", reader._buffer, prefix)
        header_end = prefix + 8 + header_len
        if len(reader._buffer) < header_end:
            raise ValueError("truncated binary trace buffer")
        header = json.loads(
            reader._buffer[prefix + 8 : header_end].decode("utf-8")
        )
        reader._init_header(header, header_len)
        return reader

    def _init_header(self, header: dict, header_len: int) -> None:
        source = self.path if self.path is not None else "<bytes>"
        if header.get("format") != BINARY_FORMAT:
            raise ValueError(
                f"{source}: unsupported format {header.get('format')!r}"
            )
        self._header = header
        self._data_start = _align_up(
            len(BINARY_MAGIC) + 8 + header_len
        )
        self.name: str = header.get("name", "trace")
        self.length: int = int(header["length"])
        self.variables: List[VariableSpec] = [
            VariableSpec(**v) for v in header["variables"]
        ]
        self._columns: Dict[str, dict] = {
            record["name"]: record for record in header["columns"]
        }

    # ------------------------------------------------------------------
    @property
    def has_power(self) -> bool:
        """True when the container carries a power block."""
        return self._header.get("power") is not None

    def __len__(self) -> int:
        return self.length

    def _window(self, start: int, count: Optional[int]) -> Tuple[int, int]:
        if count is None:
            count = self.length - start
        if start < 0 or count < 0 or start + count > self.length:
            raise IndexError(
                f"window [{start}, {start + count}) out of range "
                f"[0, {self.length})"
            )
        return start, count

    def _read_block(
        self, record: dict, start: int, count: int
    ) -> np.ndarray:
        dtype = np.dtype(record["dtype"])
        limbs = record["limbs"]
        row_items = limbs if limbs else 1
        offset = (
            self._data_start
            + record["offset"]
            + start * row_items * dtype.itemsize
        )
        if self._buffer is not None:
            end = offset + count * row_items * dtype.itemsize
            if end > len(self._buffer):
                raise ValueError("<bytes>: truncated data block")
            flat = np.frombuffer(
                self._buffer,
                dtype=dtype,
                count=count * row_items,
                offset=offset,
            )
        else:
            with self.path.open("rb") as fh:
                fh.seek(offset)
                flat = np.fromfile(
                    fh, dtype=dtype, count=count * row_items
                )
            if len(flat) != count * row_items:
                raise ValueError(f"{self.path}: truncated data block")
        if limbs:
            return flat.reshape(count, limbs)
        return flat

    def _memmap_block(self, record: dict) -> np.ndarray:
        """Zero-copy view of a whole block (memmap or buffer view)."""
        if self._buffer is not None:
            return self._read_block(record, 0, self.length)
        dtype = np.dtype(record["dtype"])
        limbs = record["limbs"]
        shape = (self.length, limbs) if limbs else (self.length,)
        return np.memmap(
            self.path,
            dtype=dtype,
            mode="r",
            offset=self._data_start + record["offset"],
            shape=shape,
        )

    # ------------------------------------------------------------------
    def column_values(
        self, name: str, start: int = 0, count: Optional[int] = None
    ) -> List[int]:
        """Values of one variable over ``[start, start + count)``."""
        start, count = self._window(start, count)
        record = self._columns[name]
        block = self._read_block(record, start, count)
        if record["limbs"]:
            return _unpack_wide(block)
        return block.astype(np.int64).tolist()

    def memmap_column(self, name: str) -> np.ndarray:
        """Read-only memory map of one narrow column (int64).

        Wide (limb-packed) columns map as their ``(n, limbs)`` uint64
        matrix; use :func:`_unpack_wide` on slices of interest.
        """
        return self._memmap_block(self._columns[name])

    def read_functional(
        self, start: int = 0, count: Optional[int] = None
    ) -> FunctionalTrace:
        """The functional trace restricted to ``[start, start + count)``."""
        if not self.variables:
            raise ValueError(f"{self.path}: container has no functional data")
        start, count = self._window(start, count)
        columns = {
            v.name: self.column_values(v.name, start, count)
            for v in self.variables
        }
        return FunctionalTrace.from_arrays(
            self.variables, columns, name=self.name
        )

    def view_functional(self) -> ArrayTrace:
        """Zero-copy :class:`ArrayTrace` view of the whole container.

        Narrow columns feed the estimation kernels as int64 views
        straight over the container bytes (memory map for file-backed
        readers, ``np.frombuffer`` for in-memory ones); wide
        (limb-packed) columns are unpacked to object arrays, since
        arbitrary-width ints have no flat view.
        """
        if not self.variables:
            source = self.path if self.path is not None else "<bytes>"
            raise ValueError(f"{source}: container has no functional data")
        columns: Dict[str, np.ndarray] = {}
        for var in self.variables:
            record = self._columns[var.name]
            block = self._memmap_block(record)
            if record["limbs"]:
                wide = np.empty(self.length, dtype=object)
                wide[:] = _unpack_wide(block)
                block = wide
            columns[var.name] = block
        return ArrayTrace(self.variables, columns, name=self.name)

    def read_power(
        self, start: int = 0, count: Optional[int] = None
    ) -> np.ndarray:
        """Raw power values over ``[start, start + count)``."""
        if not self.has_power:
            raise ValueError(f"{self.path}: container has no power data")
        start, count = self._window(start, count)
        return self._read_block(self._header["power"], start, count)

    def memmap_power(self) -> np.ndarray:
        """Read-only memory map of the whole power block."""
        if not self.has_power:
            raise ValueError(f"{self.path}: container has no power data")
        return self._memmap_block(self._header["power"])

    def chunks(
        self, size: int
    ) -> Iterator[Tuple[int, FunctionalTrace, Optional[np.ndarray]]]:
        """Stream the container in windows of ``size`` instants.

        Yields ``(start, functional_slice, power_slice_or_None)`` — the
        loader for training runs whose traces do not fit in memory at
        once.
        """
        for start, count in window_bounds(self.length, size):
            functional = self.read_functional(start, count)
            power = (
                self.read_power(start, count) if self.has_power else None
            )
            yield start, functional, power


def window_bounds(length: int, size: int) -> Iterator[Tuple[int, int]]:
    """``(start, count)`` pairs tiling ``[0, length)`` in ``size`` steps.

    The final window is partial when ``size`` does not divide ``length``;
    a zero-length trace yields no windows.  The single window arithmetic
    shared by :meth:`BinaryTraceReader.chunks` and the streaming window
    sources.
    """
    if size < 1:
        raise ValueError("chunk size must be >= 1")
    for start in range(0, length, size):
        yield start, min(size, length - start)


def load_functional_bin(path: PathLike) -> FunctionalTrace:
    """Read a functional trace written by :func:`save_functional_bin`."""
    return BinaryTraceReader(path).read_functional()


def load_power_bin(path: PathLike) -> PowerTrace:
    """Read a power trace written by :func:`save_power_bin`."""
    reader = BinaryTraceReader(path)
    return PowerTrace(reader.read_power(), name=reader.name)


def load_training_bin(
    path: PathLike,
) -> Tuple[FunctionalTrace, PowerTrace]:
    """Load a training pair written by :func:`save_training_bin`."""
    reader = BinaryTraceReader(path)
    functional = reader.read_functional()
    power = PowerTrace(reader.read_power(), name=reader.name)
    if len(functional) != len(power):
        raise ValueError("functional and power traces must have equal length")
    return functional, power
