"""repro — Automatic generation of power state machines (DATE 2016).

Reproduction of Danese, Pravadelli & Zandonà, *"Automatic generation of
power state machines through dynamic mining of temporal assertions"*,
DATE 2016.

The package is organised as:

* :mod:`repro.core` — the paper's contribution: assertion mining, the XU
  automaton, PSM generation, ``simplify``/``join`` optimisation, the
  data-dependent regression refinement, and HMM-driven simulation;
* :mod:`repro.traces` — functional/power trace data structures and I/O;
* :mod:`repro.hdl` — a cycle-based HDL kernel (RTL-simulator substitute);
* :mod:`repro.power` — a dynamic-power estimator (PrimeTime PX substitute)
  and a synthesis-report substitute;
* :mod:`repro.ips` — the four benchmark IPs (RAM, MultSum, AES, Camellia);
* :mod:`repro.testbench` — per-IP training/evaluation stimuli;
* :mod:`repro.sysc` — a discrete-event co-simulation kernel for the
  IP+PSM overhead measurements.

Quickstart::

    from repro import PsmFlow, run_power_simulation
    from repro.ips import Ram
    from repro.testbench import ram_short_ts

    ram = Ram()
    ref = run_power_simulation(ram, ram_short_ts(seed=1))
    flow = PsmFlow().fit([ref.trace], [ref.power])
    result = flow.estimate(ref.trace)
"""

from .core import (
    PSM,
    AssertionMiner,
    ChoiceAssertion,
    EstimationResult,
    FlowConfig,
    MergePolicy,
    MinerConfig,
    MultiPsmSimulator,
    NextAssertion,
    PipelineRunner,
    PowerAttributes,
    PowerState,
    PropositionTrace,
    PsmFlow,
    PsmHmm,
    RefinePolicy,
    SequenceAssertion,
    SinglePsmSimulator,
    StageReport,
    Transition,
    UntilAssertion,
    XUAutomaton,
    fit_flow,
    generate_psm,
    generate_psms,
    join,
    load_psms,
    mre,
    save_psms,
    simplify,
    to_dot,
    to_systemc,
)
from .hdl import Module, Simulator
from .power import (
    PowerEstimator,
    TechLibrary,
    run_power_simulation,
    synthesize,
)
from .traces import FunctionalTrace, PowerTrace, VariableSpec

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "PsmFlow",
    "FlowConfig",
    "StageReport",
    "PipelineRunner",
    "MinerConfig",
    "MergePolicy",
    "RefinePolicy",
    "AssertionMiner",
    "XUAutomaton",
    "generate_psm",
    "generate_psms",
    "simplify",
    "join",
    "PsmHmm",
    "SinglePsmSimulator",
    "MultiPsmSimulator",
    "EstimationResult",
    "PSM",
    "PowerState",
    "Transition",
    "PowerAttributes",
    "PropositionTrace",
    "UntilAssertion",
    "NextAssertion",
    "SequenceAssertion",
    "ChoiceAssertion",
    "mre",
    "fit_flow",
    "to_dot",
    "to_systemc",
    "save_psms",
    "load_psms",
    # substrates
    "FunctionalTrace",
    "PowerTrace",
    "VariableSpec",
    "Module",
    "Simulator",
    "PowerEstimator",
    "TechLibrary",
    "run_power_simulation",
    "synthesize",
]
