"""Table I — characteristics of the benchmarks.

Regenerates the paper's Table I (code size, PI/PO widths, synthesis time,
memory elements) and times the synthesis-report substitute.

Run: ``pytest benchmarks/bench_table1.py --benchmark-only -s``
"""

import pytest

from repro.bench import format_table, table1_rows
from repro.ips import ALL_IPS
from repro.power.synthesis import synthesize


def test_print_table1(benchmark, capsys):
    """Regenerate Table I (timed) and print it beside the paper's."""
    rows = benchmark.pedantic(table1_rows, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(rows, "Table I — benchmark characteristics"))
        print(
            "paper reference: RAM 44/32 PIs/POs 8192 mem | MultSum 49/32 "
            "225 | AES 260/129 670 | Camellia 262/129 397"
        )
    by_ip = {r["ip"]: r for r in rows}
    assert by_ip["RAM"]["pis"] == 44 and by_ip["RAM"]["pos"] == 32
    assert by_ip["MultSum"]["pis"] == 49
    assert by_ip["AES"]["pis"] == 260 and by_ip["AES"]["pos"] == 129
    assert by_ip["Camellia"]["pis"] == 262


@pytest.mark.parametrize("ip_class", ALL_IPS, ids=[c.NAME for c in ALL_IPS])
def test_synthesis_speed(benchmark, ip_class):
    """Time the synthesis-report substitute per IP."""
    report = benchmark(lambda: synthesize(ip_class()))
    assert report.memory_elements > 0
