"""Table III — simulation times and accuracy evaluation.

For every IP: the IP-only vs IP+PSM co-simulation times and overhead, the
MRE and WSP of the short-TS model replayed on the long-TS, and the
speedup of PSM-based estimation over the reference power simulation (the
paper's "up to two orders of magnitude" claim).

Run: ``pytest benchmarks/bench_table3.py --benchmark-only -s``
"""

import pytest

from repro.bench import format_table, table3_rows
from repro.core.metrics import mre
from repro.testbench import BENCHMARKS

IP_NAMES = list(BENCHMARKS)

#: Paper Table III: overhead% / MRE% / WSP%.
PAPER = {
    "RAM": (26.4, 0.29, 0),
    "MultSum": (18.4, 3.97, 0),
    "AES": (5.6, 3.11, 0),
    "Camellia": (3.5, 32.64, 20),
}


def test_print_table3(benchmark, capsys):
    """Regenerate Table III (timed) and print it beside the paper's."""
    rows = benchmark.pedantic(
        lambda: table3_rows(repeats=3), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(
            format_table(
                rows,
                "Table III — simulation times and accuracy evaluation",
            )
        )
        print("paper: " + " | ".join(
            f"{ip} ovh {o}% mre {m}% wsp {w}%" for ip, (o, m, w) in PAPER.items()
        ))
    by_ip = {r["ip"]: r for r in rows}
    # Accuracy shape: the short-TS models generalise, except Camellia.
    assert by_ip["RAM"]["mre"] < 15.0
    assert by_ip["AES"]["mre"] < 10.0
    assert by_ip["Camellia"]["mre"] > 15.0
    # WSP shape: ~0 everywhere but Camellia (the paper's 0/0/0/20).
    for ip in ("RAM", "MultSum", "AES"):
        assert by_ip[ip]["wsp"] < 3.0, ip
    assert by_ip["Camellia"]["wsp"] > 5.0
    # PSM estimation beats the reference power simulation comfortably.
    for ip in IP_NAMES:
        assert by_ip[ip]["speedup"] > 2.0, ip


@pytest.mark.parametrize("name", IP_NAMES)
def test_psm_estimation_speed(
    benchmark, name, fitted_benchmarks, long_references
):
    """Time PSM-based power estimation over the long-TS trace.

    Compare against ``test_power_simulation_speed`` to read the speedup.
    """
    flow = fitted_benchmarks[name].flow
    trace = long_references[name].trace
    result = benchmark(lambda: flow.estimate(trace))
    assert len(result.estimated) == len(trace)


@pytest.mark.parametrize("name", IP_NAMES)
def test_power_simulation_speed(benchmark, name, long_references):
    """Time the reference power simulation (the PX column's substitute)."""
    from repro.power.estimator import run_power_simulation
    from repro.testbench import BENCHMARKS

    spec = BENCHMARKS[name]
    stimulus = spec.long_ts(len(long_references[name].trace))
    result = benchmark(
        lambda: run_power_simulation(spec.module_class(), stimulus)
    )
    assert len(result.power) == len(stimulus)


@pytest.mark.parametrize("name", IP_NAMES)
def test_replay_accuracy(name, fitted_benchmarks, long_references):
    """Short-TS model replayed on the long-TS: the Table III MRE/WSP."""
    flow = fitted_benchmarks[name].flow
    reference = long_references[name]
    result = flow.estimate(reference.trace)
    error = mre(result.estimated, reference.power)
    if name == "Camellia":
        assert error > 15.0
        assert result.wrong_state_fraction > 5.0
    else:
        assert error < 15.0
        assert result.wrong_state_fraction < 3.0
