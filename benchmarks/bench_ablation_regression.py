"""Ablation — the data-dependent regression refinement (paper Sec. IV).

The paper attributes the RAM's very low MRE to the linear-regression
refinement of data-dependent states.  This bench measures the MRE with
and without the refinement (and without the same-body pooling extension)
on the data-dependent IPs.

Run: ``pytest benchmarks/bench_ablation_regression.py --benchmark-only -s``
"""

import pytest

from repro.bench import format_table
from repro.core.metrics import mre
from repro.core.pipeline import FlowConfig, PsmFlow
from repro.core.regression import RefinePolicy
from repro.power.estimator import run_power_simulation
from repro.testbench import BENCHMARKS


@pytest.fixture(scope="module", params=["RAM", "MultSum"])
def training(request):
    spec = BENCHMARKS[request.param]
    reference = run_power_simulation(spec.module_class(), spec.short_ts())
    return request.param, spec, reference


def _fit(spec, reference, *, refine=True, pool=True):
    base = spec.flow_config()
    # The refinement ablation omits the "refine" stage from the pipeline
    # instead of toggling the deprecated apply_refine boolean.
    stages = ("simplify", "join", "refine") if refine else ("simplify", "join")
    config = FlowConfig(
        miner=base.miner,
        merge=base.merge,
        refine=RefinePolicy(
            cv_threshold=base.refine.cv_threshold,
            corr_threshold=base.refine.corr_threshold,
            min_samples=base.refine.min_samples,
            pool_same_body=pool,
        ),
        stages=stages,
    )
    flow = PsmFlow(config).fit([reference.trace], [reference.power])
    result = flow.estimate(reference.trace)
    return flow, mre(result.estimated, reference.power)


def test_refinement_ablation(benchmark, training, capsys):
    """Without the regression the data-dependent IPs lose accuracy."""
    name, spec, reference = training

    def sweep():
        rows = []
        for label, kwargs in [
            ("full refinement", dict(refine=True, pool=True)),
            ("no same-body pooling", dict(refine=True, pool=False)),
            ("no refinement", dict(refine=False)),
        ]:
            flow, error = _fit(spec, reference, **kwargs)
            rows.append(
                {
                    "variant": label,
                    "refined_states": flow.report.n_refined_states,
                    "mre": round(error, 2),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(rows, f"Ablation — regression refinement ({name})"))
    by_variant = {r["variant"]: r for r in rows}
    full = by_variant["full refinement"]["mre"]
    none = by_variant["no refinement"]["mre"]
    # The refinement is the load-bearing stage for these IPs.
    assert full < none
    if name == "RAM":
        assert none > 3 * full


def test_refinement_speed(benchmark, training):
    """Time the refinement stage alone."""
    from repro.core.regression import refine_data_dependent

    name, spec, reference = training
    base = spec.flow_config()
    flow = PsmFlow(
        FlowConfig(
            miner=base.miner, merge=base.merge, stages=("simplify", "join")
        )
    ).fit([reference.trace], [reference.power])
    psms = flow.psms

    def refine():
        return refine_data_dependent(
            psms, {0: reference.trace}, {0: reference.power}, base.refine
        )

    benchmark(refine)
