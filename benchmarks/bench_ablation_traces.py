"""Ablation — training-trace quality (paper Sec. I discussion).

The paper stresses that incomplete functional traces yield incomplete
PSMs and wrong estimates on unseen behaviours.  This bench trains the AES
model on progressively truncated verification suites and measures how
accuracy and desynchronisation degrade on the full evaluation trace.

Run: ``pytest benchmarks/bench_ablation_traces.py --benchmark-only -s``
"""

import pytest

from repro.bench import format_table
from repro.core.metrics import mre
from repro.core.pipeline import PsmFlow
from repro.power.estimator import run_power_simulation
from repro.testbench import BENCHMARKS


@pytest.fixture(scope="module")
def aes_material():
    spec = BENCHMARKS["AES"]
    full = spec.short_ts()
    evaluation = run_power_simulation(
        spec.module_class(), spec.long_ts(4000)
    )
    return spec, full, evaluation


def test_coverage_sweep(benchmark, aes_material, capsys):
    spec, full, evaluation = aes_material

    def sweep():
        rows = []
        for fraction in (0.1, 0.25, 0.5, 1.0):
            cut = max(int(len(full) * fraction), 40)
            reference = run_power_simulation(
                spec.module_class(), full[:cut]
            )
            flow = PsmFlow(spec.flow_config()).fit(
                [reference.trace], [reference.power]
            )
            result = flow.estimate(evaluation.trace)
            rows.append(
                {
                    "coverage": f"{int(fraction * 100)}%",
                    "train_cycles": cut,
                    "states": flow.report.n_states,
                    "mre": round(
                        mre(result.estimated, evaluation.power), 2
                    ),
                    "wsp_instants": round(
                        result.wrong_state_fraction, 2
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(
            format_table(
                rows, "Ablation — training coverage sweep (AES, long-TS)"
            )
        )
    # Full coverage must dominate the thinnest slice.
    assert rows[-1]["mre"] <= rows[0]["mre"]
    assert rows[-1]["wsp_instants"] <= rows[0]["wsp_instants"] + 1e-9


def test_two_traces_beat_one_half(benchmark, aes_material, capsys):
    """Combining PSMs from several traces (the Sec. III-C motivation)."""
    spec, full, evaluation = aes_material
    half = len(full) // 2
    first = run_power_simulation(spec.module_class(), full[:half])
    second = run_power_simulation(spec.module_class(), full[half:])

    def build_and_compare():
        single = PsmFlow(spec.flow_config()).fit(
            [first.trace], [first.power]
        )
        combined = PsmFlow(spec.flow_config()).fit(
            [first.trace, second.trace], [first.power, second.power]
        )
        return (
            single.estimate(evaluation.trace),
            combined.estimate(evaluation.trace),
        )

    single_result, combined_result = benchmark.pedantic(
        build_and_compare, rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(
            "single-half desync "
            f"{single_result.wrong_state_fraction:.2f}% vs combined "
            f"{combined_result.wrong_state_fraction:.2f}%"
        )
    assert (
        combined_result.wrong_state_fraction
        <= single_result.wrong_state_fraction + 1e-9
    )


def test_mining_speed(benchmark, aes_material):
    """Time the assertion-mining stage on the full AES suite."""
    from repro.core.mining import AssertionMiner

    spec, full, evaluation = aes_material
    reference = run_power_simulation(spec.module_class(), full)
    miner = AssertionMiner(spec.flow_config().miner)
    result = benchmark(lambda: miner.mine(reference.trace))
    assert result.propositions
