"""Shared fixtures for the benchmark suites.

The fitted flows and reference traces are computed once per session —
pytest-benchmark then times the operations of interest against them.
"""

from __future__ import annotations

import pytest

from repro.bench import fit_benchmark, long_cycles
from repro.power.estimator import run_power_simulation
from repro.testbench import BENCHMARKS

IP_NAMES = list(BENCHMARKS)


@pytest.fixture(scope="session")
def fitted_benchmarks():
    """Short-TS fitted flow per IP."""
    return {name: fit_benchmark(name) for name in IP_NAMES}


@pytest.fixture(scope="session")
def long_references():
    """Long-TS functional + reference power traces per IP."""
    cycles = long_cycles()
    references = {}
    for name, spec in BENCHMARKS.items():
        references[name] = run_power_simulation(
            spec.module_class(), spec.long_ts(cycles)
        )
    return references
