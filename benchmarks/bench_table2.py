"""Table II — characteristics of the generated PSMs.

For every IP and both testset sizes: trace length (TS), reference
power-simulation time (the PX column), PSM generation time, state and
transition counts, and the training-set MRE.  pytest-benchmark times the
full generation flow per IP.

Run: ``pytest benchmarks/bench_table2.py --benchmark-only -s``
"""

import pytest

from repro.bench import format_table, table2_rows
from repro.core.pipeline import PsmFlow
from repro.testbench import BENCHMARKS

IP_NAMES = list(BENCHMARKS)

#: Paper Table II (short-TS rows): states / transitions / MRE%.
PAPER_SHORT = {
    "RAM": (9, 18, 0.30),
    "MultSum": (2, 2, 4.03),
    "AES": (5, 7, 3.45),
    "Camellia": (5, 10, 32.66),
}


def test_print_table2(benchmark, capsys):
    """Regenerate Table II (timed) and print it beside the paper's."""
    rows = benchmark.pedantic(
        lambda: table2_rows(include_long=True), rounds=1, iterations=1
    )
    with capsys.disabled():
        print()
        print(
            format_table(
                rows, "Table II — characteristics of the generated PSMs"
            )
        )
        print("paper (short-TS): " + " | ".join(
            f"{ip} {s}st/{t}tr {m}%" for ip, (s, t, m) in PAPER_SHORT.items()
        ))
    by_key = {(r["ip"], r["testset"]): r for r in rows}
    # Shape assertions against the paper's short-TS rows.
    assert by_key[("RAM", "short-TS")]["mre"] < 3.0
    assert by_key[("MultSum", "short-TS")]["mre"] < 15.0
    assert by_key[("AES", "short-TS")]["mre"] < 10.0
    assert by_key[("Camellia", "short-TS")]["mre"] > 20.0
    # The paper finds long-TS training does not improve MRE much.
    for ip in ("RAM", "AES", "Camellia"):
        short = by_key[(ip, "short-TS")]["mre"]
        long = by_key[(ip, "long-TS")]["mre"]
        assert abs(long - short) < max(10.0, 0.6 * short), ip
    # PSM generation is much faster than the reference power simulation.
    for ip in IP_NAMES:
        row = by_key[(ip, "long-TS")]
        assert row["gen_time"] < row["px_time"] * 2.0, ip


@pytest.mark.parametrize("name", IP_NAMES)
def test_generation_speed(benchmark, name, fitted_benchmarks):
    """Time the PSM generation flow (mining -> optimised set) per IP."""
    fitted = fitted_benchmarks[name]
    trace = fitted.short_ref.trace
    power = fitted.short_ref.power
    spec = fitted.spec

    def generate():
        return PsmFlow(spec.flow_config()).fit([trace], [power])

    flow = benchmark(generate)
    assert flow.report.n_states > 0
