"""Ablation — HMM filtering for non-deterministic choices (paper Sec. V).

Compares the HMM's filtered next-state choice against a degraded variant
whose transition matrix is uniform (no learned statistics), measuring
wrong predictions and accuracy on alias-heavy traces.

Run: ``pytest benchmarks/bench_ablation_hmm.py --benchmark-only -s``
"""

import numpy as np
import pytest

from repro.bench import format_table
from repro.core.hmm import PsmHmm
from repro.core.metrics import mre
from repro.core.pipeline import PsmFlow
from repro.core.simulation import MultiPsmSimulator
from repro.power.estimator import run_power_simulation
from repro.testbench import BENCHMARKS


@pytest.fixture(scope="module")
def fitted_ram():
    spec = BENCHMARKS["RAM"]
    reference = run_power_simulation(spec.module_class(), spec.short_ts())
    flow = PsmFlow(spec.flow_config()).fit(
        [reference.trace], [reference.power]
    )
    evaluation = run_power_simulation(
        spec.module_class(), spec.long_ts(4000)
    )
    return spec, flow, evaluation


def _uniform_hmm(flow):
    """An HMM whose A rows are uniform over the structural transitions."""
    hmm = PsmHmm(flow.psms)
    mask = hmm.A > 0
    with np.errstate(invalid="ignore"):
        uniform = mask / mask.sum(axis=1, keepdims=True)
    hmm.A = np.nan_to_num(uniform)
    return hmm


def test_hmm_vs_uniform(benchmark, fitted_ram, capsys):
    spec, flow, evaluation = fitted_ram

    def sweep():
        rows = []
        for label, hmm in [
            ("learned HMM", None),
            ("uniform transitions", _uniform_hmm(flow)),
        ]:
            simulator = MultiPsmSimulator(
                flow.psms, flow.mining.labeler, hmm
            )
            result = simulator.run(evaluation.trace)
            rows.append(
                {
                    "variant": label,
                    "mre": round(
                        mre(result.estimated, evaluation.power), 2
                    ),
                    "wrong_predictions": result.wrong_predictions,
                    "wsp_instants": round(
                        result.wrong_state_fraction, 2
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(rows, "Ablation — HMM filtering (RAM, long-TS)"))
    learned, uniform = rows
    # Learned statistics never hurt; usually they reduce wrong choices.
    assert learned["wrong_predictions"] <= uniform["wrong_predictions"] + 2
    assert learned["mre"] <= uniform["mre"] + 2.0


def test_filtering_speed(benchmark, fitted_ram):
    """Time one HMM filtering step (the per-choice cost)."""
    spec, flow, evaluation = fitted_ram
    hmm = flow.hmm
    belief = hmm.initial_belief()
    symbol = hmm.observations[0]
    benchmark(lambda: hmm.filter_step(belief, symbol))


def test_simulation_speed_with_hmm(benchmark, fitted_ram):
    """Time the full HMM-driven replay on the long trace."""
    spec, flow, evaluation = fitted_ram
    simulator = MultiPsmSimulator(flow.psms, flow.mining.labeler, flow.hmm)
    result = benchmark(lambda: simulator.run(evaluation.trace))
    assert len(result.estimated) == len(evaluation.trace)
