"""Ablation — the combination/optimisation stage (paper Sec. IV).

Sweeps the merge policy (t-test alpha, Case-1 tolerance) and toggles the
``simplify``/``join`` stages to expose the accuracy/size trade-off that
motivates the paper's Section IV.

Run: ``pytest benchmarks/bench_ablation_merge.py --benchmark-only -s``
"""

import pytest

from repro.bench import format_table
from repro.core.mergeability import MergePolicy
from repro.core.metrics import mre
from repro.core.pipeline import FlowConfig, PsmFlow
from repro.testbench import BENCHMARKS


@pytest.fixture(scope="module")
def ram_training():
    from repro.power.estimator import run_power_simulation

    spec = BENCHMARKS["RAM"]
    reference = run_power_simulation(spec.module_class(), spec.short_ts())
    return spec, reference


def _fit(spec, reference, **config_overrides):
    base = spec.flow_config()
    config = FlowConfig(
        miner=base.miner,
        merge=config_overrides.pop("merge", base.merge),
        refine=base.refine,
        **config_overrides,
    )
    flow = PsmFlow(config).fit([reference.trace], [reference.power])
    result = flow.estimate(reference.trace)
    return flow, mre(result.estimated, reference.power)


def test_stage_ablation(benchmark, ram_training, capsys):
    """simplify/join both reduce states; accuracy stays in the same band."""
    spec, reference = ram_training

    def sweep():
        rows = []
        # Ablation by omitting pipeline stages (the old apply_* booleans
        # remain as deprecated aliases of these stage lists).
        for label, overrides in [
            ("full flow", {}),
            ("no simplify", {"stages": ("join", "refine")}),
            ("no join", {"stages": ("simplify", "refine")}),
            ("raw chains", {"stages": ("refine",)}),
        ]:
            flow, error = _fit(spec, reference, **overrides)
            rows.append(
                {
                    "variant": label,
                    "states": flow.report.n_states,
                    "transitions": flow.report.n_transitions,
                    "mre": round(error, 2),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(rows, "Ablation — optimisation stages (RAM)"))
    by_variant = {r["variant"]: r for r in rows}
    assert (
        by_variant["full flow"]["states"]
        < by_variant["raw chains"]["states"]
    )
    assert by_variant["no join"]["states"] >= by_variant["full flow"]["states"]


def test_alpha_sweep(benchmark, ram_training, capsys):
    """Sweeping the t-test significance level.

    States merge when the test does *not* reject equality (p > alpha), so
    a smaller alpha accepts more merges (fewer states) and a larger alpha
    keeps more states apart.
    """
    spec, reference = ram_training

    def sweep():
        rows = []
        for alpha in (0.001, 0.01, 0.05, 0.2):
            merge = MergePolicy(
                epsilon_rel=0.05,
                alpha=alpha,
                max_cv=None,
                variance_alpha=0.01,
            )
            flow, error = _fit(spec, reference, merge=merge)
            rows.append(
                {
                    "alpha": alpha,
                    "states": flow.report.n_states,
                    "mre": round(error, 2),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    with capsys.disabled():
        print()
        print(format_table(rows, "Ablation — t-test alpha sweep (RAM)"))
    # smaller alpha -> more merging -> fewer (or equal) states
    assert rows[0]["states"] <= rows[-1]["states"]


def test_merge_speed(benchmark, ram_training):
    """Time the full optimisation (simplify + join) stage."""
    from repro.core.generator import generate_psms
    from repro.core.join import join
    from repro.core.mining import AssertionMiner
    from repro.core.simplify import simplify_all

    spec, reference = ram_training
    config = spec.flow_config()
    mining = AssertionMiner(config.miner).mine_many([reference.trace])
    psms = generate_psms(mining.traces, [reference.power])
    powers = {0: reference.power}

    def optimise():
        simplified = simplify_all(psms, powers, config.merge)
        return join(simplified, powers, config.merge)

    joined = benchmark(optimise)
    assert joined
