"""Extension — hierarchical PSMs (paper Sec. VII future work).

The paper closes: "To mitigate the limitation highlighted by Camellia,
we foresee, as future works, the automatic generation of a power model
based on hierarchical PSMs that distinguishes among IP subcomponents."

This bench implements that comparison: the flat flow vs one PSM set per
sub-component (with the sub-component boundary probes visible), on both
cipher IPs.

Run: ``pytest benchmarks/bench_extension_hierarchy.py --benchmark-only -s``
"""

import pytest

from repro.bench import format_table
from repro.core.hierarchy import (
    HierarchicalPsmFlow,
    run_hierarchical_power_simulation,
)
from repro.core.metrics import mre
from repro.core.pipeline import PsmFlow
from repro.power.estimator import run_power_simulation
from repro.testbench import BENCHMARKS

EVAL_CYCLES = 4000


def _compare(name):
    """Flat vs hierarchical on covered behaviours (no gating windows:
    the coverage gap drives WSP for both models alike and would swamp
    the accuracy comparison with relative errors on near-zero gated
    power)."""
    spec = BENCHMARKS[name]
    stimulus = spec.long_ts(EVAL_CYCLES, include_gating=False)
    flat_training = run_power_simulation(spec.module_class(), spec.short_ts())
    flat = PsmFlow(spec.flow_config()).fit(
        [flat_training.trace], [flat_training.power]
    )
    flat_eval = run_power_simulation(spec.module_class(), stimulus)
    flat_mre = mre(
        flat.estimate(flat_eval.trace).estimated, flat_eval.power
    )

    hier_training = run_hierarchical_power_simulation(
        spec.module_class(), spec.short_ts()
    )
    hier = HierarchicalPsmFlow().fit([hier_training])
    hier_eval = run_hierarchical_power_simulation(
        spec.module_class(), stimulus
    )
    hier_mre = mre(hier.estimate(hier_eval.trace).estimated, hier_eval.total)
    return {
        "ip": name,
        "flat_states": flat.report.n_states,
        "flat_mre": round(flat_mre, 2),
        "hier_states": hier.total_states(),
        "hier_mre": round(hier_mre, 2),
    }


def test_hierarchy_vs_flat(benchmark, capsys):
    rows = benchmark.pedantic(
        lambda: [_compare("AES"), _compare("Camellia")],
        rounds=1,
        iterations=1,
    )
    with capsys.disabled():
        print()
        print(
            format_table(
                rows, "Extension — hierarchical PSMs vs the flat flow"
            )
        )
        print(
            "paper Sec. VII: hierarchical PSMs foreseen to mitigate the "
            "Camellia limitation"
        )
    by_ip = {r["ip"]: r for r in rows}
    # the extension pays off where the paper predicts: Camellia
    assert by_ip["Camellia"]["hier_mre"] < by_ip["Camellia"]["flat_mre"] / 2
    # and does not break the already-accurate AES model
    assert by_ip["AES"]["hier_mre"] < 12.0
    # the price is a larger state space
    assert by_ip["Camellia"]["hier_states"] > by_ip["Camellia"]["flat_states"]


def test_hierarchical_estimation_speed(benchmark):
    """Time the summed per-component estimation on Camellia."""
    spec = BENCHMARKS["Camellia"]
    training = run_hierarchical_power_simulation(
        spec.module_class(), spec.short_ts()
    )
    flow = HierarchicalPsmFlow().fit([training])
    evaluation = run_hierarchical_power_simulation(
        spec.module_class(), spec.long_ts(EVAL_CYCLES)
    )
    result = benchmark(lambda: flow.estimate(evaluation.trace))
    assert len(result.estimated) == EVAL_CYCLES
