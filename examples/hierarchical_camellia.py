"""Hierarchical PSMs: implementing the paper's future work.

The paper's concluding remark proposes hierarchical PSMs that
distinguish IP sub-components to mitigate the Camellia failure.  This
example builds both models side by side:

* **flat** — the paper's flow, black-box over the PIs/POs;
* **hierarchical** — one PSM set per sub-component, with the
  sub-component boundary probe (the round counter) visible and the
  reference power split per component.

Run: ``python examples/hierarchical_camellia.py``
"""

from repro.core.hierarchy import (
    HierarchicalPsmFlow,
    run_hierarchical_power_simulation,
)
from repro.core.metrics import mre
from repro.core.pipeline import PsmFlow
from repro.power.estimator import run_power_simulation
from repro.testbench import BENCHMARKS


def main() -> None:
    spec = BENCHMARKS["Camellia"]

    # --- the paper's flat flow -----------------------------------------
    flat_training = run_power_simulation(spec.module_class(), spec.short_ts())
    flat = PsmFlow(spec.flow_config()).fit(
        [flat_training.trace], [flat_training.power]
    )
    flat_error = mre(
        flat.estimate(flat_training.trace).estimated, flat_training.power
    )
    print(
        f"flat model: {flat.report.n_states} states, training MRE "
        f"{flat_error:.2f}%  (the paper's ~32% Camellia failure)"
    )

    # --- the hierarchical extension ------------------------------------
    training = run_hierarchical_power_simulation(
        spec.module_class(), spec.short_ts()
    )
    hier = HierarchicalPsmFlow().fit([training])
    result = hier.estimate(training.trace)
    print(
        f"hierarchical model: {hier.total_states()} states over "
        f"{len(hier.flows)} components, training MRE "
        f"{mre(result.estimated, training.total):.2f}%"
    )

    print("\nper-component models:")
    for component in hier.components:
        flow = hier.flows[component]
        component_result = result.per_component[component]
        error = mre(
            component_result.estimated, training.components[component]
        )
        print(
            f"  {component:<14} {flow.report.n_states:>3} states  "
            f"MRE {error:6.2f}%"
        )

    # --- generalisation -------------------------------------------------
    # evaluated on covered behaviours: the gating windows the Camellia
    # verification suite lacks are a coverage problem (the WSP story),
    # orthogonal to the accuracy question the hierarchy addresses
    evaluation = run_hierarchical_power_simulation(
        spec.module_class(), spec.long_ts(5000, include_gating=False)
    )
    long_result = hier.estimate(evaluation.trace)
    print(
        f"\nlong-TS replay: hierarchical MRE "
        f"{mre(long_result.estimated, evaluation.total):.2f}% "
        "(vs ~23% flat)"
    )
    print(
        "\nWith the round counter visible, each Feistel round and FL "
        "layer becomes its own power state, so the FL spikes and the "
        "per-round S-box activity no longer hide inside one "
        "high-variance state."
    )


if __name__ == "__main__":
    main()
