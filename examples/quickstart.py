"""Quickstart: characterise the RAM's power with an auto-generated PSM.

The complete flow in a few lines:

1. simulate the IP on its verification testbench while recording power
   (the training pair the paper assumes as input);
2. fit the PSM flow: mine assertions, generate chain PSMs, simplify/join,
   refine data-dependent states, build the HMM;
3. estimate the power of a *new* workload and score it.

Run: ``python examples/quickstart.py``
"""

from repro import PsmFlow, mre, run_power_simulation
from repro.ips import Ram
from repro.testbench import BENCHMARKS, ram_long_ts, ram_short_ts


def main() -> None:
    # 1. training pair: functional trace + reference power trace
    training = run_power_simulation(Ram(), ram_short_ts())
    print(
        f"training: {len(training.trace)} cycles, "
        f"mean power {training.power.mean():.4f} mW"
    )

    # 2. fit the flow (using the benchmark's tuned configuration)
    flow = PsmFlow(BENCHMARKS["RAM"].flow_config()).fit(
        [training.trace], [training.power]
    )
    report = flow.report
    print(
        f"PSMs: {report.n_states} states / {report.n_transitions} "
        f"transitions (from {report.n_raw_states} raw states) "
        f"in {report.generation_time:.2f}s; "
        f"{report.n_refined_states} data-dependent states"
    )
    for psm in flow.psms:
        for state in psm.states:
            print(f"  {state.describe()[:100]}")

    # 3. estimate a longer, different workload
    evaluation = run_power_simulation(Ram(), ram_long_ts(6000))
    result = flow.estimate(evaluation.trace)
    print(
        f"evaluation: MRE "
        f"{mre(result.estimated, evaluation.power):.2f}%  "
        f"WSP {result.wrong_state_fraction:.2f}%  "
        f"desync {result.desync_instants} instants"
    )


if __name__ == "__main__":
    main()
