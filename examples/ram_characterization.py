"""Deep dive: why the RAM model is accurate (the paper's Sec. VI story).

Walks the RAM's characterisation in detail:

* per-phase accuracy of the fitted model (writes, reads, idle);
* the data-dependent states and their Hamming-distance regressions;
* the ablation in miniature: accuracy with the regression disabled;
* trace persistence (CSV) and reload through the public I/O API.

Run: ``python examples/ram_characterization.py``
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import PsmFlow, mre, run_power_simulation
from repro.core.pipeline import FlowConfig
from repro.core.psm import RegressionPower
from repro.ips import Ram
from repro.testbench import BENCHMARKS, ram_long_ts, ram_short_ts
from repro.traces.io import load_training_pair, save_training_pair


def per_phase_error(result, evaluation):
    """Split the relative error by access phase (write / read / idle)."""
    trace = evaluation.trace
    actual = evaluation.power.values
    estimated = result.estimated.values
    error = np.abs(estimated - actual) / np.maximum(
        actual, 0.01 * actual.mean()
    )
    phases = {"write": [], "read": [], "idle": []}
    for i in range(len(trace)):
        row = trace.at(i)
        if row["en"] and row["we"]:
            phases["write"].append(error[i])
        elif row["en"]:
            phases["read"].append(error[i])
        else:
            phases["idle"].append(error[i])
    return {
        phase: 100 * float(np.mean(values)) if values else 0.0
        for phase, values in phases.items()
    }


def main() -> None:
    spec = BENCHMARKS["RAM"]
    training = run_power_simulation(Ram(), ram_short_ts())
    evaluation = run_power_simulation(Ram(), ram_long_ts(8000))

    # --- the full flow -------------------------------------------------
    flow = PsmFlow(spec.flow_config()).fit(
        [training.trace], [training.power]
    )
    result = flow.estimate(evaluation.trace)
    print(
        f"full flow: {flow.report.n_states} states, long-TS MRE "
        f"{mre(result.estimated, evaluation.power):.2f}%"
    )
    for phase, value in per_phase_error(result, evaluation).items():
        print(f"  {phase:<6} error: {value:.2f}%")

    print("\ndata-dependent states and their regressions:")
    for psm in flow.psms:
        for state in psm.states:
            if isinstance(state.power_model, RegressionPower):
                model = state.power_model
                print(
                    f"  s{state.sid}: power = {model.intercept:.4f} + "
                    f"{model.slope:.5f} * HD   (r = {model.correlation:.3f})"
                )

    # --- without the regression refinement -----------------------------
    base = spec.flow_config()
    no_refine = PsmFlow(
        FlowConfig(miner=base.miner, merge=base.merge, apply_refine=False)
    ).fit([training.trace], [training.power])
    naive = no_refine.estimate(evaluation.trace)
    print(
        f"\nwithout regression refinement: MRE "
        f"{mre(naive.estimated, evaluation.power):.2f}%   "
        "(the constant-only model cannot track the data dependence)"
    )

    # --- trace persistence round trip ----------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        prefix = Path(tmp) / "ram"
        save_training_pair(training.trace, training.power, prefix)
        loaded_trace, loaded_power = load_training_pair(prefix)
        reloaded = PsmFlow(spec.flow_config()).fit(
            [loaded_trace], [loaded_power]
        )
        replay = reloaded.estimate(evaluation.trace)
        print(
            f"\nmodel refit from CSV round trip: MRE "
            f"{mre(replay.estimated, evaluation.power):.2f}% "
            "(identical flow, persisted traces)"
        )


if __name__ == "__main__":
    main()
