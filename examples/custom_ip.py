"""Characterising a user-defined IP end to end.

Everything the library offers applied to a design that is *not* one of
the paper's benchmarks: a small FIR-filter datapath with an enable and a
coefficient-reload mode.  Shows how to

1. describe an IP as a clocked :class:`repro.hdl.Module`;
2. write a verification-style stimulus with the testbench builder;
3. fit the PSM flow, inspect the model, and export it (JSON / DOT /
   generated SystemC monitor);
4. attach the streaming monitor in a co-simulation.

Run: ``python examples/custom_ip.py``
"""

from repro import PsmFlow, mre, run_power_simulation, to_dot, to_systemc
from repro.core.export import save_psms
from repro.hdl import Module
from repro.sysc import measure_overhead
from repro.testbench.stimuli import StimulusBuilder
from repro.traces.variables import bool_in, int_in, int_out

MASK16 = 0xFFFF


class FirFilter(Module):
    """4-tap FIR filter with reloadable coefficients.

    ======== ====== =================================
    ``en``   1 bit  process a sample this cycle
    ``load`` 1 bit  shift a new coefficient in
    ``x``    8 bit  input sample / coefficient value
    ``y``    16 bit registered filter output
    ======== ====== =================================
    """

    NAME = "FIR4"
    INPUTS = (bool_in("en"), bool_in("load"), int_in("x", 8))
    OUTPUTS = (int_out("y", 16),)
    COMPONENT_CAPS = {
        "delay_line": 1.0,
        "mac_array": 1.5,
        "coeff_bank": 0.8,
        "clock_tree": 1.0,
    }

    def __init__(self) -> None:
        super().__init__()
        self._taps = [
            self.reg(f"tap{i}", 8, component="delay_line") for i in range(4)
        ]
        self._coeffs = [
            self.reg(f"coeff{i}", 8, init=1, component="coeff_bank")
            for i in range(4)
        ]
        self._y = self.reg("y_reg", 16, component="mac_array")

    def step(self, inputs):
        outputs = {"y": self._y.value}
        self.add_activity("clock_tree", 1.5)
        if inputs["load"]:
            # shift the coefficient bank
            for i in range(3, 0, -1):
                self._coeffs[i].load(self._coeffs[i - 1].value)
            self._coeffs[0].load(inputs["x"])
        elif inputs["en"]:
            for i in range(3, 0, -1):
                self._taps[i].load(self._taps[i - 1].value)
            self._taps[0].load(inputs["x"])
            accumulator = 0
            for tap, coeff in zip(self._taps, self._coeffs):
                accumulator += tap.value * coeff.value
            self._y.load(accumulator & MASK16)
        return outputs


def testbench(seed: int, bursts: int) -> list:
    """Coefficient loads, filtering bursts and idle gaps."""
    tb = StimulusBuilder({"en": 0, "load": 0, "x": 0}, seed=seed)
    tb.hold(6)
    for coefficient in (3, 7, 5, 2):
        tb.cycle(load=1, x=coefficient)
    tb.hold(4)
    for _ in range(bursts):
        for _ in range(12 + int(tb.rng.integers(0, 20))):
            tb.cycle(en=1, x=tb.rand_bits(8))
        tb.hold(3 + int(tb.rng.integers(0, 6)))
        if tb.maybe(0.2):
            for _ in range(4):
                tb.cycle(load=1, x=tb.rand_bits(8))
    return tb.build()


def main() -> None:
    # train on a short verification-style suite
    training = run_power_simulation(FirFilter(), testbench(seed=1, bursts=20))
    flow = PsmFlow().fit([training.trace], [training.power])
    print(
        f"FIR4 model: {flow.report.n_states} states, "
        f"{flow.report.n_refined_states} regression states"
    )
    for psm in flow.psms:
        print(psm.describe())

    # evaluate on an independent workload
    evaluation = run_power_simulation(
        FirFilter(), testbench(seed=77, bursts=60)
    )
    result = flow.estimate(evaluation.trace)
    print(
        f"evaluation MRE: {mre(result.estimated, evaluation.power):.2f}%  "
        f"WSP: {result.wrong_state_fraction:.2f}%"
    )

    # export the model in every supported form
    save_psms(flow.psms, "fir4_psms.json")
    with open("fir4_psms.dot", "w") as handle:
        handle.write(to_dot(flow.psms, title="fir4"))
    with open("fir4_monitor.cpp", "w") as handle:
        handle.write(to_systemc(flow.psms, module_name="fir4_monitor"))
    print("exported: fir4_psms.json, fir4_psms.dot, fir4_monitor.cpp")

    # co-simulation overhead of the attached monitor (Table III setup)
    report = measure_overhead(
        FirFilter, testbench(seed=5, bursts=40), flow, repeats=3
    )
    print(
        f"co-simulation: IP {report.ip_time * 1000:.0f}ms vs IP+PSM "
        f"{report.cosim_time * 1000:.0f}ms "
        f"(overhead {report.overhead_pct:.1f}%)"
    )


if __name__ == "__main__":
    main()
