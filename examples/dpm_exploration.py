"""Dynamic power management exploration — the PSM use-case.

The paper's introduction motivates PSMs as the formalism dynamic power
managers consume during early virtual prototyping: once an IP has a PSM,
candidate DPM policies can be compared in fast co-simulation instead of
re-running a gate-level power analysis per policy.

This example characterises the AES core once, then ranks four clock
gating policies on the same workload using only PSM-estimated energy.

Run: ``python examples/dpm_exploration.py``
"""

from repro import PsmFlow, run_power_simulation
from repro.sysc import (
    AlwaysOnPolicy,
    OraclePolicy,
    TimeoutGatePolicy,
    explore_policies,
)
from repro.testbench import AES_LATENCY, BENCHMARKS
from repro.testbench.stimuli import StimulusBuilder


def build_workload(key: int, operations: int, tb: StimulusBuilder):
    """AES transactions: one key load, then ``operations`` blocks."""

    def transaction(data, first=False):
        base = dict(
            en=1, load_key=0, start=0, decrypt=0, key=key, data=data
        )
        rows = [dict(base, load_key=1)] if first else []
        rows.append(dict(base, start=1))
        rows += [dict(base)] * (AES_LATENCY + 1)
        return rows

    return [
        transaction(tb.rand_bits(128), first=(i == 0))
        for i in range(operations)
    ]


def main() -> None:
    spec = BENCHMARKS["AES"]

    # characterise once (the expensive step a DPM exploration amortises)
    training = run_power_simulation(spec.module_class(), spec.short_ts())
    flow = PsmFlow(spec.flow_config()).fit(
        [training.trace], [training.power]
    )
    print(
        f"AES PSM: {flow.report.n_states} states "
        f"(fitted in {flow.report.generation_time:.2f}s)"
    )

    tb = StimulusBuilder({}, seed=11)
    key = tb.rand_bits(128)
    workload = build_workload(key, operations=30, tb=tb)
    idle = dict(en=1, load_key=0, start=0, decrypt=0, key=key, data=0)

    policies = [
        AlwaysOnPolicy(),
        TimeoutGatePolicy(2),
        TimeoutGatePolicy(8),
        OraclePolicy(),
    ]
    reports = explore_policies(
        spec.module_class, workload, idle, flow, policies
    )

    baseline = reports[0].estimated_energy
    print(f"\n{'policy':<12} {'ops':>4} {'gated':>7} {'energy':>9} {'saving':>8}")
    for report in reports:
        saving = 100 * (1 - report.estimated_energy / baseline)
        print(
            f"{report.policy:<12} {report.completed_operations:>4} "
            f"{report.gated_fraction:>6.1%} "
            f"{report.estimated_energy:>9.3f} {saving:>7.2f}%"
        )
    print(
        "\nEvery policy processed the same blocks; the energy column is "
        "PSM-estimated, so the whole exploration ran without a single "
        "additional power simulation."
    )


if __name__ == "__main__":
    main()
