"""AES vs Camellia: when PSM power models work and when they break.

The paper's central experimental finding (Tables II/III): the same flow
that models AES within a few percent fails on Camellia, whose
sub-components switch in ways that are invisible at the primary I/Os.
This example builds both models, contrasts their accuracy, and shows the
wrong-state-prediction effect of incomplete training traces.

Run: ``python examples/cipher_power_models.py``
"""

import numpy as np

from repro import PsmFlow, mre, run_power_simulation
from repro.power.estimator import component_breakdown
from repro.hdl.simulator import Simulator
from repro.testbench import BENCHMARKS


def characterise(name: str, eval_cycles: int = 5000) -> None:
    spec = BENCHMARKS[name]
    training = run_power_simulation(spec.module_class(), spec.short_ts())
    flow = PsmFlow(spec.flow_config()).fit(
        [training.trace], [training.power]
    )
    train_result = flow.estimate(training.trace)
    evaluation = run_power_simulation(
        spec.module_class(), spec.long_ts(eval_cycles)
    )
    eval_result = flow.estimate(evaluation.trace)

    print(f"\n=== {name} ===")
    print(
        f"model: {flow.report.n_states} states, "
        f"{flow.report.n_transitions} transitions"
    )
    print(
        f"training MRE: {mre(train_result.estimated, training.power):.2f}%"
    )
    print(
        f"long-TS MRE:  {mre(eval_result.estimated, evaluation.power):.2f}%  "
        f"WSP: {eval_result.wrong_state_fraction:.2f}%"
    )

    # Where does the power actually go?  Per-component mean power shows
    # why Camellia resists I/O-observed modelling: its hot components
    # (S-box unit, FL layer) switch on internal values.
    module = spec.module_class()
    activity = Simulator(module).run(spec.short_ts()).activity
    breakdown = component_breakdown(module, activity)
    total = sum(breakdown.values()) or 1.0
    print("component power shares:")
    for component, value in sorted(
        breakdown.items(), key=lambda kv: -kv[1]
    ):
        print(f"  {component:<16} {100 * value / total:5.1f}%")

    # Per-state view: constants vs their true within-state variation.
    print("states (mu +- sigma):")
    for psm in flow.psms:
        for state in psm.states:
            cv = state.sigma / state.mu if state.mu else 0.0
            flag = "  <-- data-dependent spread" if cv > 0.2 else ""
            print(
                f"  s{state.sid}: mu={state.mu:.4f} sigma={state.sigma:.4f} "
                f"(cv={cv:.2f}){flag}"
            )


def main() -> None:
    characterise("AES")
    characterise("Camellia")
    print(
        "\nAES's busy power is dominated by the round datapath, which "
        "switches coherently cycle after cycle, so a constant per state "
        "is accurate.  Camellia's FL layers and S-box glitching swing the "
        "busy power by tens of percent on internal values no PI/PO "
        "proposition can see -- the constant mis-estimates most cycles, "
        "which is exactly the paper's explanation for its 32% MRE."
    )


if __name__ == "__main__":
    main()
