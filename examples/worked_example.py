"""The paper's worked example (Figs. 3, 4 and 5), step by step.

Reproduces, on the exact 8-instant trace of Fig. 3:

* the mining of atomic propositions and the proposition trace
  (p_a p_a p_a p_b p_b p_b p_c p_d);
* the XU automaton's pattern recognition
  (p_a U p_b on [0,2], p_b U p_c on [3,5], p_c X p_d);
* the generated PSM with its power attributes and enabling functions.

Run: ``python examples/worked_example.py``
"""

from repro.core.generator import generate_psm
from repro.core.mining import AssertionMiner, MinerConfig
from repro.core.xu import XUAutomaton
from repro.traces.functional import FunctionalTrace
from repro.traces.power import PowerTrace
from repro.traces.variables import bool_in, int_in, int_out


def main() -> None:
    # ------------------------------------------------------------------
    # Fig. 3 — the functional trace and its power trace
    # ------------------------------------------------------------------
    trace = FunctionalTrace(
        [bool_in("v1"), bool_in("v2"), int_in("v3", 4), int_out("v4", 4)],
        {
            "v1": [1, 1, 1, 0, 0, 0, 1, 1],
            "v2": [0, 0, 0, 1, 1, 1, 1, 1],
            "v3": [3, 3, 3, 3, 4, 2, 0, 3],
            "v4": [1, 1, 1, 3, 4, 2, 0, 1],
        },
        name="fig3",
    )
    power = PowerTrace(
        [3.349, 3.339, 3.353, 1.902, 1.906, 1.944, 3.350, 3.343]
    )
    print("functional trace (Fig. 3):")
    for i, row in enumerate(trace.rows()):
        print(f"  t={i}: {row}   power={power[i]}")

    # ------------------------------------------------------------------
    # Sec. III-A — mining the proposition trace
    # ------------------------------------------------------------------
    miner = AssertionMiner(
        MinerConfig(
            min_avg_run=1.0,
            max_chatter_fraction=1.0,
            max_distinct_for_const=0,  # comparisons only, as in the paper
        )
    )
    mined = miner.mine(trace)
    print("\nmined propositions:")
    for prop in mined.propositions:
        print(f"  {prop.label}: {prop.formula()}")
    print(
        "proposition trace:",
        " ".join(p.label for p in mined.proposition_trace),
    )

    # ------------------------------------------------------------------
    # Fig. 5 — the XU automaton recognising until/next patterns
    # ------------------------------------------------------------------
    print("\nXU automaton patterns:")
    automaton = XUAutomaton(mined.proposition_trace)
    while True:
        pattern = automaton.get_assertion()
        if pattern is None:
            break
        kind = "next " if pattern.is_next else "until"
        print(
            f"  {kind}: {pattern.assertion}  interval "
            f"[{pattern.start},{pattern.stop}]  n={pattern.n}"
        )

    # ------------------------------------------------------------------
    # Fig. 4 — PSMGenerator: states + power attributes + transitions
    # ------------------------------------------------------------------
    psm = generate_psm(mined.proposition_trace, power, name="fig5")
    print("\ngenerated PSM (right side of Fig. 5):")
    print(psm.describe())


if __name__ == "__main__":
    main()
