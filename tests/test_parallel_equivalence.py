"""Determinism contracts of the perf fast paths.

Two guarantees from the performance work are load-bearing enough to pin
with tests:

* process-parallel fitting (``jobs > 1``) produces bit-identical PSM
  sets to a serial run; and
* the RLE segment-driven simulator paths produce exactly the same
  :class:`~repro.core.simulation.EstimationResult` as the per-instant
  reference paths, on every registered IP.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.export import psms_to_json
from repro.core.pipeline import PsmFlow
from repro.core.psm import reset_state_ids
from repro.core.simulation import SinglePsmSimulator
from repro.hdl.simulator import Simulator
from repro.parallel import parallel_map, resolve_jobs, under_test_worker
from repro.power.estimator import run_power_simulation
from repro.testbench import BENCHMARKS

#: Long-suite length for the RLE equivalence replays (kept small: the
#: per-instant reference path is the slow one).
LONG_CYCLES = 1200


def _double(x):
    return 2 * x


def _boom(x):
    raise RuntimeError("worker failure")


class TestParallelMap:
    def test_preserves_order_serial(self):
        assert parallel_map(_double, range(5), jobs=1) == [0, 2, 4, 6, 8]

    def test_preserves_order_parallel(self):
        items = list(range(20))
        assert parallel_map(_double, items, jobs=2) == [
            2 * x for x in items
        ]

    def test_worker_exception_propagates(self):
        with pytest.raises(RuntimeError):
            parallel_map(_boom, [1, 2, 3], jobs=2)

    def test_jobs_resolution(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(4) == 4
        assert resolve_jobs(-3) == 1
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(0) == resolve_jobs(None)

    def test_xdist_worker_forces_serial(self, monkeypatch):
        monkeypatch.setenv("PYTEST_XDIST_WORKER", "gw0")
        assert under_test_worker()
        # the call still completes (and in-process, so a local closure
        # would not even need to be picklable)
        assert parallel_map(_double, range(4), jobs=8) == [0, 2, 4, 6]


@pytest.fixture(scope="module")
def fitted_ips():
    """Serially fitted flow + long evaluation trace for every IP."""
    fitted = {}
    for name, spec in BENCHMARKS.items():
        reset_state_ids()
        reference = run_power_simulation(spec.module_class(), spec.short_ts())
        flow = PsmFlow(spec.flow_config()).fit(
            [reference.trace], [reference.power]
        )
        long_trace = (
            Simulator(spec.module_class(), record_activity=False)
            .run(spec.long_ts(LONG_CYCLES), name=f"{name}.long")
            .trace
        )
        fitted[name] = (spec, flow, long_trace)
    return fitted


def _fit_export(name: str, jobs: int) -> dict:
    """Fit one IP (two training traces, so mining actually fans out)."""
    spec = BENCHMARKS[name]
    reset_state_ids()
    config = spec.flow_config()
    config.jobs = jobs
    short = run_power_simulation(spec.module_class(), spec.short_ts())
    extra = run_power_simulation(
        spec.module_class(), spec.long_ts(LONG_CYCLES)
    )
    flow = PsmFlow(config).fit(
        [short.trace, extra.trace], [short.power, extra.power]
    )
    return psms_to_json(flow.psms)


class TestParallelSerialIdentity:
    @pytest.mark.parametrize("name", list(BENCHMARKS))
    def test_jobs2_fit_is_bit_identical(self, name):
        serial = _fit_export(name, jobs=1)
        parallel = _fit_export(name, jobs=2)
        assert serial == parallel


def _assert_results_identical(fast, slow):
    assert np.array_equal(fast.estimated.values, slow.estimated.values)
    assert np.array_equal(fast.reliable, slow.reliable)
    assert fast.predictions == slow.predictions
    assert fast.wrong_predictions == slow.wrong_predictions
    assert fast.desync_instants == slow.desync_instants
    assert fast.unknown_instants == slow.unknown_instants
    assert fast.reverted_instants == slow.reverted_instants
    assert fast.state_sequence == slow.state_sequence
    assert fast.wsp == slow.wsp
    assert fast.desync_fraction == slow.desync_fraction


class TestRleEquivalence:
    @pytest.mark.parametrize("name", list(BENCHMARKS))
    def test_multi_psm_rle_matches_instantwise(self, name, fitted_ips):
        _, flow, long_trace = fitted_ips[name]
        simulator = flow.simulator()
        fast = simulator.run(long_trace, rle=True)
        slow = simulator.run(long_trace, rle=False)
        _assert_results_identical(fast, slow)

    @pytest.mark.parametrize("name", list(BENCHMARKS))
    def test_single_psm_rle_matches_instantwise(self, name, fitted_ips):
        _, flow, long_trace = fitted_ips[name]
        simulator = SinglePsmSimulator(
            flow.raw_psms[0], flow.mining.labeler
        )
        fast = simulator.run(long_trace, rle=True)
        slow = simulator.run(long_trace, rle=False)
        _assert_results_identical(fast, slow)

    @pytest.mark.parametrize("name", list(BENCHMARKS))
    def test_rle_matches_on_training_trace(self, name, fitted_ips):
        spec, flow, _ = fitted_ips[name]
        reference = run_power_simulation(spec.module_class(), spec.short_ts())
        simulator = flow.simulator()
        _assert_results_identical(
            simulator.run(reference.trace, rle=True),
            simulator.run(reference.trace, rle=False),
        )
