"""Tests for the refinement driver (repro/refine/driver.py)."""

from __future__ import annotations

import json

import pytest

from repro.core.export import psms_to_json
from repro.refine.driver import (
    IterationRecord,
    RefineConfig,
    refine_benchmark,
)

SMALL = dict(
    iterations=2,
    seed=7,
    eval_cycles=400,
    oracle_window=128,
    worst_windows=2,
    max_counterexamples=6,
)


def serialize(result) -> str:
    """Canonical byte-level rendering of a refined bundle."""
    payload = psms_to_json(
        result.flow.psms,
        variables=result.variables,
        accuracy=result.accuracy_metadata(),
    )
    return json.dumps(payload, sort_keys=True)


@pytest.fixture(scope="module")
def refined():
    return refine_benchmark("MultSum", RefineConfig(**SMALL))


class TestRefineBenchmark:
    def test_unknown_ip_rejected(self):
        with pytest.raises(ValueError, match="unknown IP"):
            refine_benchmark("NoSuchIp")

    def test_monotone_by_construction(self, refined):
        # The central guarantee: a candidate model is accepted only when
        # the held-out MRE does not increase, so refinement never makes
        # the published model worse.
        assert refined.mre_after <= refined.mre_before + 1e-9

    def test_iteration_budget_respected(self, refined):
        assert len(refined.iterations) <= SMALL["iterations"]
        for index, record in enumerate(refined.iterations):
            assert record.index == index

    def test_counterexample_accounting(self, refined):
        accepted = sum(
            1 for record in refined.iterations if record.accepted
        )
        if accepted == 0:
            assert refined.counterexamples_accepted == 0
            assert refined.mre_after == refined.mre_before
        assert (
            refined.counterexamples_accepted
            <= refined.counterexamples_found
        )

    def test_flow_is_usable(self, refined):
        assert refined.flow is not None
        assert refined.flow.psms, "refined flow must carry mined PSMs"
        assert refined.variables, "bundle variables must be recorded"

    def test_publisher_called_once_per_accepted_iteration(self):
        class Recorder:
            def __init__(self):
                self.calls = []

            def publish(self, psms, reason="refresh", accuracy=None):
                self.calls.append(reason)

        recorder = Recorder()
        result = refine_benchmark(
            "MultSum", RefineConfig(**SMALL), publisher=recorder
        )
        accepted = sum(1 for r in result.iterations if r.accepted)
        assert len(recorder.calls) == accepted


class TestDeterminism:
    def test_same_seed_bit_identical_bundle(self, refined):
        again = refine_benchmark("MultSum", RefineConfig(**SMALL))
        assert serialize(again) == serialize(refined)

    def test_metadata_carries_no_wall_time(self, refined):
        metadata = refined.accuracy_metadata()
        assert "wall_s" not in metadata
        assert set(metadata) == {
            "ip", "seed", "mre_before", "mre_after", "wsp_before",
            "wsp_after", "eval_cycles", "iterations",
            "counterexamples_found", "counterexamples_accepted",
            "converged",
        }
        assert metadata["ip"] == "MultSum"
        assert metadata["seed"] == SMALL["seed"]


class TestIterationRecord:
    def test_describe_accepted(self):
        record = IterationRecord(1, 4, True, 2.5, 2.5, strategy="all")
        text = record.describe()
        assert "accepted (all)" in text
        assert "2.50%" in text

    def test_describe_rejected(self):
        record = IterationRecord(0, 4, False, 9.0, 3.0)
        assert "rejected" in record.describe()

    def test_describe_empty_round(self):
        record = IterationRecord(2, 0, False, None, 3.0)
        assert "no counterexamples" in record.describe()
