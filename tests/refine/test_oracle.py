"""Tests for the accuracy oracle (repro/refine/oracle.py)."""

from __future__ import annotations

import pytest

from repro.bench import fit_benchmark
from repro.power.estimator import run_power_simulation
from repro.refine.oracle import AccuracyOracle, OracleReport, WindowScore
from repro.testbench import BENCHMARKS

EVAL_CYCLES = 400
WINDOW = 128


@pytest.fixture(scope="module")
def fitted():
    return fit_benchmark("MultSum")


@pytest.fixture(scope="module")
def oracle(fitted):
    spec = BENCHMARKS["MultSum"]
    return AccuracyOracle(fitted.flow, spec.module_class, window=WINDOW)


@pytest.fixture(scope="module")
def eval_pair():
    spec = BENCHMARKS["MultSum"]
    sim = run_power_simulation(
        spec.module_class(), spec.long_ts(EVAL_CYCLES, seed=5), name="eval"
    )
    return sim.trace, sim.power


class TestScoreTrace:
    def test_windows_tile_the_whole_trace(self, oracle, eval_pair):
        trace, power = eval_pair
        report = oracle.score_trace(trace, power)
        assert report.windows, "expected at least one window"
        assert report.windows[0].start == 0
        assert report.windows[-1].stop == len(trace) - 1
        for left, right in zip(report.windows, report.windows[1:]):
            assert right.start == left.stop + 1

    def test_overall_metrics_are_finite(self, oracle, eval_pair):
        report = oracle.score_trace(*eval_pair)
        assert report.overall_mre >= 0.0
        assert 0.0 <= report.wsp <= 100.0
        assert 0.0 <= report.desync_fraction <= 1.0

    def test_desync_counts_bounded_by_window_size(self, oracle, eval_pair):
        report = oracle.score_trace(*eval_pair)
        for window in report.windows:
            assert 0 <= window.desync <= window.stop - window.start + 1

    def test_worst_is_sorted_and_defined(self, oracle, eval_pair):
        report = oracle.score_trace(*eval_pair)
        worst = report.worst(3)
        assert len(worst) <= 3
        assert all(w.defined for w in worst)
        for left, right in zip(worst, worst[1:]):
            assert left.mre >= right.mre

    def test_worst_ranking_is_deterministic(self):
        # Synthetic report: ties on MRE break on desync, then position.
        report = OracleReport(
            windows=[
                WindowScore(0, 9, 5.0, 0, 0),
                WindowScore(10, 19, 9.0, 2, 1),
                WindowScore(20, 29, 9.0, 7, 1),
                WindowScore(30, 39, None, 0, 0),
            ],
            skipped=1,
            overall_mre=7.0,
            wsp=0.0,
            desync_fraction=0.0,
        )
        worst = report.worst(10)
        assert [w.start for w in worst] == [20, 10, 0]


class TestScoreStimulus:
    def test_reference_pair_matches_stimulus_length(self, oracle):
        spec = BENCHMARKS["MultSum"]
        stimulus = spec.short_ts()
        report, reference = oracle.score_stimulus(stimulus, name="probe")
        assert len(reference.trace) >= len(stimulus)
        assert len(reference.power) == len(reference.trace)
        assert report.windows[-1].stop == len(reference.trace) - 1


class TestInputRows:
    def test_rows_cover_window_with_all_inputs(self, oracle, eval_pair):
        trace, _ = eval_pair
        rows = oracle.input_rows(trace, 10, 25)
        assert len(rows) == 16
        names = {v.name for v in trace.inputs}
        for row in rows:
            assert set(row) == names
            assert all(isinstance(value, int) for value in row.values())

    def test_rows_reflect_trace_values(self, oracle, eval_pair):
        trace, _ = eval_pair
        rows = oracle.input_rows(trace, 0, 7)
        name = trace.inputs[0].name
        column = trace.column(name)
        assert [row[name] for row in rows] == [
            int(column[i]) for i in range(8)
        ]
