"""Tests for the psmgen-accuracy/v1 trajectory artifact and its gates."""

from __future__ import annotations

import copy

import pytest

from repro.refine.driver import RefineResult
from repro.refine.trajectory import (
    ABSOLUTE_SLACK,
    ACCURACY_SCHEMA,
    compare_accuracy,
    format_accuracy,
    result_row,
    validate_accuracy,
)


def make_row(ip="MultSum", before=8.0, after=6.0, **overrides):
    row = {
        "ip": ip,
        "mre_before": before,
        "mre_after": after,
        "wsp_before": 1.0,
        "wsp_after": 0.5,
        "iterations": 2,
        "counterexamples_found": 8,
        "counterexamples_accepted": 4,
        "converged": False,
        "eval_cycles": 400,
        "wall_s": 1.25,
    }
    row.update(overrides)
    return row


def make_payload(*rows):
    return {
        "schema": ACCURACY_SCHEMA,
        "repro_scale": 1.0,
        "seed": 7,
        "iterations_budget": 3,
        "oracle_window": 256,
        "results": list(rows or [make_row()]),
    }


class TestResultRow:
    def test_rounding_and_fields(self):
        result = RefineResult(
            ip="RAM",
            seed=7,
            mre_before=6.56789,
            mre_after=0.70123,
            wsp_before=0.0,
            wsp_after=0.0,
            eval_cycles=3000,
            counterexamples_found=36,
            counterexamples_accepted=1,
            converged=False,
            wall_s=3.0001,
        )
        row = result_row(result)
        assert row["mre_before"] == 6.5679
        assert row["mre_after"] == 0.7012
        assert row["wall_s"] == 3.0
        validate_accuracy(make_payload(row))


class TestValidate:
    def test_good_payload_passes(self):
        validate_accuracy(make_payload())

    def test_wrong_schema_rejected(self):
        payload = make_payload()
        payload["schema"] = "psmgen-accuracy/v0"
        with pytest.raises(ValueError, match="unexpected schema"):
            validate_accuracy(payload)

    def test_non_object_rejected(self):
        with pytest.raises(ValueError, match="JSON object"):
            validate_accuracy([])

    def test_empty_results_rejected(self):
        payload = make_payload()
        payload["results"] = []
        with pytest.raises(ValueError, match="no results"):
            validate_accuracy(payload)

    def test_missing_field_rejected(self):
        row = make_row()
        del row["mre_after"]
        with pytest.raises(ValueError, match="mre_after"):
            validate_accuracy(make_payload(row))

    def test_bad_type_rejected(self):
        row = make_row(converged="yes")
        with pytest.raises(ValueError, match="converged"):
            validate_accuracy(make_payload(row))


class TestCompare:
    def test_identical_payloads_pass(self):
        payload = make_payload()
        assert compare_accuracy(payload, copy.deepcopy(payload)) == []

    def test_self_gate_catches_mre_increase(self):
        # The current payload violates the driver's own monotonicity
        # promise — flagged even when the baseline would allow it.
        current = make_payload(make_row(before=5.0, after=6.0))
        baseline = make_payload(make_row(before=5.0, after=5.0))
        regressions = compare_accuracy(current, baseline)
        assert any("increased MRE" in r for r in regressions)

    def test_baseline_gate_catches_regression(self):
        current = make_payload(make_row(before=50.0, after=40.0))
        baseline = make_payload(make_row(before=50.0, after=10.0))
        regressions = compare_accuracy(current, baseline, threshold=1.5)
        assert any("vs baseline" in r for r in regressions)

    def test_threshold_scales_the_gate(self):
        current = make_payload(make_row(before=50.0, after=14.0))
        baseline = make_payload(make_row(before=50.0, after=10.0))
        assert compare_accuracy(current, baseline, threshold=1.5) == []
        assert compare_accuracy(current, baseline, threshold=1.2)

    def test_absolute_slack_for_near_zero_baselines(self):
        # 0.1% -> 0.4% is a 4x ratio but within the absolute slack, so
        # tiny MREs do not gate on noise.
        current = make_payload(make_row(before=5.0, after=0.4))
        baseline = make_payload(make_row(before=5.0, after=0.1))
        assert 0.4 <= 0.1 + ABSOLUTE_SLACK
        assert compare_accuracy(current, baseline, threshold=1.5) == []

    def test_missing_ip_skipped(self):
        # A one-IP smoke payload compares cleanly against the committed
        # four-IP artifact: only shared IPs are gated.
        current = make_payload(make_row(ip="MultSum", after=6.0))
        baseline = make_payload(
            make_row(ip="RAM", after=0.7),
            make_row(ip="MultSum", after=6.0),
        )
        assert compare_accuracy(current, baseline) == []

    def test_invalid_baseline_rejected(self):
        with pytest.raises(ValueError):
            compare_accuracy(make_payload(), {"schema": "nope"})


class TestFormat:
    def test_table_lists_every_ip(self):
        payload = make_payload(
            make_row(ip="RAM"), make_row(ip="Camellia")
        )
        text = format_accuracy(payload)
        assert "MRE before" in text
        assert "RAM" in text and "Camellia" in text
        assert len(text.splitlines()) == 3
