"""Tests for the perturbation families and the counterexample search."""

from __future__ import annotations

import pytest

from repro.bench import fit_benchmark
from repro.power.estimator import run_power_simulation
from repro.refine.oracle import AccuracyOracle
from repro.refine.search import (
    DEFAULT_FAMILIES,
    StimulusSearch,
    derive_seed,
)
from repro.testbench import BENCHMARKS
from repro.testbench.stimuli import PERTURBATION_FAMILIES

ROWS = [{"a": i, "b": (i * 3) % 7, "start": i % 2} for i in range(16)]
DEFAULTS = {"a": 0, "b": 0, "start": 0}
WIDTHS = {"a": 8, "b": 8, "start": 1}


class TestFamilies:
    def test_registry_matches_default_rotation(self):
        assert set(DEFAULT_FAMILIES) == set(PERTURBATION_FAMILIES)
        assert DEFAULT_FAMILIES[0] == "replay"

    @pytest.mark.parametrize("family", sorted(PERTURBATION_FAMILIES))
    def test_same_seed_same_stimulus(self, family):
        fn = PERTURBATION_FAMILIES[family]
        first = fn(ROWS, DEFAULTS, WIDTHS, seed=11)
        second = fn(ROWS, DEFAULTS, WIDTHS, seed=11)
        assert first == second

    @pytest.mark.parametrize(
        "family", ["bursty", "idle-heavy", "toggle-max"]
    )
    def test_different_seed_different_stimulus(self, family):
        fn = PERTURBATION_FAMILIES[family]
        variants = {
            tuple(tuple(sorted(row.items())) for row in fn(
                ROWS, DEFAULTS, WIDTHS, seed=seed
            ))
            for seed in range(6)
        }
        assert len(variants) > 1

    @pytest.mark.parametrize("family", sorted(PERTURBATION_FAMILIES))
    def test_empty_rows_yield_empty_stimulus(self, family):
        fn = PERTURBATION_FAMILIES[family]
        assert fn([], DEFAULTS, WIDTHS, seed=0) == []

    def test_replay_is_the_identity(self):
        out = PERTURBATION_FAMILIES["replay"](
            ROWS, DEFAULTS, WIDTHS, seed=99
        )
        assert out == ROWS

    def test_toggle_max_doubles_and_stays_in_width(self):
        out = PERTURBATION_FAMILIES["toggle-max"](
            ROWS, DEFAULTS, WIDTHS, seed=3
        )
        assert len(out) == 2 * len(ROWS)
        for row in out:
            for name, value in row.items():
                assert 0 <= value < (1 << WIDTHS[name])

    def test_bursty_repeats_rows(self):
        out = PERTURBATION_FAMILIES["bursty"](
            ROWS, DEFAULTS, WIDTHS, seed=3
        )
        assert len(out) > len(ROWS)

    def test_idle_heavy_preserves_row_order(self):
        out = PERTURBATION_FAMILIES["idle-heavy"](
            ROWS, DEFAULTS, WIDTHS, seed=3
        )
        # Dropping the inserted idle rows leaves the original sequence.
        active = [row for row in out if row != DEFAULTS]
        assert active == [row for row in ROWS if row != DEFAULTS]

    def test_phase_alternating_is_a_permutation(self):
        out = PERTURBATION_FAMILIES["phase-alternating"](
            ROWS, DEFAULTS, WIDTHS, seed=3
        )
        key = lambda rows: sorted(
            tuple(sorted(row.items())) for row in rows
        )
        assert key(out) == key(ROWS)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, 1, 2, 3) == derive_seed(7, 1, 2, 3)

    def test_positionally_distinct(self):
        seeds = {
            derive_seed(7, iteration, rank, family)
            for iteration in range(3)
            for rank in range(4)
            for family in range(5)
        }
        assert len(seeds) == 3 * 4 * 5

    def test_fits_numpy_seed_range(self):
        assert 0 <= derive_seed(2**31, 99, 99, 99) < 2**32


class TestStimulusSearch:
    @pytest.fixture(scope="class")
    def oracle(self):
        fitted = fit_benchmark("MultSum")
        spec = BENCHMARKS["MultSum"]
        return AccuracyOracle(fitted.flow, spec.module_class, window=128)

    @pytest.fixture(scope="class")
    def eval_sim(self):
        spec = BENCHMARKS["MultSum"]
        return run_power_simulation(
            spec.module_class(), spec.long_ts(400, seed=5), name="eval"
        )

    def test_unknown_family_rejected(self, oracle):
        with pytest.raises(ValueError, match="unknown perturbation"):
            StimulusSearch(oracle, families=("replay", "nope"))

    def test_find_is_deterministic(self, oracle, eval_sim):
        report = oracle.score_trace(eval_sim.trace, eval_sim.power)
        kwargs = dict(threshold=0.0, worst_windows=2, limit=6)
        first = StimulusSearch(oracle, seed=7).find(
            report, eval_sim.trace, **kwargs
        )
        second = StimulusSearch(oracle, seed=7).find(
            report, eval_sim.trace, **kwargs
        )
        assert [
            (cx.family, cx.window_start, cx.mre) for cx in first
        ] == [(cx.family, cx.window_start, cx.mre) for cx in second]

    def test_find_respects_threshold_and_limit(self, oracle, eval_sim):
        report = oracle.score_trace(eval_sim.trace, eval_sim.power)
        found = StimulusSearch(oracle, seed=7).find(
            report, eval_sim.trace, threshold=0.0,
            worst_windows=2, limit=3,
        )
        assert len(found) <= 3
        assert all(cx.mre > 0.0 for cx in found)
        mres = [cx.mre for cx in found]
        assert mres == sorted(mres, reverse=True)

    def test_counterexample_carries_training_pair(self, oracle, eval_sim):
        report = oracle.score_trace(eval_sim.trace, eval_sim.power)
        found = StimulusSearch(oracle, seed=7).find(
            report, eval_sim.trace, threshold=0.0,
            worst_windows=1, limit=2,
        )
        assert found, "threshold 0 must surface counterexamples"
        for cx in found:
            assert len(cx.functional) == len(cx.power)
            assert len(cx.functional) >= len(cx.stimulus)

    def test_impossible_threshold_finds_nothing(self, oracle, eval_sim):
        report = oracle.score_trace(eval_sim.trace, eval_sim.power)
        found = StimulusSearch(oracle, seed=7).find(
            report, eval_sim.trace, threshold=1e12, worst_windows=2,
        )
        assert found == []
