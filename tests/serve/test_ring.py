"""Tests for the consistent hash ring: stability, fairness, replicas."""

import pytest

from repro.serve.ring import DEFAULT_VNODES, HashRing, ring_hash

WORKERS = ("w0", "w1", "w2", "w3")
KEYS = [f"model-{index}" for index in range(200)]


def make_ring(workers=WORKERS, vnodes=DEFAULT_VNODES):
    ring = HashRing(vnodes=vnodes)
    for worker in workers:
        ring.add(worker)
    return ring


class TestRingHash:
    def test_deterministic_across_instances(self):
        # Placement must agree between router restarts and across
        # processes: the hash cannot be Python's seeded hash().
        assert ring_hash("MultSum") == ring_hash("MultSum")
        assert 0 <= ring_hash("anything") < 1 << 32

    def test_distinct_keys_spread(self):
        positions = {ring_hash(key) for key in KEYS}
        assert len(positions) == len(KEYS)


class TestMembership:
    def test_add_is_idempotent(self):
        ring = make_ring()
        before = {key: ring.lookup(key) for key in KEYS}
        ring.add("w1")
        assert {key: ring.lookup(key) for key in KEYS} == before

    def test_remove_is_idempotent(self):
        ring = make_ring()
        ring.remove("w9")
        assert ring.workers == sorted(WORKERS)

    def test_len_and_contains(self):
        ring = make_ring()
        assert len(ring) == 4
        assert "w2" in ring
        ring.remove("w2")
        assert len(ring) == 3
        assert "w2" not in ring

    def test_empty_ring_lookup_raises(self):
        with pytest.raises(LookupError):
            HashRing().lookup("m")

    def test_rejects_bad_vnodes(self):
        with pytest.raises(ValueError):
            HashRing(vnodes=0)


class TestStability:
    def test_only_dead_workers_keys_move(self):
        # The whole point of consistent hashing: losing one of N
        # workers relocates exactly the keys it owned, nothing else.
        ring = make_ring()
        before = {key: ring.lookup(key) for key in KEYS}
        ring.remove("w2")
        after = {key: ring.lookup(key) for key in KEYS}
        moved = {key for key in KEYS if before[key] != after[key]}
        owned = {key for key in KEYS if before[key] == "w2"}
        assert moved == owned

    def test_rejoin_restores_placement(self):
        ring = make_ring()
        before = {key: ring.lookup(key) for key in KEYS}
        ring.remove("w1")
        ring.add("w1")
        assert {key: ring.lookup(key) for key in KEYS} == before

    def test_placement_agrees_between_rings(self):
        one, two = make_ring(), make_ring()
        assert [one.lookup(key) for key in KEYS] == [
            two.lookup(key) for key in KEYS
        ]


class TestPreference:
    def test_primary_matches_lookup(self):
        ring = make_ring()
        for key in KEYS[:20]:
            assert ring.preference(key, 3)[0] == ring.lookup(key)

    def test_workers_are_distinct(self):
        ring = make_ring()
        for key in KEYS[:20]:
            chosen = ring.preference(key, 3)
            assert len(chosen) == len(set(chosen)) == 3

    def test_k_clamped_to_members(self):
        ring = make_ring(("w0", "w1"))
        assert len(ring.preference("m", 5)) == 2
        assert len(ring.preference("m", 0)) == 1

    def test_replica_set_is_prefix_stable(self):
        # The k=1 placement must be the head of the k=2 set, so a model
        # going hot keeps its warmed primary.
        ring = make_ring()
        for key in KEYS[:20]:
            assert ring.preference(key, 2)[0] == ring.preference(key, 1)[0]


class TestClone:
    def test_clone_matches_original_placements(self):
        ring = make_ring()
        clone = ring.clone()
        assert clone.workers == ring.workers
        for key in KEYS[:50]:
            assert clone.lookup(key) == ring.lookup(key)

    def test_clone_is_independent(self):
        # The pre-warm candidate ring mutates freely; the live ring
        # must not see membership it hasn't published.
        ring = make_ring()
        clone = ring.clone()
        clone.add("w9")
        assert "w9" in clone
        assert "w9" not in ring
        clone.remove("w0")
        assert "w0" in ring

    def test_candidate_placement_equals_future_ring(self):
        # A clone plus the joiner computes exactly the placements the
        # live ring will have once the joiner is published.
        ring = make_ring(("w0", "w1"))
        candidate = ring.clone()
        candidate.add("w2")
        ring.add("w2")
        for key in KEYS[:50]:
            assert candidate.lookup(key) == ring.lookup(key)


class TestOwnership:
    def test_shares_sum_to_one(self):
        shares = make_ring().ownership()
        assert set(shares) == set(WORKERS)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_vnodes_keep_ownership_fair(self):
        shares = make_ring().ownership()
        for worker, share in shares.items():
            assert 0.10 < share < 0.45, (worker, share)

    def test_empty_ring_owns_nothing(self):
        assert HashRing().ownership() == {}
